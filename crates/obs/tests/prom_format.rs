//! Prometheus text exposition format conformance for `to_prometheus`.
//!
//! Pins the scrape-format contract a real Prometheus server enforces:
//! every sample's family is declared by a `# HELP` + `# TYPE` pair
//! *before* its first sample, metric names are legal, label values are
//! escaped (`\\`, `\"`, `\n`), and every sample line parses as
//! `name{labels} value`.

use pmv_obs::{to_prometheus, HistSnapshot, LatencyHistogram, ViewMetrics};
use std::collections::HashMap;
use std::time::Duration;

fn sample_views() -> Vec<ViewMetrics> {
    let h = LatencyHistogram::new();
    for us in [90u64, 150, 800, 4_000] {
        h.record(Duration::from_micros(us));
    }
    vec![
        ViewMetrics {
            name: "orders_by_day".into(),
            health: "healthy".into(),
            error_rate: 0.0,
            trips: 0,
            last_verified_age_ms: 41,
            counters: vec![("queries", 12), ("commit_batches", 3)],
            gauges: vec![("hit_probability", 0.5), ("pin_cache_hit_rate", 0.97)],
            phases: vec![
                ("ttfr", h.snapshot()),
                ("lock_master_commit", h.snapshot()),
                ("full", HistSnapshot::empty()),
            ],
        },
        // Hostile label value: quote, backslash, and newline must all
        // be escaped or the scrape breaks.
        ViewMetrics {
            name: "t\"weird\\name\nline2".into(),
            health: "degraded".into(),
            error_rate: 0.5,
            trips: 2,
            last_verified_age_ms: 100,
            counters: vec![("queries", 1)],
            gauges: vec![],
            phases: vec![],
        },
    ]
}

/// Split one sample line into (metric name, value), validating shape.
fn parse_sample(line: &str) -> (String, f64) {
    let name_end = line
        .find(['{', ' '])
        .unwrap_or_else(|| panic!("no name terminator: {line}"));
    let name = &line[..name_end];
    let rest = &line[name_end..];
    let value_str = if let Some(stripped) = rest.strip_prefix('{') {
        // Labels: walk to the closing brace honouring escapes inside
        // quoted values.
        let mut in_quotes = false;
        let mut escaped = false;
        let mut close = None;
        for (i, c) in stripped.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_quotes => escaped = true,
                '"' => in_quotes = !in_quotes,
                '}' if !in_quotes => {
                    close = Some(i);
                    break;
                }
                '\n' => panic!("unescaped newline inside labels: {line}"),
                _ => {}
            }
        }
        let close = close.unwrap_or_else(|| panic!("unterminated labels: {line}"));
        stripped[close + 1..].trim_start()
    } else {
        rest.trim_start()
    };
    let value: f64 = value_str
        .parse()
        .unwrap_or_else(|_| panic!("unparsable value '{value_str}' in: {line}"));
    (name.to_string(), value)
}

/// Family a sample belongs to: summaries/histograms expose `_sum` and
/// `_count` samples under the family's TYPE declaration.
fn family_of<'a>(name: &'a str, declared: &HashMap<String, String>) -> &'a str {
    if declared.contains_key(name) {
        return name;
    }
    for suffix in ["_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            if declared.contains_key(stripped) {
                return stripped;
            }
        }
    }
    name
}

#[test]
fn exposition_format_conformance() {
    let text = to_prometheus(&sample_views());

    // type name -> declared type; also order: HELP immediately before
    // TYPE, both before any sample of the family.
    let mut declared: HashMap<String, String> = HashMap::new();
    let mut helped: HashMap<String, bool> = HashMap::new();
    let mut seen_sample_of: HashMap<String, bool> = HashMap::new();

    let mut prev_help: Option<String> = None;
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition output");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let family = rest.split(' ').next().unwrap().to_string();
            assert!(rest.len() > family.len() + 1, "HELP without text: {line}");
            assert!(!helped.contains_key(&family), "duplicate HELP for {family}");
            helped.insert(family.clone(), true);
            prev_help = Some(family);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts.next().unwrap().to_string();
            let kind = parts.next().unwrap_or("").to_string();
            assert!(
                ["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind.as_str()),
                "bad TYPE kind: {line}"
            );
            assert_eq!(
                prev_help.as_deref(),
                Some(family.as_str()),
                "TYPE for {family} not immediately preceded by its HELP"
            );
            assert!(
                !declared.contains_key(&family),
                "duplicate TYPE for {family}"
            );
            assert!(
                !seen_sample_of.contains_key(&family),
                "TYPE for {family} after its first sample"
            );
            declared.insert(family, kind);
        } else {
            prev_help = None;
            let (name, _value) = parse_sample(line);
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "illegal metric name: {name}"
            );
            let family = family_of(&name, &declared).to_string();
            assert!(
                declared.contains_key(&family),
                "sample {name} has no TYPE declaration"
            );
            assert!(
                helped.contains_key(&family),
                "sample {name} has no HELP declaration"
            );
            seen_sample_of.insert(family, true);
        }
    }

    // Every declared family produced at least one sample.
    for family in declared.keys() {
        assert!(
            seen_sample_of.contains_key(family),
            "TYPE declared but no samples: {family}"
        );
    }
}

#[test]
fn label_values_are_escaped() {
    let text = to_prometheus(&sample_views());
    // The hostile view name appears only in escaped form.
    assert!(
        text.contains("view=\"t\\\"weird\\\\name\\nline2\""),
        "escaped hostile label missing:\n{text}"
    );
    // No raw (unescaped) newline may survive inside any label value:
    // every line must be a comment or a complete sample.
    for line in text.lines() {
        if !line.starts_with('#') {
            parse_sample(line);
        }
    }
}

#[test]
fn summary_quantile_samples_are_present_and_ordered() {
    let text = to_prometheus(&sample_views());
    let idx_type = text
        .find("# TYPE pmv_phase_latency_seconds summary")
        .expect("summary TYPE line");
    let idx_sample = text
        .find("pmv_phase_latency_seconds{")
        .expect("summary sample");
    assert!(idx_type < idx_sample, "TYPE after first summary sample");
    for q in ["0.5", "0.9", "0.99"] {
        assert!(
            text.contains(&format!(
                "pmv_phase_latency_seconds{{view=\"orders_by_day\",phase=\"ttfr\",quantile=\"{q}\"}}"
            )),
            "missing quantile {q}:\n{text}"
        );
    }
    assert!(
        text.contains("pmv_phase_latency_seconds_count{view=\"orders_by_day\",phase=\"lock_master_commit\"} 4"),
        "{text}"
    );
}
