//! DISTINCT handling (Section 3.6):
//!
//! > "In Operation O2, only distinct tuples in the partial results
//! > obtained from the PMV are returned to the user and stored in the
//! > data structure DS. In Operation O3, all distinct result tuples are
//! > first obtained from query execution. Then only those tuples that
//! > are not in DS are returned to the user."

use std::collections::HashSet;

use pmv_query::{Database, QueryInstance};
use pmv_storage::Tuple;

use crate::pipeline::{Pmv, PmvPipeline, QueryTimings};
use crate::Result;

/// Result of a DISTINCT pipeline run.
#[derive(Clone, Debug)]
pub struct DistinctOutcome {
    /// Distinct partial results served early (user layout).
    pub partial: Vec<Tuple>,
    /// Distinct remaining results (user layout, none repeated from
    /// `partial`).
    pub remaining: Vec<Tuple>,
    /// Whether any probed bcp was resident.
    pub bcp_hit: bool,
    /// Timing breakdown of the underlying run.
    pub timings: QueryTimings,
}

impl DistinctOutcome {
    /// All distinct results, partial first.
    pub fn all_results(&self) -> Vec<Tuple> {
        let mut v = self.partial.clone();
        v.extend_from_slice(&self.remaining);
        v
    }
}

/// Run `q` with DISTINCT semantics over the user-visible select list.
/// The PMV itself still stores/updates multiset results (its content is
/// shared with non-DISTINCT queries of the same template); only the
/// user-facing streams are deduplicated.
pub fn run_distinct(
    pipeline: &PmvPipeline,
    db: &Database,
    pmv: &mut Pmv,
    q: &QueryInstance,
) -> Result<DistinctOutcome> {
    let outcome = pipeline.run(db, pmv, q)?;
    let mut seen: HashSet<Tuple> = HashSet::new();
    let mut partial = Vec::new();
    for t in &outcome.partial {
        if seen.insert(t.clone()) {
            partial.push(t.clone());
        }
    }
    let mut remaining = Vec::new();
    for t in &outcome.remaining {
        if seen.insert(t.clone()) {
            remaining.push(t.clone());
        }
    }
    Ok(DistinctOutcome {
        partial,
        remaining,
        bcp_hit: outcome.bcp_hit,
        timings: outcome.timings,
    })
}
