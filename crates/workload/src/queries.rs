//! The paper's Section 4.2 query templates.
//!
//! ```text
//! T1: select * from orders o, lineitem l
//!     where o.orderkey = l.orderkey
//!       and (o.orderdate = d1 or … or o.orderdate = de)
//!       and (l.suppkey = s1 or … or l.suppkey = sf);
//!
//! T2: select * from orders o, lineitem l, customer c
//!     where o.orderkey = l.orderkey and o.custkey = c.custkey
//!       and (o.orderdate = d1 or …) and (l.suppkey = s1 or …)
//!       and (c.nationkey = n1 or …);
//! ```
//!
//! T1's basic condition parts are `(d_i, s_j)` pairs (combination factor
//! `h = e × f`); T2's are `(d_i, s_j, n_k)` triples (`h = e × f × g`).

use std::collections::HashSet;
use std::sync::Arc;

use pmv_query::{Condition, Database, QueryInstance, QueryTemplate, Result, TemplateBuilder};
use pmv_storage::Value;
use rand::Rng;

/// Build template T1 over a database holding the TPC-R relations.
pub fn template_t1(db: &Database) -> Result<Arc<QueryTemplate>> {
    TemplateBuilder::new("T1")
        .relation(db.schema("orders")?)
        .relation(db.schema("lineitem")?)
        .join("orders", "orderkey", "lineitem", "orderkey")?
        .select_star()
        .cond_eq("orders", "orderdate")?
        .cond_eq("lineitem", "suppkey")?
        .build()
}

/// Build template T2 over a database holding the TPC-R relations.
pub fn template_t2(db: &Database) -> Result<Arc<QueryTemplate>> {
    TemplateBuilder::new("T2")
        .relation(db.schema("orders")?)
        .relation(db.schema("lineitem")?)
        .relation(db.schema("customer")?)
        .join("orders", "orderkey", "lineitem", "orderkey")?
        .join("orders", "custkey", "customer", "custkey")?
        .select_star()
        .cond_eq("orders", "orderdate")?
        .cond_eq("lineitem", "suppkey")?
        .cond_eq("customer", "nationkey")?
        .build()
}

fn eq_cond(values: &[i64]) -> Condition {
    Condition::Equality(values.iter().map(|&v| Value::Int(v)).collect())
}

/// Bind a T1 instance: `e = dates.len()`, `f = supps.len()`, `h = e·f`.
pub fn t1_query(t: &Arc<QueryTemplate>, dates: &[i64], supps: &[i64]) -> Result<QueryInstance> {
    t.bind(vec![eq_cond(dates), eq_cond(supps)])
}

/// Bind a T2 instance: `h = e·f·g`.
pub fn t2_query(
    t: &Arc<QueryTemplate>,
    dates: &[i64],
    supps: &[i64],
    nations: &[i64],
) -> Result<QueryInstance> {
    t.bind(vec![eq_cond(dates), eq_cond(supps), eq_cond(nations)])
}

/// Draw `count` distinct values from `0..domain`, always including
/// `must_include`. Used to build the Section 4.2 queries where "one of
/// these h basic condition parts exists in the PMV": put the hot value in
/// each dimension so exactly the hot combination is PMV-resident.
pub fn values_including<R: Rng + ?Sized>(
    rng: &mut R,
    domain: i64,
    count: usize,
    must_include: i64,
) -> Vec<i64> {
    assert!(
        (count as i64) <= domain,
        "cannot draw {count} distinct values from a domain of {domain}"
    );
    let mut out = Vec::with_capacity(count);
    let mut seen: HashSet<i64> = HashSet::with_capacity(count);
    out.push(must_include);
    seen.insert(must_include);
    while out.len() < count {
        let v = rng.gen_range(0..domain);
        if seen.insert(v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcr::{generate, standard_indexes, TpcrConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_db() -> Database {
        let mut db = Database::new();
        generate(
            &mut db,
            &TpcrConfig {
                scale: 0.001,
                ..Default::default()
            },
        )
        .unwrap();
        standard_indexes(&mut db).unwrap();
        db
    }

    #[test]
    fn t1_shape() {
        let db = tiny_db();
        let t = template_t1(&db).unwrap();
        assert_eq!(
            t.relations(),
            &["orders".to_string(), "lineitem".to_string()]
        );
        assert_eq!(t.cond_count(), 2);
        // select * keeps every column; conditions are already in Ls.
        assert_eq!(t.select_list().len(), 10);
        assert_eq!(t.expanded_list().len(), 10);
    }

    #[test]
    fn t2_shape() {
        let db = tiny_db();
        let t = template_t2(&db).unwrap();
        assert_eq!(t.relations().len(), 3);
        assert_eq!(t.cond_count(), 3);
    }

    #[test]
    fn t1_query_returns_joined_rows() {
        let db = tiny_db();
        let t = template_t1(&db).unwrap();
        // Pick a (date, supp) pair that actually exists.
        let mut date = 0;
        let mut supp = 0;
        let mut okey = 0;
        db.with_relation("orders", |r| {
            let (_, t) = r.iter().next().unwrap();
            okey = t.get(0).as_int().unwrap();
            date = t.get(2).as_int().unwrap();
        })
        .unwrap();
        db.with_relation("lineitem", |r| {
            for (_, t) in r.iter() {
                if t.get(0).as_int().unwrap() == okey {
                    supp = t.get(1).as_int().unwrap();
                    break;
                }
            }
        })
        .unwrap();
        let q = t1_query(&t, &[date], &[supp]).unwrap();
        let (rows, stats) = pmv_query::execute(&db, &q).unwrap();
        assert!(!rows.is_empty());
        assert_eq!(stats.fallback_scans, 0, "must run fully indexed");
        assert_eq!(q.combination_factor(), 1);
    }

    #[test]
    fn t2_query_combination_factor() {
        let db = tiny_db();
        let t = template_t2(&db).unwrap();
        let q = t2_query(&t, &[1, 2], &[3, 4], &[5]).unwrap();
        assert_eq!(q.combination_factor(), 4);
        // Executes without error (may be empty on tiny data).
        let (_, stats) = pmv_query::execute(&db, &q).unwrap();
        assert_eq!(stats.fallback_scans, 0);
    }

    #[test]
    fn values_including_invariants() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = values_including(&mut rng, 100, 5, 42);
            assert_eq!(v.len(), 5);
            assert!(v.contains(&42));
            let set: HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), 5, "values must be distinct");
            assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }
    }

    #[test]
    fn values_including_full_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v = values_including(&mut rng, 5, 5, 2);
        v.sort();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }
}
