//! Offline shim of the `criterion` benchmarking API surface used by this
//! workspace: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology is deliberately simple — a warm-up phase followed by a
//! fixed measurement window, reporting mean ns/iter — which is enough to
//! compare alternatives locally without the statistics machinery of the
//! real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Runs one benchmark body repeatedly and records elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_sampled<F: FnMut(&mut Bencher)>(label: &str, mut body: F) {
    // Calibrate: find an iteration count taking roughly the target window.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        body(&mut b);
        if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    // Measure.
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    body(&mut b);
    let per_iter = b.elapsed.as_nanos() as f64 / iters.max(1) as f64;
    println!("{label:<48} {per_iter:>12.1} ns/iter  ({iters} iters)");
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run `body` as a benchmark named `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, body: F) {
        run_sampled(&format!("{}/{}", self.name, id), body);
    }

    /// Run `body` with an input value, named by `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) {
        run_sampled(&format!("{}/{}", self.name, id), |b| body(b, input));
    }

    /// End the group (no-op; matches upstream API).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh driver with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, body: F) {
        run_sampled(&id.to_string(), body);
    }
}

/// Declare a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
