//! Property test: the epoch serving path is observationally equivalent
//! to the locked path (ISSUE 5 satellite). Under an arbitrary
//! interleaving of inserts, deletes, and queries, a query answered from
//! a fresh pin via [`EpochDb::query`] → [`SharedPmv::run_pinned`] must
//! return exactly the multiset the locked [`SharedPmv::run`] returns
//! under the database read lock — and both must agree with the plain
//! executor oracle. Each path owns its own view so cache states evolve
//! independently; equivalence therefore exercises fills, hits, evictions
//! and the epoch gates, not just cold execution.

use pmv_cache::PolicyKind;
use pmv_core::{EpochDb, PartialViewDef, PmvConfig, SharedPmv};
use pmv_index::IndexDef;
use pmv_query::{execute, Condition, Database, TemplateBuilder, Transaction};
use pmv_storage::{tuple, Column, ColumnType, Schema, Value};
use proptest::prelude::*;

fn setup() -> (EpochDb, SharedPmv, SharedPmv) {
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    for i in 0..40i64 {
        db.insert("r", tuple![i, i % 8]).unwrap();
    }
    db.create_index(IndexDef::btree("r", vec![1])).unwrap();
    let t = TemplateBuilder::new("t")
        .relation(db.schema("r").unwrap())
        .select("r", "a")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .build()
        .unwrap();
    let def = |name: &str| PartialViewDef::all_equality(name, t.clone()).unwrap();
    let locked = SharedPmv::with_shards(def("locked"), PmvConfig::new(3, 8, PolicyKind::Clock), 4);
    let epoch = SharedPmv::with_shards(def("epoch"), PmvConfig::new(3, 8, PolicyKind::Clock), 4);
    (EpochDb::new(db), locked, epoch)
}

/// Ops are encoded as `(kind, f, a)`: kind 0 = query `f`, kind 1 =
/// insert `(a, f)`, kind 2 = delete one row with selector `f`.
fn ops() -> impl Strategy<Value = Vec<(u8, i64, i64)>> {
    proptest::collection::vec((0u8..3, 0i64..8, 100i64..200), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn epoch_path_equals_locked_path(ops in ops()) {
        let (edb, locked, epoch) = setup();
        let t = locked.def().template().clone();
        for (kind, f, a) in ops {
            match kind {
                0 => {
                    let q = t
                        .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                        .unwrap();
                    let pinned = edb.query(&epoch, &q).unwrap();
                    prop_assert_eq!(pinned.ds_leftover, 0);
                    let guard = edb.read();
                    let via_lock = locked.run(&guard, &q).unwrap();
                    prop_assert_eq!(via_lock.ds_leftover, 0);
                    let (oracle, _) = execute(&*guard, &q).unwrap();
                    drop(guard);
                    let mut a = pinned.all_results();
                    let mut b = via_lock.all_results();
                    // The oracle returns expanded (`Ls'`) tuples; project
                    // them onto the user-visible select list.
                    let mut c: Vec<_> = oracle.iter().map(|e| t.user_tuple(e)).collect();
                    a.sort();
                    b.sort();
                    c.sort();
                    prop_assert_eq!(&a, &b, "epoch vs locked diverged on f={}", f);
                    prop_assert_eq!(&a, &c, "epoch vs oracle diverged on f={}", f);
                }
                1 => {
                    edb.commit(&[&locked, &epoch], move |db| {
                        let mut txn = Transaction::begin(db);
                        txn.insert("r", tuple![a, f]).unwrap();
                        Ok(((), txn.commit()))
                    })
                    .unwrap();
                }
                _ => {
                    let row = {
                        let guard = edb.read();
                        let handle = guard.relation("r").unwrap();
                        let rel = handle.read();
                        let row = rel
                            .iter()
                            .find(|(_, tu)| tu.get(1) == &Value::Int(f))
                            .map(|(r, _)| r);
                        row
                    };
                    let Some(row) = row else { continue };
                    edb.commit(&[&locked, &epoch], move |db| {
                        let mut txn = Transaction::begin(db);
                        txn.delete("r", row).unwrap();
                        Ok(((), txn.commit()))
                    })
                    .unwrap();
                }
            }
        }
        // No run may leave either view serving stale tuples.
        let guard = edb.read();
        prop_assert_eq!(locked.revalidate(&guard).unwrap(), 0);
        prop_assert_eq!(epoch.revalidate(&guard).unwrap(), 0);
        locked.debug_validate();
        epoch.debug_validate();
    }
}
