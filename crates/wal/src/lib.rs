//! Crash durability for the PMV engine: write-ahead logging, snapshot
//! checkpoints, and deterministic recovery.
//!
//! The design follows the classic redo-only protocol, adapted to the
//! workspace's flat-combining group commit:
//!
//! * **WAL.** The combining winner appends *one* [`record`] per group
//!   commit — the merged [`DeltaBatch`]es of every drained transaction —
//!   and fsyncs before the new snapshot is published. Durable strictly
//!   precedes visible: a reader can never observe state that a crash
//!   could lose ([`Durability::append_commit`]).
//! * **Checkpoints.** A pinned immutable `DbSnapshot` is serialized to
//!   `ckpt.<lsn>.json` off the write path (temp file + fsync + atomic
//!   rename), then the WAL rotates to a fresh segment and segments
//!   wholly behind the checkpoint are deleted ([`Durability::checkpoint`]).
//! * **Recovery.** [`Durability::open`] loads the newest *valid*
//!   checkpoint (corrupt ones are skipped, counted, and left for
//!   forensics), replays the WAL tail in LSN order through
//!   `Database::apply_delta_exact` — RowId-exact, so the recovered heap
//!   is byte-for-byte the slot layout the log was written against —
//!   truncates any torn tail, and stops at the first LSN gap (the
//!   contiguous-prefix rule: a record is committed only if it *and all
//!   its predecessors* survived).
//!
//! Every disk write goes through [`dio`], the fault-injectable I/O
//! chokepoint, which is what makes the kill-point matrix test possible:
//! a seeded plan can kill the process at any write, fsync, rename, or
//! delete and recovery must land on exactly the durable prefix.
//!
//! [`DeltaBatch`]: pmv_storage::DeltaBatch

pub mod checkpoint;
pub mod codec;
pub mod dio;
pub mod record;
pub mod spool;

pub use checkpoint::{CheckpointMeta, ViewSpec};
pub use spool::DiskSpool;

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pmv_faultinject::Site;
use pmv_obs::{ObsRegistry, Phase};
use pmv_query::Database;
use pmv_storage::DeltaBatch;

/// Durability-layer failure.
#[derive(Debug)]
pub enum WalError {
    /// Disk I/O failed (possibly fault-injected).
    Io(std::io::Error),
    /// A WAL payload did not decode.
    Decode(codec::DecodeError),
    /// A checkpoint did not serialize, parse, or restore.
    Checkpoint(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "durability I/O error: {e}"),
            WalError::Decode(e) => write!(f, "{e}"),
            WalError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<codec::DecodeError> for WalError {
    fn from(e: codec::DecodeError) -> Self {
        WalError::Decode(e)
    }
}

/// Result alias for the durability layer.
pub type WalResult<T> = std::result::Result<T, WalError>;

/// What recovery found and did, for `health` output and assertions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// A valid checkpoint was loaded.
    pub checkpoint_found: bool,
    /// LSN of the loaded checkpoint (0 when none).
    pub checkpoint_lsn: u64,
    /// Newer checkpoints that failed to parse and were skipped.
    pub checkpoints_skipped: u64,
    /// WAL records replayed past the checkpoint.
    pub replayed_records: u64,
    /// Individual deltas applied during replay.
    pub replayed_deltas: u64,
    /// A torn tail (or LSN gap) was found and truncated.
    pub torn_tail: bool,
    /// Highest LSN reflected in the recovered database.
    pub durable_lsn: u64,
}

/// The outcome of opening a data directory: the durability engine
/// (owning the active WAL segment) plus the recovered database and the
/// checkpoint metadata (registered view specs, analyzed flag).
pub struct Recovered {
    /// The durability engine, ready for [`Durability::append_commit`].
    pub durability: Durability,
    /// The recovered database: checkpoint image + replayed WAL tail.
    pub db: Database,
    /// Metadata from the loaded checkpoint (empty when none existed).
    pub meta: CheckpointMeta,
}

struct WalState {
    file: File,
    /// Clean length of the active segment (bytes of durable records).
    len: u64,
    next_lsn: u64,
    /// Segments sorted by start LSN; the last entry is the active one.
    segments: Vec<(u64, PathBuf)>,
}

/// The durability engine: one per data directory.
pub struct Durability {
    dir: PathBuf,
    obs: Arc<ObsRegistry>,
    info: RecoveryInfo,
    inner: Mutex<WalState>,
}

fn seg_name(start_lsn: u64) -> String {
    // Zero-padded so lexicographic file listings sort numerically.
    format!("wal.{start_lsn:020}.log")
}

fn ckpt_name(lsn: u64) -> String {
    format!("ckpt.{lsn:020}.json")
}

impl Durability {
    /// Open (or create) a data directory, recovering its contents. See
    /// the module docs for the recovery protocol.
    pub fn open(dir: &Path) -> WalResult<Recovered> {
        Self::open_with_obs(dir, Arc::new(ObsRegistry::new()))
    }

    /// [`Durability::open`] recording phases into a caller-supplied
    /// registry (`wal_append`, `wal_fsync`, `ckpt_write`,
    /// `recovery_replay`).
    pub fn open_with_obs(dir: &Path, obs: Arc<ObsRegistry>) -> WalResult<Recovered> {
        dio::create_dir_all(dir)?;
        let t0 = Instant::now();

        // Inventory the directory. `.tmp` leftovers from a crashed
        // checkpoint have four dot-parts and are ignored (harmless:
        // the next checkpoint overwrites them).
        let mut ckpts: Vec<(u64, PathBuf)> = Vec::new();
        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let parts: Vec<&str> = name.split('.').collect();
            if parts.len() != 3 {
                continue;
            }
            match (parts[0], parts[1].parse::<u64>(), parts[2]) {
                ("ckpt", Ok(lsn), "json") => ckpts.push((lsn, entry.path())),
                ("wal", Ok(start), "log") => segments.push((start, entry.path())),
                _ => {}
            }
        }
        ckpts.sort_by_key(|c| std::cmp::Reverse(c.0));
        segments.sort_by_key(|s| s.0);

        // Newest checkpoint that actually parses wins.
        let mut info = RecoveryInfo::default();
        let mut db = Database::new();
        let mut meta = CheckpointMeta::default();
        for (lsn, path) in &ckpts {
            match checkpoint::load(path) {
                Ok((loaded_db, loaded_meta)) => {
                    db = loaded_db;
                    meta = loaded_meta;
                    info.checkpoint_found = true;
                    info.checkpoint_lsn = *lsn;
                    break;
                }
                Err(_) => info.checkpoints_skipped += 1,
            }
        }

        // Prune segments wholly behind the checkpoint — leftovers of a
        // checkpoint whose truncation step crashed. A segment is dead
        // when its successor starts at or before checkpoint_lsn + 1
        // (so every record it holds is <= checkpoint_lsn).
        let mut i = 0;
        while i + 1 < segments.len() {
            if segments[i + 1].0 <= info.checkpoint_lsn + 1 {
                dio::remove_file(&segments[i].1)?;
                segments.remove(i);
            } else {
                i += 1;
            }
        }

        // Replay the tail in LSN order, truncating torn bytes and
        // stopping (plus truncating/deleting the untrusted remainder)
        // at the first gap.
        let mut last = info.checkpoint_lsn;
        let mut idx = 0;
        'segments: while idx < segments.len() {
            let (_, path) = &segments[idx];
            let bytes = std::fs::read(path)?;
            let scan = record::scan(&bytes);
            if scan.torn {
                info.torn_tail = true;
                let f = dio::open_append(path)?;
                dio::truncate(&f, scan.clean_len)?;
            }
            let mut trusted_end = 0u64;
            for rec in &scan.records {
                let rec_bytes = 16 + rec.payload.len() as u64;
                if rec.lsn <= last {
                    // Already reflected in the checkpoint.
                    trusted_end += rec_bytes;
                    continue;
                }
                if rec.lsn != last + 1 {
                    // Gap: an earlier record was lost, so nothing at or
                    // beyond this point is trustworthy. Truncate it away
                    // and drop all later segments.
                    info.torn_tail = true;
                    let f = dio::open_append(path)?;
                    dio::truncate(&f, trusted_end)?;
                    for (_, stale) in segments.drain(idx + 1..) {
                        dio::remove_file(&stale)?;
                    }
                    break 'segments;
                }
                let batches = codec::decode_batches(&rec.payload)?;
                for batch in &batches {
                    for delta in batch.deltas() {
                        db.apply_delta_exact(batch.relation(), delta).map_err(|e| {
                            WalError::Checkpoint(format!(
                                "replay of lsn {} failed on '{}': {e}",
                                rec.lsn,
                                batch.relation()
                            ))
                        })?;
                        info.replayed_deltas += 1;
                    }
                }
                info.replayed_records += 1;
                last = rec.lsn;
                trusted_end += rec_bytes;
            }
            idx += 1;
        }
        info.durable_lsn = last;
        let next_lsn = last + 1;

        // Adopt the last segment as active, or start a fresh one.
        let (file, len) = match segments.last() {
            Some((_, path)) => {
                let f = dio::open_append(path)?;
                let len = f.metadata()?.len();
                (f, len)
            }
            None => {
                let path = dir.join(seg_name(next_lsn));
                let f = dio::open_append(&path)?;
                segments.push((next_lsn, path));
                (f, 0)
            }
        };
        obs.record(Phase::recovery_replay, t0.elapsed());

        Ok(Recovered {
            durability: Durability {
                dir: dir.to_path_buf(),
                obs,
                info,
                inner: Mutex::new(WalState {
                    file,
                    len,
                    next_lsn,
                    segments,
                }),
            },
            db,
            meta,
        })
    }

    /// Append one group commit's delta batches as a single WAL record
    /// and fsync it. Returns the record's LSN. On failure the segment is
    /// truncated back to its pre-append length (undoing a torn write)
    /// and the LSN is not consumed — the commit never happened,
    /// durably speaking, and the caller must roll it back in memory.
    pub fn append_commit(&self, batches: &[DeltaBatch]) -> WalResult<u64> {
        let payload = codec::encode_batches(batches);
        let mut st = self.inner.lock().unwrap();
        let lsn = st.next_lsn;
        let bytes = record::encode(lsn, &payload);
        let pre_len = st.len;

        let t0 = Instant::now();
        let appended = dio::write_all(&mut st.file, Site::WalAppend, &bytes);
        self.obs.record(Phase::wal_append, t0.elapsed());
        if let Err(e) = appended {
            let _ = dio::truncate(&st.file, pre_len);
            return Err(e.into());
        }

        let t1 = Instant::now();
        let synced = dio::fsync(&st.file, Site::WalFsync);
        self.obs.record(Phase::wal_fsync, t1.elapsed());
        if let Err(e) = synced {
            let _ = dio::truncate(&st.file, pre_len);
            return Err(e.into());
        }

        st.len = pre_len + bytes.len() as u64;
        st.next_lsn = lsn + 1;
        Ok(lsn)
    }

    /// Write a checkpoint at `meta.lsn` (which must be a durable LSN —
    /// callers pass the durable mark captured with the snapshot), then
    /// rotate the WAL and delete segments wholly behind the checkpoint.
    /// Serialization happens from the immutable snapshot without
    /// holding the WAL lock, so concurrent commits keep flowing.
    pub fn checkpoint(
        &self,
        snap: &pmv_query::DbSnapshot,
        meta: &CheckpointMeta,
    ) -> WalResult<PathBuf> {
        let path = self.dir.join(ckpt_name(meta.lsn));
        let t0 = Instant::now();
        let saved = checkpoint::save(snap, meta, &path);
        self.obs.record(Phase::ckpt_write, t0.elapsed());
        saved?;

        let mut st = self.inner.lock().unwrap();
        // Rotate only when the active segment could hold records the
        // checkpoint now covers; a segment starting past the checkpoint
        // keeps accepting appends.
        if st.segments.last().is_none_or(|s| s.0 <= meta.lsn) {
            let start = st.next_lsn;
            let seg_path = self.dir.join(seg_name(start));
            st.file = dio::open_append(&seg_path)?;
            st.len = 0;
            st.segments.push((start, seg_path));
        }
        let mut i = 0;
        while i + 1 < st.segments.len() {
            if st.segments[i + 1].0 <= meta.lsn + 1 {
                let dead = st.segments[i].1.clone();
                dio::remove_file(&dead)?;
                st.segments.remove(i);
            } else {
                i += 1;
            }
        }
        drop(st);
        dio::fsync_dir(&self.dir)?;
        Ok(path)
    }

    /// What recovery found when this directory was opened.
    pub fn recovery_info(&self) -> &RecoveryInfo {
        &self.info
    }

    /// LSN the next commit will receive.
    pub fn next_lsn(&self) -> u64 {
        self.inner.lock().unwrap().next_lsn
    }

    /// Highest LSN known durable (0 before the first commit).
    pub fn durable_lsn(&self) -> u64 {
        self.inner.lock().unwrap().next_lsn - 1
    }

    /// Bytes of durable records in the active WAL segment.
    pub fn active_segment_bytes(&self) -> u64 {
        self.inner.lock().unwrap().len
    }

    /// Number of live WAL segment files.
    pub fn segment_count(&self) -> usize {
        self.inner.lock().unwrap().segments.len()
    }

    /// The data directory this engine owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Phase registry the engine records into.
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::{tuple, Column, ColumnType, Delta, RowId, Schema};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pmv_wal_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("name", ColumnType::Str),
            ],
        )
    }

    fn insert_batch(row: u32, id: i64) -> DeltaBatch {
        let mut b = DeltaBatch::new("t");
        b.push(Delta::Insert {
            row: RowId(row),
            tuple: tuple![id, "x"],
        });
        b
    }

    #[test]
    fn fresh_dir_appends_and_replays() {
        let dir = tmp_dir("fresh");
        let rec = Durability::open(&dir).unwrap();
        let mut db = rec.db;
        db.create_relation(schema()).unwrap();
        assert_eq!(
            rec.durability
                .append_commit(&[insert_batch(0, 10)])
                .unwrap(),
            1
        );
        assert_eq!(
            rec.durability
                .append_commit(&[insert_batch(1, 20)])
                .unwrap(),
            2
        );
        drop(rec.durability);

        // Recovery with no checkpoint starts from an empty catalog, so
        // replay the log against a db that has the relation; here we
        // checkpointed nothing, so replay must fail cleanly...
        let err = match Durability::open(&dir) {
            Err(e) => e,
            Ok(_) => panic!("replay without a checkpoint must fail (DDL is not in the WAL)"),
        };
        assert!(matches!(err, WalError::Checkpoint(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_then_replay_recovers_exactly() {
        let dir = tmp_dir("ckpt_replay");
        let rec = Durability::open(&dir).unwrap();
        let mut db = rec.db;
        db.create_relation(schema()).unwrap();
        let lsn = rec
            .durability
            .append_commit(&[insert_batch(0, 10)])
            .unwrap();
        db.apply_delta_exact(
            "t",
            &Delta::Insert {
                row: RowId(0),
                tuple: tuple![10i64, "x"],
            },
        )
        .unwrap();

        // Checkpoint covers lsn 1; a later commit rides the WAL tail.
        let snap = db.snapshot();
        let meta = CheckpointMeta {
            lsn,
            epoch: snap.epoch(),
            analyzed: false,
            views: Vec::new(),
        };
        rec.durability.checkpoint(&snap, &meta).unwrap();
        rec.durability
            .append_commit(&[insert_batch(1, 20)])
            .unwrap();
        drop(rec.durability);

        let rec2 = Durability::open(&dir).unwrap();
        let info = rec2.durability.recovery_info();
        assert!(info.checkpoint_found);
        assert_eq!(info.checkpoint_lsn, 1);
        assert_eq!(info.replayed_records, 1);
        assert_eq!(info.durable_lsn, 2);
        assert!(!info.torn_tail);
        let t = rec2.db.relation("t").unwrap();
        let rel = pmv_storage::relation_snapshot(&t);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.get(RowId(1)).unwrap(), &tuple![20i64, "x"]);
        assert_eq!(rec2.durability.next_lsn(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let rec = Durability::open(&dir).unwrap();
        let mut db = rec.db;
        db.create_relation(schema()).unwrap();
        let snap = db.snapshot();
        rec.durability
            .checkpoint(
                &snap,
                &CheckpointMeta {
                    lsn: 0,
                    epoch: snap.epoch(),
                    analyzed: false,
                    views: Vec::new(),
                },
            )
            .unwrap();
        rec.durability
            .append_commit(&[insert_batch(0, 10)])
            .unwrap();
        drop(rec.durability);

        // Simulate a crash mid-append: garbage half-record at the tail.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "log"))
            .unwrap();
        let clean = std::fs::metadata(&seg).unwrap().len();
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[0x55; 11]);
        std::fs::write(&seg, &bytes).unwrap();

        let rec2 = Durability::open(&dir).unwrap();
        let info = rec2.durability.recovery_info();
        assert!(info.torn_tail);
        assert_eq!(info.durable_lsn, 1);
        assert_eq!(std::fs::metadata(&seg).unwrap().len(), clean);
        // The engine appends cleanly after truncation.
        assert_eq!(
            rec2.durability
                .append_commit(&[insert_batch(1, 20)])
                .unwrap(),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rotates_and_prunes_segments() {
        let dir = tmp_dir("rotate");
        let rec = Durability::open(&dir).unwrap();
        let mut db = rec.db;
        db.create_relation(schema()).unwrap();
        for (i, id) in [(0u32, 10i64), (1, 20), (2, 30)] {
            rec.durability
                .append_commit(&[insert_batch(i, id)])
                .unwrap();
            db.apply_delta_exact(
                "t",
                &Delta::Insert {
                    row: RowId(i),
                    tuple: tuple![id, "x"],
                },
            )
            .unwrap();
        }
        let snap = db.snapshot();
        rec.durability
            .checkpoint(
                &snap,
                &CheckpointMeta {
                    lsn: 3,
                    epoch: snap.epoch(),
                    analyzed: false,
                    views: Vec::new(),
                },
            )
            .unwrap();
        // The pre-checkpoint segment is gone; a fresh one is active.
        assert_eq!(rec.durability.segment_count(), 1);
        assert_eq!(rec.durability.active_segment_bytes(), 0);
        assert_eq!(
            rec.durability
                .append_commit(&[insert_batch(3, 40)])
                .unwrap(),
            4
        );
        drop(rec.durability);

        let rec2 = Durability::open(&dir).unwrap();
        assert_eq!(rec2.durability.recovery_info().checkpoint_lsn, 3);
        assert_eq!(rec2.durability.recovery_info().replayed_records, 1);
        let rel = pmv_storage::relation_snapshot(&rec2.db.relation("t").unwrap());
        assert_eq!(rel.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let rec = Durability::open(&dir).unwrap();
        let mut db = rec.db;
        db.create_relation(schema()).unwrap();
        let snap = db.snapshot();
        rec.durability
            .checkpoint(
                &snap,
                &CheckpointMeta {
                    lsn: 0,
                    epoch: snap.epoch(),
                    analyzed: false,
                    views: Vec::new(),
                },
            )
            .unwrap();
        drop(rec.durability);
        // A newer, corrupt checkpoint appears.
        std::fs::write(dir.join(ckpt_name(9)), b"{ not json").unwrap();

        let rec2 = Durability::open(&dir).unwrap();
        let info = rec2.durability.recovery_info();
        assert!(info.checkpoint_found);
        assert_eq!(info.checkpoint_lsn, 0);
        assert_eq!(info.checkpoints_skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn views_roundtrip_through_checkpoint() {
        use pmv_storage::Value;
        let dir = tmp_dir("views");
        let rec = Durability::open(&dir).unwrap();
        let mut db = rec.db;
        db.create_relation(schema()).unwrap();
        let snap = db.snapshot();
        let views = vec![ViewSpec {
            name: "q1".to_string(),
            sql: "SELECT id FROM t WHERE id BETWEEN ? AND ?".to_string(),
            f: 8,
            l: 64,
            policy: "clock".to_string(),
            shards: 4,
            dividers: vec![Some(vec![Value::Int(10), Value::Int(20)]), None],
        }];
        rec.durability
            .checkpoint(
                &snap,
                &CheckpointMeta {
                    lsn: 0,
                    epoch: snap.epoch(),
                    analyzed: false,
                    views: views.clone(),
                },
            )
            .unwrap();
        drop(rec.durability);

        let rec2 = Durability::open(&dir).unwrap();
        assert_eq!(rec2.meta.views, views);
        std::fs::remove_dir_all(&dir).ok();
    }
}
