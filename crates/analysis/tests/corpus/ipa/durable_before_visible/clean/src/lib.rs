// IPA corpus (clean): the canonical group-commit shape. The WAL append
// (which reaches an fsync) lexically dominates the publish, and the
// error arm rolls the round back with exact inverses and returns before
// any snapshot becomes visible.

struct Fx;

impl Fx {
    fn commit_round(&self, batches: &[Batch]) {
        if let Err(e) = self.wal.append_commit(batches) {
            for batch in batches.iter().rev() {
                self.db.undo_delta_exact(batch.relation(), batch.delta());
            }
            fx_report(&e);
            return;
        }
        let snap = self.db.snapshot();
        self.published.publish(snap);
    }
}

struct Wal;

impl Wal {
    fn append_commit(&self, batches: &[Batch]) -> Result<(), Error> {
        self.file.write_records(batches);
        self.file.sync_all()
    }
}

fn fx_report(err: &Error) {
    log_line(err);
}
