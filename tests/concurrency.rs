//! Concurrency tests for the Section 3.6 locking protocol: queries take
//! an S lock on the PMV for O2..O3; maintenance takes an X lock. A
//! maintainer therefore cannot slip between a query's partial results and
//! its full execution.

mod common;

use common::{eqt_fixture, eqt_query};
use pmv::prelude::*;
use pmv::query::{LockManager, LockMode};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn maintainer_waits_for_reader() {
    let locks = LockManager::new();
    let s = locks.lock_shared("pmv_obj");
    let done = Arc::new(AtomicBool::new(false));
    let locks2 = locks.clone();
    let done2 = Arc::clone(&done);
    let t = std::thread::spawn(move || {
        let _x = locks2.lock_exclusive("pmv_obj");
        done2.store(true, Ordering::SeqCst);
    });
    std::thread::sleep(Duration::from_millis(40));
    assert!(
        !done.load(Ordering::SeqCst),
        "X lock must wait for the query's S lock"
    );
    drop(s);
    t.join().unwrap();
    assert!(done.load(Ordering::SeqCst));
}

#[test]
fn readers_share_maintainers_serialize() {
    let locks = LockManager::new();
    let in_cs = Arc::new(AtomicUsize::new(0));
    let max_writers = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for i in 0..8 {
        let locks = locks.clone();
        let in_cs = Arc::clone(&in_cs);
        let max_writers = Arc::clone(&max_writers);
        handles.push(std::thread::spawn(move || {
            for _ in 0..200 {
                if i % 2 == 0 {
                    let _g = locks.lock("v", LockMode::Exclusive);
                    let now = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                    max_writers.fetch_max(now, Ordering::SeqCst);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                } else {
                    let _g = locks.lock("v", LockMode::Shared);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        max_writers.load(Ordering::SeqCst),
        1,
        "two X holders overlapped"
    );
    assert_eq!(locks.held_objects(), 0);
}

/// Full-protocol test: one thread streams queries through the pipeline
/// while another applies deletes with maintenance. Each query must be
/// internally consistent (exactly-once: ds_leftover == 0) even though
/// the database changes between queries.
#[test]
fn queries_and_maintenance_interleave_consistently() {
    let fx = eqt_fixture(150);
    let db = Arc::new(parking_lot::RwLock::new(fx.db));
    let template = fx.template;
    let locks = LockManager::new();
    let pipeline = PmvPipeline::with_locks(locks.clone());
    let def = PartialViewDef::all_equality("shared_pmv", template.clone()).unwrap();
    let pmv = Arc::new(parking_lot::Mutex::new(Pmv::new(def, PmvConfig::default())));

    let stop = Arc::new(AtomicBool::new(false));
    let inconsistencies = Arc::new(AtomicUsize::new(0));

    let reader = {
        let db = Arc::clone(&db);
        let pmv = Arc::clone(&pmv);
        let pipeline = pipeline.clone();
        let template = template.clone();
        let stop = Arc::clone(&stop);
        let bad = Arc::clone(&inconsistencies);
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::SeqCst) {
                let q = eqt_query(&template, &[i % 7], &[(i / 7) % 5]);
                let db_guard = db.read();
                let mut pmv_guard = pmv.lock();
                let out = pipeline.run(&db_guard, &mut pmv_guard, &q).unwrap();
                if out.ds_leftover != 0 {
                    bad.fetch_add(1, Ordering::SeqCst);
                }
                drop(pmv_guard);
                drop(db_guard);
                i += 1;
            }
            i
        })
    };

    let writer = {
        let db = Arc::clone(&db);
        let pmv = Arc::clone(&pmv);
        let pipeline = pipeline.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 0i64;
            while !stop.load(Ordering::SeqCst) {
                let mut db_guard = db.write();
                let mut txn = pmv::query::Transaction::begin(&mut db_guard);
                txn.insert(
                    "r",
                    Tuple::new(vec![
                        Value::Int(10_000 + round),
                        Value::Int(round % 76),
                        Value::Int(round % 7),
                    ]),
                )
                .unwrap();
                // Delete some earlier row if present.
                let victim = {
                    let handle = txn.get("r", pmv::storage::RowId((round % 150) as u32));
                    handle
                        .ok()
                        .map(|_| pmv::storage::RowId((round % 150) as u32))
                };
                if let Some(v) = victim {
                    txn.delete("r", v).unwrap();
                }
                let batches = txn.commit();
                // Lock the PMV *before* downgrading the database lock:
                // once the new database state is visible to readers, no
                // reader may probe the not-yet-maintained PMV. (Taking
                // the PMV lock after the downgrade is the seed bug — a
                // reader slipped into the gap, saw the new database with
                // a stale PMV, and served an already-deleted tuple.)
                let mut pmv_guard = pmv.lock();
                let db_read = parking_lot::RwLockWriteGuard::downgrade(db_guard);
                for b in &batches {
                    pipeline.maintain(&db_read, &mut pmv_guard, b).unwrap();
                }
                round += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            round
        })
    };

    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::SeqCst);
    let queries = reader.join().unwrap();
    let rounds = writer.join().unwrap();
    assert!(queries > 10, "reader made progress ({queries} queries)");
    assert!(rounds > 10, "writer made progress ({rounds} rounds)");
    assert_eq!(
        inconsistencies.load(Ordering::SeqCst),
        0,
        "a query saw a stale partial result"
    );

    // Final state sanity: revalidation finds nothing stale.
    let db_guard = db.read();
    let mut pmv_guard = pmv.lock();
    let removed = pmv_guard.revalidate(&db_guard).unwrap();
    assert_eq!(removed, 0, "stale tuples survived maintenance");
}

/// Sharded-PMV stress test: 8 threads hammer one `SharedPmv` — six run
/// queries over mixed hot/cold bcps, two interleave insert+delete
/// transactions with shard maintenance applied before the new database
/// state becomes visible (the `SharedPmv::maintain` contract). Every
/// query must satisfy the end-of-O3 invariant (`ds_leftover == 0`: every
/// partial tuple served in O2 was re-derived by the full execution), and
/// a final revalidation must find nothing stale.
#[test]
fn sharded_pmv_eight_thread_stress() {
    let fx = eqt_fixture(150);
    let db = Arc::new(parking_lot::RwLock::new(fx.db));
    let template = fx.template;
    let def = PartialViewDef::all_equality("sharded_pmv", template.clone()).unwrap();
    let shared = SharedPmv::with_shards(def, PmvConfig::default(), 8);

    let stop = Arc::new(AtomicBool::new(false));
    let inconsistencies = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();

    for thread in 0..8u64 {
        let db = Arc::clone(&db);
        let shared = shared.clone();
        let template = template.clone();
        let stop = Arc::clone(&stop);
        let bad = Arc::clone(&inconsistencies);
        handles.push(std::thread::spawn(move || {
            let mut ops = 0i64;
            if thread < 6 {
                // Query thread: each starts on a different slice of the
                // bcp grid so probes hit different shards in parallel.
                let mut i = thread as i64;
                while !stop.load(Ordering::SeqCst) {
                    let q = eqt_query(&template, &[i % 7], &[(i / 7) % 5]);
                    let guard = db.read();
                    let out = shared.run(&guard, &q).unwrap();
                    if out.ds_leftover != 0 {
                        bad.fetch_add(1, Ordering::SeqCst);
                    }
                    drop(guard);
                    i += 1;
                    ops += 1;
                }
            } else {
                // Maintainer thread: commit a small transaction, then
                // repair the affected shards while still holding the
                // database write guard, so no reader ever sees the new
                // database paired with stale shards.
                let mut round = thread as i64 * 1000;
                while !stop.load(Ordering::SeqCst) {
                    let mut db_guard = db.write();
                    let mut txn = pmv::query::Transaction::begin(&mut db_guard);
                    txn.insert(
                        "r",
                        Tuple::new(vec![
                            Value::Int(100_000 + round),
                            Value::Int(round % 76),
                            Value::Int(round % 7),
                        ]),
                    )
                    .unwrap();
                    let victim = pmv::storage::RowId((round % 150) as u32);
                    if txn.get("r", victim).is_ok() {
                        txn.delete("r", victim).unwrap();
                    }
                    let batches = txn.commit();
                    for b in &batches {
                        shared.maintain(&db_guard, b).unwrap();
                    }
                    drop(db_guard);
                    round += 1;
                    ops += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            ops
        }));
    }

    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::SeqCst);
    let per_thread: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        per_thread.iter().all(|&ops| ops > 5),
        "every thread made progress: {per_thread:?}"
    );
    assert_eq!(
        inconsistencies.load(Ordering::SeqCst),
        0,
        "a query saw a stale partial result (ds_leftover != 0)"
    );

    // Final state: shard invariants hold and revalidation removes nothing.
    shared.debug_validate();
    let db_guard = db.read();
    let removed = shared.revalidate(&db_guard).unwrap();
    assert_eq!(removed, 0, "stale tuples survived sharded maintenance");
    let stats = shared.stats();
    assert!(stats.queries > 50, "query throughput: {stats:?}");
    assert!(stats.maint_deletes_joined > 0, "maintenance ran: {stats:?}");
}
