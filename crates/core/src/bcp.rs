//! Basic condition parts (Section 3.1).
//!
//! For each interval-form selection condition `Ci`, the RDBMS knows
//! "dividing values" that split the attribute's entire range `E_i` into
//! non-overlapping *basic intervals* that fully cover `E_i`; each basic
//! interval gets an id. A **basic condition part** (bcp) is then an
//! m-tuple with, per condition, either an equality value (equality form)
//! or a basic-interval id (interval form) — exactly how the paper stores
//! bcps: "if d_i is of the form R.a = b_i, value b_i is stored; if d_i is
//! an interval, the id of (b_i, c_i) is stored."

use std::fmt;
use std::ops::Bound;

use pmv_query::Interval;
use pmv_storage::{HeapSize, Value};

/// One dimension of a [`BcpKey`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BcpDim {
    /// Equality-form condition: the equality value itself.
    Eq(Value),
    /// Interval-form condition: the basic interval's id.
    Iv(u32),
}

impl fmt::Display for BcpDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BcpDim::Eq(v) => write!(f, "{v}"),
            BcpDim::Iv(id) => write!(f, "#{id}"),
        }
    }
}

/// A basic condition part: one [`BcpDim`] per selection condition.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BcpKey {
    dims: Box<[BcpDim]>,
}

impl BcpKey {
    /// Build from dimensions (one per condition, in `Cselect` order).
    pub fn new(dims: impl Into<Box<[BcpDim]>>) -> Self {
        BcpKey { dims: dims.into() }
    }

    /// Dimensions.
    pub fn dims(&self) -> &[BcpDim] {
        &self.dims
    }

    /// Number of dimensions (`m`).
    pub fn arity(&self) -> usize {
        self.dims.len()
    }
}

impl fmt::Debug for BcpKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bcp(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl HeapSize for BcpKey {
    fn heap_size(&self) -> usize {
        self.dims.len() * std::mem::size_of::<BcpDim>()
            + self
                .dims
                .iter()
                .map(|d| match d {
                    BcpDim::Eq(v) => v.heap_size(),
                    BcpDim::Iv(_) => 0,
                })
                .sum::<usize>()
    }
}

/// Discretizer for one interval-form condition: sorted dividing values
/// splitting `E = (-∞, +∞)` into half-open basic intervals
/// `(-∞, d_0), [d_0, d_1), …, [d_{n-1}, +∞)` with ids `0..=n`.
///
/// ```
/// use pmv_core::Discretizer;
/// use pmv_storage::Value;
///
/// let d = Discretizer::new(vec![Value::Int(10), Value::Int(20)]);
/// assert_eq!(d.interval_count(), 3);
/// assert_eq!(d.id_of(&Value::Int(5)), 0);   // (-inf, 10)
/// assert_eq!(d.id_of(&Value::Int(10)), 1);  // [10, 20)
/// assert_eq!(d.id_of(&Value::Int(25)), 2);  // [20, +inf)
/// ```
///
/// The half-open convention makes the basic intervals a true partition
/// (every domain value belongs to exactly one basic interval), which the
/// paper requires ("non-overlapping basic intervals … fully cover E_i").
#[derive(Clone, Debug, PartialEq)]
pub struct Discretizer {
    dividers: Vec<Value>,
}

impl Discretizer {
    /// Build from dividing values; they are sorted and deduplicated.
    pub fn new(mut dividers: Vec<Value>) -> Self {
        dividers.sort();
        dividers.dedup();
        Discretizer { dividers }
    }

    /// Build from dividing values **verbatim**, trusting the caller —
    /// for dividers loaded from persisted metadata or supplied by a DBA
    /// tool. Unlike [`Discretizer::new`] this performs no
    /// normalization, so the result may violate the strictly-increasing
    /// (normalized) form; the static verifier exists to catch exactly
    /// that (`PMV002 OverlappingBasicIntervals`, `PMV003
    /// GridGapOnDimension`) before such a grid reaches a registration.
    pub fn from_raw(dividers: Vec<Value>) -> Self {
        Discretizer { dividers }
    }

    /// Whether the dividers are in normalized form: strictly increasing,
    /// so the basic intervals are pairwise disjoint, non-empty, and
    /// fully cover the dimension under the half-open convention.
    pub fn is_normalized(&self) -> bool {
        self.dividers.windows(2).all(|w| w[0] < w[1])
    }

    /// Evenly spaced integer dividers: `lo, lo+step, …` (`count` of them).
    /// Convenience for benchmarks and form-based UIs with regular ranges.
    pub fn int_grid(lo: i64, step: i64, count: usize) -> Self {
        assert!(step > 0, "grid step must be positive");
        Discretizer {
            dividers: (0..count as i64)
                .map(|i| Value::Int(lo + i * step))
                .collect(),
        }
    }

    /// Learn dividing values from a trace of query intervals, per
    /// Section 3.1: "the continuous feature discretization technique in
    /// machine learning can automatically learn dividing values from
    /// query traces", and in form-based applications "these from values
    /// and to values can serve as dividing values."
    ///
    /// Every bounded endpoint observed in the trace becomes a candidate
    /// divider — intervals then align exactly with basic-interval
    /// boundaries, which is the criterion the paper states ("the
    /// resulting basic intervals can be used to differentiate hot
    /// results from cold results"). When candidates exceed
    /// `max_dividers`, the most *frequent* endpoints are kept (hot form
    /// choices recur in a trace; rare ones matter least).
    ///
    /// Endpoint exclusivity matters under the half-open convention
    /// `[d, next)`: a divider at `d` puts `d` itself in the basic
    /// interval to its *right*. An included lower endpoint `[v, …` and
    /// an excluded upper endpoint `…, v)` therefore use `v` directly,
    /// while an excluded lower endpoint `(v, …` and an included upper
    /// endpoint `…, v]` need the divider at `v`'s successor — `v + 1`
    /// for integer domains. Non-integer domains have no successor, so
    /// those endpoints fall back to `v`, the closest expressible
    /// divider (the basic interval then mixes the boundary value in;
    /// that is inherent, not a bug).
    pub fn learn_from_trace(trace: &[Interval], max_dividers: usize) -> Self {
        use std::collections::HashMap;
        assert!(max_dividers > 0, "need at least one divider");
        fn successor(v: &Value) -> Value {
            match v {
                Value::Int(i) => Value::Int(i.saturating_add(1)),
                other => other.clone(),
            }
        }
        let mut freq: HashMap<Value, usize> = HashMap::new();
        for iv in trace {
            let lo = match &iv.lo {
                Bound::Included(v) => Some(v.clone()),
                Bound::Excluded(v) => Some(successor(v)),
                Bound::Unbounded => None,
            };
            let hi = match &iv.hi {
                Bound::Excluded(v) => Some(v.clone()),
                Bound::Included(v) => Some(successor(v)),
                Bound::Unbounded => None,
            };
            // Normalize per interval: under the half-open convention the
            // two endpoints of a degenerate interval (e.g. the empty
            // `(10, 11)` over integers) map to the *same* divider; count
            // it once, not twice, or a single degenerate trace entry
            // outweighs two distinct hot endpoints.
            let same = matches!((&lo, &hi), (Some(a), Some(b)) if a == b);
            for v in [lo, if same { None } else { hi }].into_iter().flatten() {
                *freq.entry(v).or_insert(0) += 1;
            }
        }
        let mut candidates: Vec<(Value, usize)> = freq.into_iter().collect();
        // Most frequent first; ties broken by value for determinism.
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        candidates.truncate(max_dividers);
        Discretizer::new(candidates.into_iter().map(|(v, _)| v).collect())
    }

    /// The dividing values, sorted.
    pub fn dividers(&self) -> &[Value] {
        &self.dividers
    }

    /// Number of basic intervals (`dividers + 1`).
    pub fn interval_count(&self) -> usize {
        self.dividers.len() + 1
    }

    /// Id of the basic interval containing `v`.
    pub fn id_of(&self, v: &Value) -> u32 {
        self.dividers.partition_point(|d| d <= v) as u32
    }

    /// The basic interval with id `id`.
    pub fn interval_of(&self, id: u32) -> Interval {
        let id = id as usize;
        assert!(id < self.interval_count(), "basic interval id out of range");
        let lo = if id == 0 {
            Bound::Unbounded
        } else {
            Bound::Included(self.dividers[id - 1].clone())
        };
        let hi = if id == self.dividers.len() {
            Bound::Unbounded
        } else {
            Bound::Excluded(self.dividers[id].clone())
        };
        Interval { lo, hi }
    }

    /// Ids of all basic intervals that overlap `query` (the paper's `J_r`
    /// sets in Operation O1), in ascending order.
    pub fn overlapping_ids(&self, query: &Interval) -> std::ops::RangeInclusive<u32> {
        let first = match &query.lo {
            Bound::Unbounded => 0,
            Bound::Included(v) | Bound::Excluded(v) => self.id_of(v),
        };
        let last = match &query.hi {
            Bound::Unbounded => (self.interval_count() - 1) as u32,
            Bound::Included(v) => self.id_of(v),
            Bound::Excluded(v) => {
                // An interval ending exactly at a divider (exclusive) does
                // not reach the basic interval that starts there.
                let id = self.id_of(v);
                if id > 0 && self.dividers[id as usize - 1] == *v {
                    id - 1
                } else {
                    id
                }
            }
        };
        first..=last
    }

    /// The portion of basic interval `id` covered by `query`
    /// (intersection), or `None` if they do not overlap. Also reports
    /// whether the fragment covers the whole basic interval.
    pub fn fragment(&self, id: u32, query: &Interval) -> Option<(Interval, bool)> {
        let basic = self.interval_of(id);
        let frag = basic.intersect(query)?;
        let whole = frag == basic;
        Some((frag, whole))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: i64) -> Value {
        Value::Int(x)
    }

    #[test]
    fn id_of_partitions_domain() {
        let d = Discretizer::new(vec![v(10), v(20), v(30)]);
        assert_eq!(d.interval_count(), 4);
        assert_eq!(d.id_of(&v(-100)), 0);
        assert_eq!(d.id_of(&v(9)), 0);
        assert_eq!(d.id_of(&v(10)), 1); // divider belongs to the right
        assert_eq!(d.id_of(&v(19)), 1);
        assert_eq!(d.id_of(&v(20)), 2);
        assert_eq!(d.id_of(&v(30)), 3);
        assert_eq!(d.id_of(&v(1000)), 3);
    }

    #[test]
    fn interval_of_roundtrips_with_id_of() {
        let d = Discretizer::new(vec![v(10), v(20)]);
        for x in [-5i64, 0, 9, 10, 15, 19, 20, 25, 100] {
            let id = d.id_of(&v(x));
            assert!(
                d.interval_of(id).contains(&v(x)),
                "value {x} must lie in its own basic interval"
            );
        }
    }

    #[test]
    fn basic_intervals_are_disjoint_and_cover() {
        let d = Discretizer::new(vec![v(10), v(20)]);
        let all: Vec<Interval> = (0..d.interval_count() as u32)
            .map(|i| d.interval_of(i))
            .collect();
        for (i, a) in all.iter().enumerate() {
            for b in &all[..i] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
        // Coverage at and around dividers.
        for x in [9i64, 10, 11, 19, 20, 21] {
            assert!(all.iter().any(|iv| iv.contains(&v(x))));
        }
    }

    #[test]
    fn overlapping_ids_basic() {
        let d = Discretizer::new(vec![v(10), v(20), v(30)]);
        // (12, 28) overlaps basic intervals [10,20) and [20,30).
        assert_eq!(d.overlapping_ids(&Interval::open(12i64, 28i64)), 1..=2);
        // (5, 35) overlaps all four.
        assert_eq!(d.overlapping_ids(&Interval::open(5i64, 35i64)), 0..=3);
        // Unbounded covers everything.
        assert_eq!(d.overlapping_ids(&Interval::everything()), 0..=3);
    }

    #[test]
    fn overlapping_ids_at_divider_boundaries() {
        let d = Discretizer::new(vec![v(10), v(20)]);
        // [10, 20) is exactly basic interval 1.
        assert_eq!(d.overlapping_ids(&Interval::half_open(10i64, 20i64)), 1..=1);
        // (10, 20] touches basic 1 and basic 2 (value 20 itself).
        assert_eq!(d.overlapping_ids(&Interval::open(10i64, 20i64)), 1..=1);
        assert_eq!(d.overlapping_ids(&Interval::closed(10i64, 20i64)), 1..=2);
        // [5, 10) stays in basic 0 even though it ends at the divider.
        assert_eq!(d.overlapping_ids(&Interval::half_open(5i64, 10i64)), 0..=0);
    }

    #[test]
    fn fragment_detects_whole_coverage() {
        let d = Discretizer::new(vec![v(10), v(20)]);
        // Query (5, 25) fully covers basic 1 = [10, 20).
        let q = Interval::open(5i64, 25i64);
        let (frag, whole) = d.fragment(1, &q).unwrap();
        assert!(whole);
        assert_eq!(frag, d.interval_of(1));
        // Partially covers basic 0 and basic 2.
        let (frag0, whole0) = d.fragment(0, &q).unwrap();
        assert!(!whole0);
        assert!(frag0.contains(&v(6)));
        assert!(!frag0.contains(&v(5)));
        let (_, whole2) = d.fragment(2, &q).unwrap();
        assert!(!whole2);
        // Non-overlapping id.
        let far = Interval::open(100i64, 200i64);
        assert!(d.fragment(0, &far).is_none());
    }

    #[test]
    fn int_grid_spacing() {
        let d = Discretizer::int_grid(0, 10, 3); // dividers 0, 10, 20
        assert_eq!(d.dividers(), &[v(0), v(10), v(20)]);
        assert_eq!(d.interval_count(), 4);
        assert_eq!(d.id_of(&v(-1)), 0);
        assert_eq!(d.id_of(&v(0)), 1);
        assert_eq!(d.id_of(&v(15)), 2);
    }

    #[test]
    fn learn_from_trace_uses_endpoints() {
        let trace = vec![
            Interval::half_open(10i64, 20i64),
            Interval::half_open(10i64, 30i64),
            Interval::above(20i64, true),
        ];
        let d = Discretizer::learn_from_trace(&trace, 10);
        assert_eq!(d.dividers(), &[v(10), v(20), v(30)]);
        // Every trace interval now aligns with basic-interval borders:
        // its fragments are whole basic intervals.
        for iv in &trace {
            for id in d.overlapping_ids(iv) {
                let (_, whole) = d.fragment(id, iv).unwrap();
                assert!(whole, "interval {iv} fragment {id} not whole");
            }
        }
    }

    #[test]
    fn learn_from_trace_respects_exclusive_endpoints() {
        // (10, 21) over integers is {11, …, 20} = [11, 21), so the
        // learned dividers must be 11 and 21. The seed used the raw
        // endpoints 10 and 21, putting the *cold* boundary value 10 in
        // the same basic interval as the hot values 11..=20.
        let d = Discretizer::learn_from_trace(&[Interval::open(10i64, 21i64)], 10);
        assert_eq!(d.dividers(), &[v(11), v(21)]);
        assert_ne!(
            d.id_of(&v(10)),
            d.id_of(&v(11)),
            "cold 10 split from hot 11"
        );
        assert_eq!(d.id_of(&v(11)), d.id_of(&v(20)));
        assert_ne!(
            d.id_of(&v(20)),
            d.id_of(&v(21)),
            "hot 20 split from cold 21"
        );
        // The query interval now covers whole basic intervals only.
        let q = Interval::half_open(11i64, 21i64); // same integer set
        for id in d.overlapping_ids(&q) {
            let (_, whole) = d.fragment(id, &q).unwrap();
            assert!(whole);
        }

        // Included upper endpoint: [30, 39] = [30, 40) needs divider 40.
        let d = Discretizer::learn_from_trace(&[Interval::closed(30i64, 39i64)], 10);
        assert_eq!(d.dividers(), &[v(30), v(40)]);
        assert_eq!(d.id_of(&v(30)), d.id_of(&v(39)));
        assert_ne!(d.id_of(&v(39)), d.id_of(&v(40)));

        // Non-integer domains have no successor: fall back to the raw
        // endpoint rather than inventing one.
        let d = Discretizer::learn_from_trace(&[Interval::above("m", false)], 10);
        assert_eq!(d.dividers(), &[Value::str("m")]);
    }

    #[test]
    fn learn_from_trace_normalizes_degenerate_intervals() {
        // (10, 11) over integers is empty: both endpoints normalize to
        // the same divider 11 under the half-open convention, and must
        // count as ONE candidate. Before normalization, this single
        // degenerate interval gave 11 frequency 2, beating both
        // genuinely observed endpoints 5 and 6 for the divider budget.
        let trace = vec![
            Interval::open(10i64, 11i64),
            Interval::half_open(5i64, 6i64),
        ];
        let d = Discretizer::learn_from_trace(&trace, 2);
        assert_eq!(d.dividers(), &[v(5), v(6)]);
        assert!(d.is_normalized());
    }

    #[test]
    fn raw_dividers_bypass_normalization() {
        // `from_raw` trusts the caller verbatim (persisted metadata);
        // the static verifier's PMV002 check asserts the normalized
        // form that `new` establishes.
        let raw = Discretizer::from_raw(vec![v(20), v(10), v(10)]);
        assert!(!raw.is_normalized());
        let normalized = Discretizer::new(vec![v(20), v(10), v(10)]);
        assert!(normalized.is_normalized());
        assert_eq!(normalized.dividers(), &[v(10), v(20)]);
    }

    #[test]
    fn learn_from_trace_keeps_hottest_endpoints() {
        let mut trace = Vec::new();
        for _ in 0..10 {
            trace.push(Interval::half_open(100i64, 200i64)); // hot
        }
        trace.push(Interval::half_open(1i64, 2i64)); // rare
        let d = Discretizer::learn_from_trace(&trace, 2);
        assert_eq!(d.dividers(), &[v(100), v(200)]);
    }

    #[test]
    fn learn_from_trace_ignores_unbounded_sides() {
        let trace = vec![Interval::everything(), Interval::below(7i64, false)];
        let d = Discretizer::learn_from_trace(&trace, 5);
        assert_eq!(d.dividers(), &[v(7)]);
    }

    #[test]
    fn dividers_sorted_and_deduped() {
        let d = Discretizer::new(vec![v(20), v(10), v(20)]);
        assert_eq!(d.dividers(), &[v(10), v(20)]);
    }

    #[test]
    fn bcp_key_equality_and_display() {
        let a = BcpKey::new(vec![BcpDim::Eq(v(5)), BcpDim::Iv(3)]);
        let b = BcpKey::new(vec![BcpDim::Eq(v(5)), BcpDim::Iv(3)]);
        let c = BcpKey::new(vec![BcpDim::Eq(v(5)), BcpDim::Iv(4)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(format!("{a:?}"), "bcp(5, #3)");
        assert_eq!(a.arity(), 2);
    }

    #[test]
    fn string_attribute_discretization() {
        // The paper notes interval attributes "can be non-numerical (e.g.,
        // string)".
        let d = Discretizer::new(vec![Value::str("g"), Value::str("p")]);
        assert_eq!(d.id_of(&Value::str("apple")), 0);
        assert_eq!(d.id_of(&Value::str("grape")), 1);
        assert_eq!(d.id_of(&Value::str("zebra")), 2);
        let ids = d.overlapping_ids(&Interval::closed("b", "h"));
        assert_eq!(ids, 0..=1);
    }
}
