//! Quickstart: build a two-relation database, define a PMV for a query
//! template, and watch partial results arrive before the full answer.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pmv::index::IndexDef;
use pmv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A tiny database: products and their current promotions.
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "products",
        vec![
            Column::new("product_id", ColumnType::Int),
            Column::new("category", ColumnType::Int),
            Column::new("name", ColumnType::Str),
        ],
    ))?;
    db.create_relation(Schema::new(
        "promotions",
        vec![
            Column::new("product_id", ColumnType::Int),
            Column::new("discount", ColumnType::Int),
            Column::new("store", ColumnType::Int),
        ],
    ))?;
    for pid in 0..1000i64 {
        db.insert("products", tuple![pid, pid % 10, format!("product-{pid}")])?;
        if pid % 3 == 0 {
            db.insert("promotions", tuple![pid, (pid % 5) * 10, pid % 7])?;
        }
    }
    // Indexes on every join/selection attribute, as the paper assumes.
    db.create_index(IndexDef::btree("products", vec![0]))?;
    db.create_index(IndexDef::btree("products", vec![1]))?;
    db.create_index(IndexDef::btree("promotions", vec![0]))?;
    db.create_index(IndexDef::btree("promotions", vec![2]))?;

    // 2. A query template (paper Section 2.1): "promoted products of
    //    certain categories in certain stores".
    let template = TemplateBuilder::new("promos_by_category_store")
        .relation(db.schema("products")?)
        .relation(db.schema("promotions")?)
        .join("products", "product_id", "promotions", "product_id")?
        .select("products", "name")?
        .select("promotions", "discount")?
        .cond_eq("products", "category")?
        .cond_eq("promotions", "store")?
        .build()?;

    // 3. A partial materialized view for the template: at most F = 2
    //    result tuples per basic condition part, 10K entries (the
    //    paper's ~1 MB example), CLOCK-managed.
    let def = PartialViewDef::all_equality("promo_pmv", template.clone())?;
    let mut pmv = Pmv::new(def, PmvConfig::default());
    let pipeline = PmvPipeline::new();

    // 4. First query for (category 3, store 2): the PMV is cold, so all
    //    results arrive through normal execution — and get cached.
    let q = template.bind(vec![
        Condition::Equality(vec![Value::Int(3)]),
        Condition::Equality(vec![Value::Int(2)]),
    ])?;
    let out = pipeline.run(&db, &mut pmv, &q)?;
    println!(
        "cold query: {} partial + {} remaining results (overhead {:?})",
        out.partial.len(),
        out.remaining.len(),
        out.timings.overhead()
    );

    // 5. Same hot cell again: partial results are served from memory
    //    immediately, typically in microseconds.
    let out = pipeline.run(&db, &mut pmv, &q)?;
    println!(
        "warm query: {} partial results in {:?} (then {} more after {:?} of execution)",
        out.partial.len(),
        out.timings.o2,
        out.remaining.len(),
        out.timings.exec
    );
    for t in &out.partial {
        println!("  early: {t}");
    }

    // 6. A wider query mixing the hot cell with cold ones still gets the
    //    hot partial results up front, each result exactly once.
    let wide = template.bind(vec![
        Condition::Equality(vec![Value::Int(3), Value::Int(4), Value::Int(5)]),
        Condition::Equality(vec![Value::Int(2), Value::Int(6)]),
    ])?;
    let out = pipeline.run(&db, &mut pmv, &wide)?;
    println!(
        "wide query ({} condition parts): {} early, {} late, hit={}",
        out.parts,
        out.partial.len(),
        out.remaining.len(),
        out.bcp_hit
    );
    assert_eq!(out.ds_leftover, 0, "every result delivered exactly once");

    println!(
        "PMV now caches {} bcp entries / {} tuples ({} bytes)",
        pmv.store().entry_count(),
        pmv.store().tuple_count(),
        pmv.store().byte_size()
    );
    println!("stats: {:?}", pmv.stats());
    Ok(())
}
