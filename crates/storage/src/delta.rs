//! Delta capture: the paper's `ΔR`.
//!
//! Section 3.4 maintains a PMV from the *changes* applied to its base
//! relations: inserts need no maintenance, deletes join `ΔR` against the
//! other base relations, updates are split by whether they touch attributes
//! in the expanded select list `Ls'` or `Cjoin`. [`DeltaBatch`] is the
//! change log a transaction hands to maintenance consumers.

use crate::relation::RowId;
use crate::tuple::Tuple;

/// One change to a base relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// A tuple was inserted.
    Insert {
        /// Slot the tuple now occupies.
        row: RowId,
        /// The inserted tuple.
        tuple: Tuple,
    },
    /// A tuple was deleted.
    Delete {
        /// Slot the tuple occupied.
        row: RowId,
        /// The deleted tuple.
        tuple: Tuple,
    },
    /// A tuple was replaced in place.
    Update {
        /// Slot of the tuple.
        row: RowId,
        /// Value before the update.
        old: Tuple,
        /// Value after the update.
        new: Tuple,
    },
}

impl Delta {
    /// The row this delta touches.
    pub fn row(&self) -> RowId {
        match self {
            Delta::Insert { row, .. } | Delta::Delete { row, .. } | Delta::Update { row, .. } => {
                *row
            }
        }
    }

    /// For an update, the set of column indices whose value changed.
    /// Empty for inserts/deletes (deletion "influences all the attributes",
    /// Section 3.4, and is handled by its own arm).
    pub fn changed_columns(&self) -> Vec<usize> {
        match self {
            Delta::Update { old, new, .. } => (0..old.arity())
                .filter(|&i| old.get(i) != new.get(i))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Ordered changes applied to a single relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    relation: String,
    deltas: Vec<Delta>,
}

impl DeltaBatch {
    /// New empty batch for the named relation.
    pub fn new(relation: impl Into<String>) -> Self {
        DeltaBatch {
            relation: relation.into(),
            deltas: Vec::new(),
        }
    }

    /// Name of the relation the batch applies to.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Append a delta.
    pub fn push(&mut self, d: Delta) {
        self.deltas.push(d);
    }

    /// All deltas in application order.
    pub fn deltas(&self) -> &[Delta] {
        &self.deltas
    }

    /// Number of deltas.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True if no change was recorded.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Iterator over deleted tuples (update-old counts as deleted when the
    /// caller treats an update as delete+insert).
    pub fn deleted_tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.deltas.iter().filter_map(|d| match d {
            Delta::Delete { tuple, .. } => Some(tuple),
            _ => None,
        })
    }

    /// Iterator over inserted tuples.
    pub fn inserted_tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.deltas.iter().filter_map(|d| match d {
            Delta::Insert { tuple, .. } => Some(tuple),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn changed_columns_detects_diffs() {
        let d = Delta::Update {
            row: RowId(0),
            old: tuple![1i64, "a", 3i64],
            new: tuple![1i64, "b", 4i64],
        };
        assert_eq!(d.changed_columns(), vec![1, 2]);
    }

    #[test]
    fn changed_columns_empty_for_insert_delete() {
        let i = Delta::Insert {
            row: RowId(0),
            tuple: tuple![1i64],
        };
        let x = Delta::Delete {
            row: RowId(0),
            tuple: tuple![1i64],
        };
        assert!(i.changed_columns().is_empty());
        assert!(x.changed_columns().is_empty());
    }

    #[test]
    fn batch_filters_by_kind() {
        let mut b = DeltaBatch::new("r");
        b.push(Delta::Insert {
            row: RowId(0),
            tuple: tuple![1i64],
        });
        b.push(Delta::Delete {
            row: RowId(1),
            tuple: tuple![2i64],
        });
        b.push(Delta::Update {
            row: RowId(2),
            old: tuple![3i64],
            new: tuple![4i64],
        });
        assert_eq!(b.len(), 3);
        assert_eq!(b.inserted_tuples().count(), 1);
        assert_eq!(b.deleted_tuples().count(), 1);
        assert_eq!(b.relation(), "r");
    }

    #[test]
    fn row_accessor() {
        let d = Delta::Delete {
            row: RowId(7),
            tuple: tuple![1i64],
        };
        assert_eq!(d.row(), RowId(7));
    }
}
