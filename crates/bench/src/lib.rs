//! Shared harness code for the experiment binaries.
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | Binary   | Reproduces | Section |
//! |----------|------------|---------|
//! | `fig6`   | Hit probability vs. h (CLOCK vs 2Q, α ∈ {1.07, 1.01}) | 4.1 |
//! | `fig7`   | Hit probability vs. N | 4.1 |
//! | `table1` | TPC-R data set sizes vs. scale factor | 4.2 |
//! | `fig8`   | PMV overhead vs. F (templates T1, T2) | 4.2 |
//! | `fig9`   | PMV overhead vs. combination factor h | 4.2 |
//! | `fig10`  | Query execution time vs. PMV overhead across scale factors | 4.2 |
//! | `fig11`  | Maintenance TW for transaction T (MV vs PMV) | 4.3 |
//! | `fig12`  | Maintenance speedup ratio vs. insert fraction p | 4.3 |
//! | `policy_ablation` | CLOCK/2Q/LRU/LRU-2 (the paper's stated future work) | 4.1 |
//! | `f_tradeoff` | Hit probability vs. tuples served under a fixed byte budget | 3.2 |
//!
//! Every binary prints an aligned table plus JSON lines, and accepts
//! `--paper` to run at the paper's full parameters (slower) and
//! `--quick` for a fast smoke run.

pub mod report;
pub mod tpcr_harness;

pub use report::{ExperimentReport, Row};
