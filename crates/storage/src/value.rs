//! Typed values stored in tuples.
//!
//! The query class of the paper (Section 2.1) needs equality comparisons on
//! arbitrary attributes and total ordering on interval-form attributes,
//! which "can be a non-numerical (e.g., string) attribute". [`Value`]
//! therefore implements full `Eq + Ord + Hash` across all variants,
//! including doubles (via bit-normalized comparison).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::size::HeapSize;

/// A dynamically typed scalar value.
///
/// Ordering compares values of the same variant naturally; values of
/// different variants order by a fixed variant rank (`Null < Int < Double <
/// Str`). Templates are statically typed per attribute, so cross-variant
/// comparison only happens for `Null` in practice.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL. Compares equal to itself so tuples remain hashable; the
    /// executor treats predicate comparisons involving NULL as false.
    Null,
    /// 64-bit signed integer. Also used for dates (days since epoch) and
    /// fixed-point money (cents).
    Int(i64),
    /// IEEE-754 double with normalized `-0.0`/NaN so `Eq + Hash` are sound.
    Double(f64),
    /// Reference-counted string; cloning a tuple does not copy string data.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Double payload, if this is a [`Value::Double`].
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used to order across variants.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Double(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Canonical bit pattern for a double: collapses `-0.0` to `+0.0` and
    /// all NaNs to one quiet NaN, so `Eq`/`Hash`/`Ord` agree.
    fn canonical_bits(d: f64) -> u64 {
        if d.is_nan() {
            f64::NAN.to_bits()
        } else if d == 0.0 {
            0.0f64.to_bits()
        } else {
            d.to_bits()
        }
    }

    /// Total order on doubles: NaN sorts greater than all numbers.
    fn cmp_doubles(a: f64, b: f64) -> Ordering {
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => a.partial_cmp(&b).expect("non-NaN doubles compare"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => {
                Self::canonical_bits(*a) == Self::canonical_bits(*b)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => Self::cmp_doubles(*a, *b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.variant_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(v) => v.hash(state),
            Value::Double(d) => Self::canonical_bits(*d).hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl HeapSize for Value {
    fn heap_size(&self) -> usize {
        match self {
            // Strings are shared; we charge the payload to each holder,
            // which over-approximates but keeps the bound conservative.
            Value::Str(s) => s.len(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_ordering_and_equality() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(7), Value::Int(7));
        assert_ne!(Value::Int(7), Value::Int(8));
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Value::str("apple") < Value::str("banana"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn double_negative_zero_equals_positive_zero() {
        assert_eq!(Value::Double(-0.0), Value::Double(0.0));
        assert_eq!(hash_of(&Value::Double(-0.0)), hash_of(&Value::Double(0.0)));
    }

    #[test]
    fn double_nan_is_self_equal_and_sorts_last() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert!(Value::Double(f64::INFINITY) < nan);
        assert_eq!(hash_of(&nan), hash_of(&Value::Double(f64::NAN)));
    }

    #[test]
    fn cross_variant_order_is_stable() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(i64::MAX) < Value::Double(f64::NEG_INFINITY));
        assert!(Value::Double(f64::INFINITY) < Value::str(""));
    }

    #[test]
    fn equal_values_hash_equal() {
        let pairs = [
            (Value::Int(42), Value::Int(42)),
            (Value::str("abc"), Value::str("abc")),
            (Value::Null, Value::Null),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_str(), None);
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::Double(1.5).as_double(), Some(1.5));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn heap_size_charges_string_payload() {
        assert_eq!(Value::Int(1).heap_size(), 0);
        assert_eq!(Value::str("abcd").heap_size(), 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("a").to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
