//! S/X lock manager for the paper's Section 3.6 locking protocol.
//!
//! > "When a query Q reads a partial materialized view V_PM in Operation
//! > O2, Q puts an S lock on V_PM. Then between Operations O2 and O3, no
//! > other transaction can change the correct read result of Q by
//! > updating some base relation, as that would require updating V_PM
//! > with the acquisition of an X lock on V_PM."
//!
//! The manager hands out RAII guards; a dropped guard releases its lock
//! and wakes waiters. Acquisition order is the caller's responsibility
//! (the PMV protocol only ever takes one lock at a time, so deadlock is
//! structurally impossible there); `try_lock` variants are provided for
//! callers that need non-blocking behaviour.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Lock modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared: many readers.
    Shared,
    /// Exclusive: one writer, no readers.
    Exclusive,
}

#[derive(Default)]
struct LockState {
    sharers: usize,
    exclusive: bool,
}

impl LockState {
    fn compatible(&self, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => !self.exclusive,
            LockMode::Exclusive => !self.exclusive && self.sharers == 0,
        }
    }

    fn acquire(&mut self, mode: LockMode) {
        match mode {
            LockMode::Shared => self.sharers += 1,
            LockMode::Exclusive => self.exclusive = true,
        }
    }

    fn release(&mut self, mode: LockMode) {
        match mode {
            LockMode::Shared => self.sharers -= 1,
            LockMode::Exclusive => self.exclusive = false,
        }
    }

    fn is_free(&self) -> bool {
        !self.exclusive && self.sharers == 0
    }
}

#[derive(Default)]
struct Inner {
    table: Mutex<HashMap<String, LockState>>,
    cond: Condvar,
}

/// A named-object S/X lock manager.
#[derive(Clone, Default)]
pub struct LockManager {
    inner: Arc<Inner>,
}

impl LockManager {
    /// New manager with no locks held.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Block until `mode` can be granted on `object`, then hold it.
    pub fn lock(&self, object: &str, mode: LockMode) -> LockGuard {
        let mut table = self.inner.table.lock();
        loop {
            let state = table.entry(object.to_string()).or_default();
            if state.compatible(mode) {
                state.acquire(mode);
                return LockGuard {
                    manager: self.clone(),
                    object: object.to_string(),
                    mode,
                };
            }
            self.inner.cond.wait(&mut table);
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self, object: &str, mode: LockMode) -> Option<LockGuard> {
        let mut table = self.inner.table.lock();
        let state = table.entry(object.to_string()).or_default();
        if state.compatible(mode) {
            state.acquire(mode);
            Some(LockGuard {
                manager: self.clone(),
                object: object.to_string(),
                mode,
            })
        } else {
            None
        }
    }

    /// Try to acquire, waiting at most `timeout`.
    pub fn lock_timeout(
        &self,
        object: &str,
        mode: LockMode,
        timeout: Duration,
    ) -> Option<LockGuard> {
        let deadline = std::time::Instant::now() + timeout;
        let mut table = self.inner.table.lock();
        loop {
            let state = table.entry(object.to_string()).or_default();
            if state.compatible(mode) {
                state.acquire(mode);
                return Some(LockGuard {
                    manager: self.clone(),
                    object: object.to_string(),
                    mode,
                });
            }
            if self.inner.cond.wait_until(&mut table, deadline).timed_out() {
                return None;
            }
        }
    }

    /// Shorthand for a shared lock.
    pub fn lock_shared(&self, object: &str) -> LockGuard {
        self.lock(object, LockMode::Shared)
    }

    /// Shorthand for an exclusive lock.
    pub fn lock_exclusive(&self, object: &str) -> LockGuard {
        self.lock(object, LockMode::Exclusive)
    }

    /// Number of objects with at least one lock held (diagnostic).
    pub fn held_objects(&self) -> usize {
        self.inner
            .table
            .lock()
            .values()
            .filter(|s| !s.is_free())
            .count()
    }

    fn release(&self, object: &str, mode: LockMode) {
        let mut table = self.inner.table.lock();
        if let Some(state) = table.get_mut(object) {
            state.release(mode);
            if state.is_free() {
                table.remove(object);
            }
        }
        self.inner.cond.notify_all();
    }
}

/// RAII lock guard; releases on drop.
pub struct LockGuard {
    manager: LockManager,
    object: String,
    mode: LockMode,
}

impl LockGuard {
    /// The held mode.
    pub fn mode(&self) -> LockMode {
        self.mode
    }

    /// The locked object's name.
    pub fn object(&self) -> &str {
        &self.object
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        self.manager.release(&self.object, self.mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        let a = lm.lock_shared("pmv");
        let b = lm.lock_shared("pmv");
        assert_eq!(lm.held_objects(), 1);
        drop(a);
        drop(b);
        assert_eq!(lm.held_objects(), 0);
    }

    #[test]
    fn exclusive_excludes_everyone() {
        let lm = LockManager::new();
        let x = lm.lock_exclusive("pmv");
        assert!(lm.try_lock("pmv", LockMode::Shared).is_none());
        assert!(lm.try_lock("pmv", LockMode::Exclusive).is_none());
        drop(x);
        assert!(lm.try_lock("pmv", LockMode::Shared).is_some());
    }

    #[test]
    fn shared_blocks_exclusive_only() {
        let lm = LockManager::new();
        let s = lm.lock_shared("pmv");
        assert!(lm.try_lock("pmv", LockMode::Exclusive).is_none());
        assert!(lm.try_lock("pmv", LockMode::Shared).is_some());
        drop(s);
    }

    #[test]
    fn different_objects_are_independent() {
        let lm = LockManager::new();
        let _x = lm.lock_exclusive("pmv-1");
        assert!(lm.try_lock("pmv-2", LockMode::Exclusive).is_some());
    }

    #[test]
    fn timeout_expires_under_contention() {
        let lm = LockManager::new();
        let _x = lm.lock_exclusive("pmv");
        let got = lm.lock_timeout("pmv", LockMode::Shared, Duration::from_millis(20));
        assert!(got.is_none());
    }

    #[test]
    fn blocked_writer_proceeds_after_readers_leave() {
        let lm = LockManager::new();
        let s = lm.lock_shared("pmv");
        let counter = Arc::new(AtomicUsize::new(0));
        let lm2 = lm.clone();
        let c2 = Arc::clone(&counter);
        let t = std::thread::spawn(move || {
            let _x = lm2.lock_exclusive("pmv");
            c2.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(counter.load(Ordering::SeqCst), 0, "writer must wait");
        drop(s);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_readers_and_writers_serialize() {
        let lm = LockManager::new();
        let shared_value = Arc::new(Mutex::new(0i64));
        let mut handles = Vec::new();
        for i in 0..8 {
            let lm = lm.clone();
            let v = Arc::clone(&shared_value);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    if i % 2 == 0 {
                        let _g = lm.lock_exclusive("obj");
                        let mut val = v.lock();
                        *val += 1;
                    } else {
                        let _g = lm.lock_shared("obj");
                        let _ = *v.lock();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*shared_value.lock(), 4 * 50);
        assert_eq!(lm.held_objects(), 0);
    }
}
