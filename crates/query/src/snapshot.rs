//! Database snapshots: save/load the full catalog (schemas + tuples +
//! index definitions) to a self-describing JSON document.
//!
//! Intended for persisting generated workloads between runs (a TPC-R
//! generation at scale 0.2 takes longer than loading it back) and for
//! shipping small repro cases. Indexes are *rebuilt* on load rather than
//! serialized — they are derived state.

use std::io::{BufReader, BufWriter, Read, Write};

use pmv_index::{IndexDef, IndexShape};
use pmv_storage::{Column, ColumnType, Schema, Tuple, Value};
use serde_json::{Map as JsonMap, Value as Json};

use crate::engine::Database;
use crate::{QueryError, Result};

const FORMAT_VERSION: u32 = 1;

fn err(msg: impl Into<String>) -> QueryError {
    QueryError::Template(msg.into())
}

/// Encode a tuple [`Value`] as its externally-tagged JSON form:
/// `"n"` for NULL, `{"i": …}` / `{"d": …}` / `{"s": …}` otherwise.
/// Non-finite doubles, which JSON cannot carry as numbers, are tagged
/// strings under `"d"`. Public because the checkpoint format in
/// `pmv-wal` reuses the same value encoding.
pub fn value_to_json(v: &Value) -> Json {
    let tagged = |tag: &str, inner: Json| {
        let mut m = JsonMap::new();
        m.insert(tag.to_string(), inner);
        Json::Object(m)
    };
    match v {
        Value::Null => Json::from("n"),
        Value::Int(i) => tagged("i", Json::from(*i)),
        Value::Double(d) if d.is_finite() => tagged("d", Json::from(*d)),
        Value::Double(d) if d.is_nan() => tagged("d", Json::from("nan")),
        Value::Double(d) if *d > 0.0 => tagged("d", Json::from("inf")),
        Value::Double(_) => tagged("d", Json::from("-inf")),
        Value::Str(s) => tagged("s", Json::from(s.to_string())),
    }
}

/// Decode a [`value_to_json`] encoding back into a [`Value`].
pub fn value_from_json(j: &Json) -> Result<Value> {
    if j.as_str() == Some("n") {
        return Ok(Value::Null);
    }
    let obj = j
        .as_object()
        .ok_or_else(|| err(format!("invalid value encoding {j}")))?;
    if let Some(i) = obj.get("i") {
        return i
            .as_i64()
            .map(Value::Int)
            .ok_or_else(|| err(format!("invalid int encoding {j}")));
    }
    if let Some(d) = obj.get("d") {
        if let Some(f) = d.as_f64() {
            return Ok(Value::Double(f));
        }
        return match d.as_str() {
            Some("nan") => Ok(Value::Double(f64::NAN)),
            Some("inf") => Ok(Value::Double(f64::INFINITY)),
            Some("-inf") => Ok(Value::Double(f64::NEG_INFINITY)),
            _ => Err(err(format!("invalid double encoding {j}"))),
        };
    }
    if let Some(s) = obj.get("s") {
        return s
            .as_str()
            .map(Value::str)
            .ok_or_else(|| err(format!("invalid string encoding {j}")));
    }
    Err(err(format!("unknown value tag in {j}")))
}

fn get_str(obj: &JsonMap, key: &str, ctx: &str) -> Result<String> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .ok_or_else(|| err(format!("snapshot {ctx} missing string field '{key}'")))
}

fn get_array<'a>(obj: &'a JsonMap, key: &str, ctx: &str) -> Result<&'a Vec<Json>> {
    obj.get(key)
        .and_then(|v| v.as_array())
        .ok_or_else(|| err(format!("snapshot {ctx} missing array field '{key}'")))
}

fn as_object<'a>(j: &'a Json, ctx: &str) -> Result<&'a JsonMap> {
    j.as_object()
        .ok_or_else(|| err(format!("snapshot {ctx} must be a JSON object")))
}

fn ty_to_str(t: ColumnType) -> &'static str {
    match t {
        ColumnType::Int => "int",
        ColumnType::Double => "double",
        ColumnType::Str => "str",
    }
}

fn ty_from_str(s: &str) -> Result<ColumnType> {
    match s {
        "int" => Ok(ColumnType::Int),
        "double" => Ok(ColumnType::Double),
        "str" => Ok(ColumnType::Str),
        other => Err(QueryError::Template(format!(
            "unknown column type '{other}'"
        ))),
    }
}

/// Serialize the named relations of `db` (schemas, live tuples, and
/// their index definitions) into a writer as JSON.
pub fn save<W: Write>(db: &Database, relations: &[&str], out: W) -> Result<()> {
    let mut rel_docs = Vec::with_capacity(relations.len());
    let mut idx_docs = Vec::new();
    for &name in relations {
        let schema = db.schema(name)?;
        let columns: Vec<Json> = schema
            .columns()
            .iter()
            .map(|c| {
                let mut m = JsonMap::new();
                m.insert("name".into(), Json::from(c.name.clone()));
                m.insert("ty".into(), Json::from(ty_to_str(c.ty)));
                Json::Object(m)
            })
            .collect();
        let mut rows: Vec<Json> = Vec::new();
        db.with_relation(name, |rel| {
            for (_, t) in rel.iter() {
                rows.push(Json::Array(t.values().iter().map(value_to_json).collect()));
            }
        })?;
        let mut rel_doc = JsonMap::new();
        rel_doc.insert("name".into(), Json::from(name));
        rel_doc.insert("columns".into(), Json::Array(columns));
        rel_doc.insert("rows".into(), Json::Array(rows));
        rel_docs.push(Json::Object(rel_doc));
        for def in db.index_defs(name) {
            let mut idx_doc = JsonMap::new();
            idx_doc.insert("relation".into(), Json::from(def.relation.clone()));
            idx_doc.insert(
                "columns".into(),
                Json::Array(def.columns.iter().map(|&c| Json::from(c)).collect()),
            );
            idx_doc.insert(
                "shape".into(),
                Json::from(match def.shape {
                    IndexShape::BTree => "btree",
                    IndexShape::Hash => "hash",
                }),
            );
            idx_docs.push(Json::Object(idx_doc));
        }
    }
    let mut doc = JsonMap::new();
    doc.insert("format_version".into(), Json::from(FORMAT_VERSION as i64));
    doc.insert("relations".into(), Json::Array(rel_docs));
    doc.insert("indexes".into(), Json::Array(idx_docs));
    let writer = BufWriter::new(out);
    serde_json::to_writer(writer, &Json::Object(doc))
        .map_err(|e| err(format!("snapshot serialization failed: {e}")))
}

/// Load a snapshot into a fresh [`Database`], rebuilding all indexes.
pub fn load<R: Read>(input: R) -> Result<Database> {
    let reader = BufReader::new(input);
    let doc =
        serde_json::from_reader(reader).map_err(|e| err(format!("snapshot parse failed: {e}")))?;
    let doc = as_object(&doc, "document")?;
    let version = doc
        .get("format_version")
        .and_then(|v| v.as_i64())
        .ok_or_else(|| err("snapshot missing format_version"))?;
    if version != FORMAT_VERSION as i64 {
        return Err(err(format!(
            "unsupported snapshot format {version} (expected {FORMAT_VERSION})"
        )));
    }
    let mut db = Database::new();
    for rel in get_array(doc, "relations", "document")? {
        let rel = as_object(rel, "relation")?;
        let name = get_str(rel, "name", "relation")?;
        let columns = get_array(rel, "columns", "relation")?
            .iter()
            .map(|c| {
                let c = as_object(c, "column")?;
                Ok(Column::new(
                    &get_str(c, "name", "column")?,
                    ty_from_str(&get_str(c, "ty", "column")?)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        db.create_relation(Schema::new(name.clone(), columns))?;
        let rows = get_array(rel, "rows", "relation")?
            .iter()
            .map(|row| {
                let cells = row
                    .as_array()
                    .ok_or_else(|| err("snapshot row must be an array"))?;
                Ok(Tuple::new(
                    cells
                        .iter()
                        .map(value_from_json)
                        .collect::<Result<Vec<_>>>()?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        db.load(&name, rows)?;
    }
    for idx in get_array(doc, "indexes", "document")? {
        let idx = as_object(idx, "index")?;
        let relation = get_str(idx, "relation", "index")?;
        let columns = get_array(idx, "columns", "index")?
            .iter()
            .map(|c| {
                c.as_u64()
                    .map(|v| v as usize)
                    .ok_or_else(|| err("index column must be a non-negative integer"))
            })
            .collect::<Result<Vec<_>>>()?;
        let def = match get_str(idx, "shape", "index")?.as_str() {
            "btree" => IndexDef::btree(relation, columns),
            "hash" => IndexDef::hash(relation, columns),
            other => return Err(err(format!("unknown index shape '{other}'"))),
        };
        db.create_index(def)?;
    }
    Ok(db)
}

/// Save to a file path.
pub fn save_to_path(db: &Database, relations: &[&str], path: &std::path::Path) -> Result<()> {
    let file = std::fs::File::create(path)
        .map_err(|e| QueryError::Template(format!("cannot create {}: {e}", path.display())))?;
    save(db, relations, file)
}

/// Load from a file path.
pub fn load_from_path(path: &std::path::Path) -> Result<Database> {
    let file = std::fs::File::open(path)
        .map_err(|e| QueryError::Template(format!("cannot open {}: {e}", path.display())))?;
    load(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_index::SecondaryIndex;
    use pmv_storage::tuple;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("name", ColumnType::Str),
                Column::new("score", ColumnType::Double),
            ],
        ))
        .unwrap();
        db.load(
            "r",
            vec![
                tuple![1i64, "alpha", 1.5f64],
                tuple![2i64, "beta", -0.25f64],
                Tuple::new(vec![Value::Int(3), Value::Null, Value::Double(0.0)]),
            ],
        )
        .unwrap();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        db.create_index(IndexDef::hash("r", vec![1])).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_tuples_and_indexes() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &["r"], &mut buf).unwrap();
        let restored = load(buf.as_slice()).unwrap();
        assert_eq!(restored.len("r").unwrap(), 3);
        // Content equality (as multisets).
        let collect = |d: &Database| {
            let mut rows = Vec::new();
            d.with_relation("r", |rel| {
                for (_, t) in rel.iter() {
                    rows.push(t.clone());
                }
            })
            .unwrap();
            rows.sort();
            rows
        };
        assert_eq!(collect(&db), collect(&restored));
        // Indexes rebuilt and usable.
        let idx = restored.index_on("r", &[0]).unwrap();
        assert_eq!(
            idx.get(&pmv_index::IndexKey::single(Value::Int(2))).len(),
            1
        );
        assert!(restored.index_on("r", &[1]).is_some());
    }

    #[test]
    fn null_and_special_doubles_survive() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &["r"], &mut buf).unwrap();
        let restored = load(buf.as_slice()).unwrap();
        let mut has_null = false;
        restored
            .with_relation("r", |rel| {
                for (_, t) in rel.iter() {
                    if t.get(1).is_null() {
                        has_null = true;
                    }
                }
            })
            .unwrap();
        assert!(has_null, "NULL must survive the roundtrip");
    }

    #[test]
    fn bad_documents_are_rejected() {
        assert!(load("not json".as_bytes()).is_err());
        let wrong_version = r#"{"format_version":99,"relations":[],"indexes":[]}"#;
        assert!(load(wrong_version.as_bytes()).is_err());
        let bad_type = r#"{"format_version":1,"relations":[{"name":"r","columns":[{"name":"a","ty":"blob"}],"rows":[]}],"indexes":[]}"#;
        assert!(load(bad_type.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let db = sample_db();
        let path = std::env::temp_dir().join("pmv_snapshot_test.json");
        save_to_path(&db, &["r"], &path).unwrap();
        let restored = load_from_path(&path).unwrap();
        assert_eq!(restored.len("r").unwrap(), 3);
        std::fs::remove_file(&path).ok();
    }
}
