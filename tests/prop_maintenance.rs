//! Equivalence of the maintenance strategies (ISSUE 10, DESIGN.md §19):
//! for arbitrary interleavings of inserts, deletes, updates, and queries
//! — including transactions that delete *matching* tuples from both base
//! relations at once — the delta-key-index paths ([`MaintStrategy::Indexed`]
//! and [`MaintStrategy::HeavyLight`]) leave the PMV in exactly the same
//! state as the full `ΔR ⋈ R` join oracle ([`MaintStrategy::DeltaJoin`]),
//! and all three keep serving the plain executor's results.

mod common;

use common::{eqt_fixture, eqt_query, oracle};
use pmv::cache::PolicyKind;
use pmv::prelude::*;
use pmv::query::Transaction;
use pmv::storage::RowId;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Step {
    Query { fs: Vec<i64>, gs: Vec<i64> },
    InsertR { a: i64, c: i64, f: i64 },
    DeleteNthR(usize),
    DeleteNthS(usize),
    UpdateNthR { nth: usize, new_f: i64 },
    /// Delete an `r` row AND a joining `s` row in ONE transaction: the
    /// two-relation case whose joint derivations the per-relation ΔR
    /// joins cannot see (maintenance.rs cross-delta union pass).
    DeleteMatchingPair(usize),
}

fn values(range: std::ops::Range<i64>) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::btree_set(range, 1..3).prop_map(|s| s.into_iter().collect())
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (values(0..7), values(0..5)).prop_map(|(fs, gs)| Step::Query { fs, gs }),
        1 => (0i64..1000, 0i64..30, 0i64..7).prop_map(|(a, c, f)| Step::InsertR { a, c, f }),
        2 => (0usize..1000).prop_map(Step::DeleteNthR),
        1 => (0usize..1000).prop_map(Step::DeleteNthS),
        1 => (0usize..1000, 0i64..7).prop_map(|(nth, new_f)| Step::UpdateNthR { nth, new_f }),
        2 => (0usize..1000).prop_map(Step::DeleteMatchingPair),
    ]
}

fn nth_live_row(db: &Database, relation: &str, nth: usize) -> Option<RowId> {
    let handle = db.relation(relation).unwrap();
    let guard = handle.read();
    let live: Vec<_> = guard.iter().map(|(r, _)| r).collect();
    if live.is_empty() {
        None
    } else {
        Some(live[nth % live.len()])
    }
}

/// Find a joining (r, s) row pair: an `r` row and an `s` row with
/// `r.c = s.d`, scanning from the `nth` live `r` row.
fn joining_pair(db: &Database, nth: usize) -> Option<(RowId, RowId)> {
    let r_handle = db.relation("r").unwrap();
    let s_handle = db.relation("s").unwrap();
    let r_guard = r_handle.read();
    let s_guard = s_handle.read();
    let r_live: Vec<_> = r_guard.iter().collect();
    if r_live.is_empty() {
        return None;
    }
    for i in 0..r_live.len() {
        let (r_row, r_tuple) = &r_live[(nth + i) % r_live.len()];
        let c = r_tuple.get(1);
        if let Some((s_row, _)) = s_guard.iter().find(|(_, s)| s.get(0) == c) {
            return Some((*r_row, s_row));
        }
    }
    None
}

/// The store's full content, in a canonical order, for state comparison.
fn dump(pmv: &Pmv) -> Vec<(String, Vec<Tuple>)> {
    let mut out: Vec<(String, Vec<Tuple>)> = pmv
        .store()
        .iter()
        .map(|(bcp, tuples)| {
            let mut ts: Vec<Tuple> = tuples.iter().map(|(t, _)| (**t).clone()).collect();
            ts.sort();
            (format!("{bcp:?}"), ts)
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drive a DeltaJoin oracle, an Indexed view, and a HeavyLight view
    /// (low heavy threshold, so both routes fire) through the same step
    /// sequence; their stores must stay bit-identical and their query
    /// answers must match the plain executor at every point.
    #[test]
    fn delta_index_equals_join_oracle(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        f_cap in 1usize..4,
        l in 2usize..12,
    ) {
        let fx = eqt_fixture(40);
        let mut db = fx.db;
        let template = fx.template;
        let pipeline = PmvPipeline::new();

        let mut views: Vec<Pmv> = [
            MaintStrategy::DeltaJoin,
            MaintStrategy::Indexed,
            MaintStrategy::HeavyLight,
        ]
        .iter()
        .enumerate()
        .map(|(i, &strategy)| {
            let def =
                PartialViewDef::all_equality(format!("eq_pmv_{i}"), template.clone()).unwrap();
            let mut config = PmvConfig::new(f_cap, l, PolicyKind::Clock);
            config.maint_strategy = strategy;
            config.heavy_threshold = 2;
            Pmv::new(def, config)
        })
        .collect();

        let maintain_views = |db: &Database, views: &mut Vec<Pmv>, batches: &[pmv::storage::DeltaBatch]| {
            for v in views.iter_mut() {
                pipeline.maintain_all(db, v, batches).unwrap();
                v.store().validate();
            }
        };

        for step in steps {
            match step {
                Step::Query { fs, gs } => {
                    let q = eqt_query(&template, &fs, &gs);
                    let expect = oracle(&db, &q);
                    for v in views.iter_mut() {
                        let out = pipeline.run(&db, v, &q).unwrap();
                        let mut got = out.all_results();
                        got.sort();
                        prop_assert_eq!(&got, &expect, "pipeline diverged from executor");
                        prop_assert_eq!(out.ds_leftover, 0, "stale tuple served");
                    }
                }
                Step::InsertR { a, c, f } => {
                    let mut txn = Transaction::begin(&mut db);
                    txn.insert("r", Tuple::new(vec![
                        Value::Int(a), Value::Int(c), Value::Int(f),
                    ])).unwrap();
                    let batches = txn.commit();
                    maintain_views(&db, &mut views, &batches);
                }
                Step::DeleteNthR(nth) => {
                    if let Some(row) = nth_live_row(&db, "r", nth) {
                        let mut txn = Transaction::begin(&mut db);
                        txn.delete("r", row).unwrap();
                        let batches = txn.commit();
                        maintain_views(&db, &mut views, &batches);
                    }
                }
                Step::DeleteNthS(nth) => {
                    if let Some(row) = nth_live_row(&db, "s", nth) {
                        let mut txn = Transaction::begin(&mut db);
                        txn.delete("s", row).unwrap();
                        let batches = txn.commit();
                        maintain_views(&db, &mut views, &batches);
                    }
                }
                Step::UpdateNthR { nth, new_f } => {
                    if let Some(row) = nth_live_row(&db, "r", nth) {
                        let old = db.get("r", row).unwrap();
                        let mut vals: Vec<Value> = old.values().to_vec();
                        vals[2] = Value::Int(new_f);
                        let mut txn = Transaction::begin(&mut db);
                        txn.update("r", row, Tuple::new(vals)).unwrap();
                        let batches = txn.commit();
                        maintain_views(&db, &mut views, &batches);
                    }
                }
                Step::DeleteMatchingPair(nth) => {
                    if let Some((r_row, s_row)) = joining_pair(&db, nth) {
                        let mut txn = Transaction::begin(&mut db);
                        txn.delete("r", r_row).unwrap();
                        txn.delete("s", s_row).unwrap();
                        let batches = txn.commit();
                        maintain_views(&db, &mut views, &batches);
                    }
                }
            }
            // The invariant of this whole test: all three strategies
            // leave identical view state after every step.
            let reference = dump(&views[0]);
            prop_assert_eq!(&dump(&views[1]), &reference, "Indexed diverged from DeltaJoin");
            prop_assert_eq!(&dump(&views[2]), &reference, "HeavyLight diverged from DeltaJoin");
        }
    }
}
