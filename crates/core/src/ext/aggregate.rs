//! Aggregate (GROUP BY) queries over the PMV pipeline (Section 3.6).
//!
//! "With minor changes in the user interface, PMVs can also be used to
//! handle aggregate queries." The change is in the *interface*: the early
//! answer computed from partial results is labeled a partial aggregate
//! (a lower bound for COUNT/SUM over non-negative values, a tightening
//! bound for MIN/MAX); the exact aggregate follows once execution
//! finishes.

use std::collections::HashMap;

use pmv_query::{Database, QueryInstance};
use pmv_storage::{Tuple, Value};

use crate::pipeline::{Pmv, PmvPipeline, QueryTimings};
use crate::{CoreError, Result};

/// Aggregate function over a user-layout column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFn {
    /// COUNT(*).
    Count,
    /// SUM over the numeric column at this user-layout position.
    Sum(usize),
    /// MIN over the column at this position.
    Min(usize),
    /// MAX over the column at this position.
    Max(usize),
}

/// A computed aggregate value.
#[derive(Clone, Debug, PartialEq)]
pub enum AggValue {
    /// COUNT result.
    Count(u64),
    /// SUM result (doubles and ints both accumulate here).
    Sum(f64),
    /// MIN result.
    Min(Value),
    /// MAX result.
    Max(Value),
}

/// GROUP BY specification: grouping positions in the *user* select list,
/// plus one aggregate.
#[derive(Clone, Debug)]
pub struct GroupBySpec {
    /// Positions in `Ls` to group on (empty = one global group).
    pub group_by: Vec<usize>,
    /// The aggregate to compute.
    pub agg: AggFn,
}

/// Outcome of an aggregate run: early partial aggregates plus the exact
/// final ones.
#[derive(Clone, Debug)]
pub struct AggregateOutcome {
    /// Aggregates over the partial results only — available immediately,
    /// clearly labeled approximate.
    pub partial: Vec<(Tuple, AggValue)>,
    /// Exact aggregates over the full result set.
    pub exact: Vec<(Tuple, AggValue)>,
    /// Whether any probed bcp was resident.
    pub bcp_hit: bool,
    /// Timing breakdown of the underlying run.
    pub timings: QueryTimings,
}

fn numeric(v: &Value) -> Result<f64> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Double(d) => Ok(*d),
        other => Err(CoreError::Definition(format!(
            "cannot aggregate non-numeric value {other}"
        ))),
    }
}

/// Fold `rows` (user layout) into per-group aggregates, sorted by group
/// key for deterministic output.
pub fn aggregate_rows(rows: &[Tuple], spec: &GroupBySpec) -> Result<Vec<(Tuple, AggValue)>> {
    let mut groups: HashMap<Tuple, AggValue> = HashMap::new();
    for row in rows {
        let key = row.project(&spec.group_by);
        match spec.agg {
            AggFn::Count => {
                let e = groups.entry(key).or_insert(AggValue::Count(0));
                if let AggValue::Count(n) = e {
                    *n += 1;
                }
            }
            AggFn::Sum(col) => {
                let x = numeric(row.get(col))?;
                let e = groups.entry(key).or_insert(AggValue::Sum(0.0));
                if let AggValue::Sum(s) = e {
                    *s += x;
                }
            }
            AggFn::Min(col) => {
                let v = row.get(col).clone();
                groups
                    .entry(key)
                    .and_modify(|e| {
                        if let AggValue::Min(m) = e {
                            if v < *m {
                                *m = v.clone();
                            }
                        }
                    })
                    .or_insert(AggValue::Min(v));
            }
            AggFn::Max(col) => {
                let v = row.get(col).clone();
                groups
                    .entry(key)
                    .and_modify(|e| {
                        if let AggValue::Max(m) = e {
                            if v > *m {
                                *m = v.clone();
                            }
                        }
                    })
                    .or_insert(AggValue::Max(v));
            }
        }
    }
    let mut out: Vec<(Tuple, AggValue)> = groups.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Run `q` and report both the immediate partial aggregates and the
/// exact final aggregates.
pub fn run_aggregate(
    pipeline: &PmvPipeline,
    db: &Database,
    pmv: &mut Pmv,
    q: &QueryInstance,
    spec: &GroupBySpec,
) -> Result<AggregateOutcome> {
    let outcome = pipeline.run(db, pmv, q)?;
    let partial = aggregate_rows(&outcome.partial, spec)?;
    let exact = aggregate_rows(&outcome.all_results(), spec)?;
    Ok(AggregateOutcome {
        partial,
        exact,
        bcp_hit: outcome.bcp_hit,
        timings: outcome.timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::tuple;

    #[test]
    fn count_groups() {
        let rows = vec![
            tuple![1i64, 10i64],
            tuple![1i64, 20i64],
            tuple![2i64, 30i64],
        ];
        let out = aggregate_rows(
            &rows,
            &GroupBySpec {
                group_by: vec![0],
                agg: AggFn::Count,
            },
        )
        .unwrap();
        assert_eq!(
            out,
            vec![
                (tuple![1i64], AggValue::Count(2)),
                (tuple![2i64], AggValue::Count(1)),
            ]
        );
    }

    #[test]
    fn sum_min_max() {
        let rows = vec![tuple![1i64, 10i64], tuple![1i64, 20i64]];
        let spec = |agg| GroupBySpec {
            group_by: vec![0],
            agg,
        };
        assert_eq!(
            aggregate_rows(&rows, &spec(AggFn::Sum(1))).unwrap()[0].1,
            AggValue::Sum(30.0)
        );
        assert_eq!(
            aggregate_rows(&rows, &spec(AggFn::Min(1))).unwrap()[0].1,
            AggValue::Min(Value::Int(10))
        );
        assert_eq!(
            aggregate_rows(&rows, &spec(AggFn::Max(1))).unwrap()[0].1,
            AggValue::Max(Value::Int(20))
        );
    }

    #[test]
    fn global_group_when_empty_group_by() {
        let rows = vec![tuple![1i64], tuple![2i64], tuple![3i64]];
        let out = aggregate_rows(
            &rows,
            &GroupBySpec {
                group_by: vec![],
                agg: AggFn::Count,
            },
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, AggValue::Count(3));
    }

    #[test]
    fn sum_of_strings_errors() {
        let rows = vec![tuple!["x"]];
        assert!(aggregate_rows(
            &rows,
            &GroupBySpec {
                group_by: vec![],
                agg: AggFn::Sum(0),
            },
        )
        .is_err());
    }
}
