//! Cumulative PMV statistics.
//!
//! The counter list is declared once in [`for_each_stat_field!`] and
//! expanded into both the plain [`PmvStats`] block and the lock-free
//! [`AtomicPmvStats`] used by the sharded embedding — adding a counter is
//! a one-line change instead of six hand-synchronized edit sites.

use std::sync::atomic::{AtomicU64, Ordering};

/// Invoke `$cb!` with the full `[class] name` counter list. Every struct
/// and impl below derives from this single declaration.
///
/// The class tags feed [`PmvStats::reset_transient`]:
/// * `[keep]` — cumulative workload history (queries, hits, admissions,
///   maintenance work); survives revalidation.
/// * `[transient]` — failure-episode counters (panics, degradations,
///   quarantines, retries); a completed revalidation sweep re-derives
///   the view from base truth and closes the episode, so these reset.
macro_rules! for_each_stat_field {
    ($cb:ident) => {
        $cb! {
            /// Queries run through the pipeline.
            [keep] queries,
            /// Queries for which the PMV provided at least one partial
            /// result — the numerator of the paper's *hit probability*
            /// ("if any of the h basic condition parts in the Cselect of
            /// Q exists in V_PM, Q is hit"). Note the paper's simulation
            /// counts presence of the bcp; a bcp present but with zero
            /// matching tuples still counts as a hit there. We count
            /// both, see `bcp_hit_queries`.
            [keep] serving_queries,
            /// Queries for which at least one probed bcp was resident.
            [keep] bcp_hit_queries,
            /// Partial result tuples served from the PMV (Operation O2).
            [keep] partial_tuples_served,
            /// Result tuples stored into the PMV (Operation O3
            /// fill/update).
            [keep] tuples_admitted,
            /// bcp admissions that landed in a probation queue.
            [keep] probations,
            /// Condition parts generated across all queries (Σ h).
            [keep] condition_parts,
            /// Inserts into base relations that required no PMV work.
            [keep] maint_inserts_ignored,
            /// Deletes processed via the ΔR join.
            [keep] maint_deletes_joined,
            /// Updates skipped because no relevant attribute changed.
            [keep] maint_updates_ignored,
            /// Updates processed like deletes.
            [keep] maint_updates_joined,
            /// View tuples evicted by maintenance.
            [keep] maint_tuples_removed,
            /// View tuples removed via the delta-key index (no base
            /// join ran for them).
            [keep] maint_index_removals,
            /// Deltas routed down the heavy (indexed) path by the
            /// space-saving partitioner.
            [keep] maint_heavy_deltas,
            /// Deltas routed down the light (coalesced-join) path.
            [keep] maint_light_deltas,
            /// ΔR joins avoided by coalescing duplicate light deltas
            /// into one join per distinct (relation, tuple).
            [keep] maint_coalesced_joins,
            /// Rows produced by maintenance ΔR ⋈ R joins (the O(data)
            /// cost the delta-key index eliminates for heavy keys).
            [keep] maint_join_rows,
            /// Targeted per-bcp refills issued instead of full O3 runs.
            [keep] upqueries,
            /// Tuples admitted into the cache by upquery refills.
            [keep] upquery_rows,
            /// Upqueries that fell back to a full O3 execution
            /// (budget exhausted or transient failure).
            [transient] upquery_fallbacks,
            /// Queries fully answered from complete cached bcps — O3
            /// (and its dedup) skipped entirely.
            [keep] complete_serves,
            /// Queries that returned a `Degraded` outcome (partials only).
            [transient] degraded_queries,
            /// O3 executions that panicked and were caught.
            [transient] exec_panics,
            /// O3 executions that failed with a transient error.
            [transient] exec_errors,
            /// O3 executions cut short by a deadline or row budget.
            [transient] budget_exceeded,
            /// Shards drained into quarantine (panic mid-mutation or
            /// maintenance fallback).
            [transient] quarantine_events,
            /// Maintenance join retries after transient failures.
            [transient] maint_retries,
            /// Maintenance fallbacks: retries exhausted, affected shards
            /// invalidated instead of repaired.
            [transient] maint_fallbacks,
            /// Revalidation sweeps completed (each lifts quarantine).
            [keep] revalidations,
            /// Group-commit batches drained by a combiner (one per
            /// master-lock acquisition that found work).
            [keep] commit_batches,
            /// Commit requests that rode a batch another thread drained
            /// (batch size minus the winner, summed) — the flat-combining
            /// win over one-lock-per-commit.
            [keep] commit_reqs_coalesced,
            /// Maintenance passes avoided because a batch deduplicated
            /// registrations of the same view (slots − distinct views,
            /// summed per batch).
            [keep] maint_passes_saved,
        }
    };
}

/// Expand to a reset for `[transient]` fields, nothing for `[keep]`.
macro_rules! reset_transient_plain {
    ($s:ident, keep, $field:ident) => {};
    ($s:ident, transient, $field:ident) => {
        $s.$field = 0;
    };
}

macro_rules! reset_transient_atomic {
    ($s:ident, keep, $field:ident) => {};
    ($s:ident, transient, $field:ident) => {
        $s.$field.store(0, Ordering::Relaxed);
    };
}

macro_rules! define_plain_stats {
    ($($(#[$doc:meta])* [$class:ident] $field:ident),+ $(,)?) => {
        /// Counters accumulated across a PMV's lifetime.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct PmvStats {
            $($(#[$doc])* pub $field: u64,)+
        }

        impl PmvStats {
            /// Fold another stats block into this one.
            pub fn merge(&mut self, other: &PmvStats) {
                $(self.$field += other.$field;)+
            }

            /// Zero the failure-episode (`[transient]`) counters. Called
            /// by `revalidate` paths: the sweep re-derives the view from
            /// base truth, so panic/degradation/quarantine tallies from
            /// the closed episode must not keep tripping health reports.
            pub fn reset_transient(&mut self) {
                $(reset_transient_plain!(self, $class, $field);)+
            }

            /// Every counter as `(name, value)` pairs in declaration
            /// order — the export feed for `pmv_obs::ViewMetrics`.
            pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field),)+]
            }
        }
    };
}
for_each_stat_field!(define_plain_stats);

impl PmvStats {
    /// Hit probability over the queries seen so far, by the paper's
    /// definition (bcp residency).
    pub fn hit_probability(&self) -> f64 {
        self.rate(self.bcp_hit_queries)
    }

    /// Fraction of queries that actually received partial tuples.
    pub fn serving_probability(&self) -> f64 {
        self.rate(self.serving_queries)
    }

    /// Fraction of queries that returned a flagged-degraded outcome —
    /// the robustness metric tracked by the bench reports.
    pub fn degraded_query_rate(&self) -> f64 {
        self.rate(self.degraded_queries)
    }

    fn rate(&self, numerator: u64) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            numerator as f64 / self.queries as f64
        }
    }
}

macro_rules! define_atomic_stats {
    ($($(#[$doc:meta])* [$class:ident] $field:ident),+ $(,)?) => {
        /// Shared-counter variant of [`PmvStats`] for concurrent
        /// embeddings (notably the sharded
        /// [`crate::concurrent::SharedPmv`]): queries and maintainers
        /// accumulate a local [`PmvStats`] and publish it with one
        /// [`AtomicPmvStats::add`], so no lock is ever taken for
        /// bookkeeping. All counters use relaxed ordering — they are
        /// statistics, not synchronization.
        #[derive(Debug, Default)]
        pub struct AtomicPmvStats {
            $($field: AtomicU64,)+
        }

        impl AtomicPmvStats {
            /// Fresh zeroed counters.
            pub fn new() -> Self {
                AtomicPmvStats::default()
            }

            /// Fold a locally accumulated stats block into the shared
            /// counters.
            pub fn add(&self, delta: &PmvStats) {
                $(if delta.$field != 0 {
                    self.$field.fetch_add(delta.$field, Ordering::Relaxed);
                })+
            }

            /// Point-in-time copy of the counters. Individual fields are
            /// read relaxed, so a snapshot taken while writers are active
            /// may mix adjacent updates; totals are exact once writers
            /// quiesce.
            pub fn snapshot(&self) -> PmvStats {
                PmvStats {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }

            /// Zero every counter (e.g. after a warm-up phase).
            pub fn reset(&self) {
                $(self.$field.store(0, Ordering::Relaxed);)+
            }

            /// Zero the failure-episode (`[transient]`) counters; see
            /// [`PmvStats::reset_transient`].
            pub fn reset_transient(&self) {
                $(reset_transient_atomic!(self, $class, $field);)+
            }
        }
    };
}
for_each_stat_field!(define_atomic_stats);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities() {
        let s = PmvStats {
            queries: 10,
            bcp_hit_queries: 9,
            serving_queries: 8,
            degraded_queries: 2,
            ..Default::default()
        };
        assert!((s.hit_probability() - 0.9).abs() < 1e-12);
        assert!((s.serving_probability() - 0.8).abs() < 1e-12);
        assert!((s.degraded_query_rate() - 0.2).abs() < 1e-12);
        assert_eq!(PmvStats::default().hit_probability(), 0.0);
        assert_eq!(PmvStats::default().degraded_query_rate(), 0.0);
    }

    #[test]
    fn as_pairs_covers_every_field_in_order() {
        let s = PmvStats {
            queries: 10,
            revalidations: 2,
            ..Default::default()
        };
        let pairs = s.as_pairs();
        assert_eq!(pairs[0], ("queries", 10));
        assert!(pairs.contains(&("revalidations", 2)));
        assert!(pairs.contains(&("degraded_queries", 0)));
        // One pair per declared counter, no duplicates.
        let mut names: Vec<_> = pairs.iter().map(|(n, _)| *n).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
        assert_eq!(n, 32);
        assert!(pairs.contains(&("maint_index_removals", 0)));
        assert!(pairs.contains(&("upqueries", 0)));
        assert!(pairs.contains(&("complete_serves", 0)));
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = PmvStats {
            queries: 1,
            partial_tuples_served: 5,
            ..Default::default()
        };
        let b = PmvStats {
            queries: 2,
            partial_tuples_served: 7,
            maint_tuples_removed: 3,
            quarantine_events: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.partial_tuples_served, 12);
        assert_eq!(a.maint_tuples_removed, 3);
        assert_eq!(a.quarantine_events, 1);
    }

    #[test]
    fn atomic_add_snapshot_reset() {
        let shared = AtomicPmvStats::new();
        let a = PmvStats {
            queries: 3,
            bcp_hit_queries: 2,
            tuples_admitted: 5,
            ..Default::default()
        };
        let b = PmvStats {
            queries: 1,
            maint_tuples_removed: 4,
            exec_panics: 2,
            ..Default::default()
        };
        shared.add(&a);
        shared.add(&b);
        let snap = shared.snapshot();
        assert_eq!(snap.queries, 4);
        assert_eq!(snap.bcp_hit_queries, 2);
        assert_eq!(snap.tuples_admitted, 5);
        assert_eq!(snap.maint_tuples_removed, 4);
        assert_eq!(snap.exec_panics, 2);
        assert!((snap.hit_probability() - 0.5).abs() < 1e-12);
        shared.reset();
        assert_eq!(shared.snapshot(), PmvStats::default());
    }

    #[test]
    fn reset_transient_keeps_workload_history() {
        let mut s = PmvStats {
            queries: 10,
            tuples_admitted: 7,
            revalidations: 2,
            degraded_queries: 3,
            exec_panics: 1,
            exec_errors: 2,
            budget_exceeded: 4,
            quarantine_events: 5,
            maint_retries: 6,
            maint_fallbacks: 1,
            ..Default::default()
        };
        s.reset_transient();
        assert_eq!(s.queries, 10, "workload history survives");
        assert_eq!(s.tuples_admitted, 7);
        assert_eq!(s.revalidations, 2, "revalidation count is history");
        assert_eq!(s.degraded_queries, 0);
        assert_eq!(s.exec_panics, 0);
        assert_eq!(s.exec_errors, 0);
        assert_eq!(s.budget_exceeded, 0);
        assert_eq!(s.quarantine_events, 0);
        assert_eq!(s.maint_retries, 0);
        assert_eq!(s.maint_fallbacks, 0);

        let shared = AtomicPmvStats::new();
        shared.add(&PmvStats {
            queries: 4,
            quarantine_events: 2,
            ..Default::default()
        });
        shared.reset_transient();
        let snap = shared.snapshot();
        assert_eq!(snap.queries, 4);
        assert_eq!(snap.quarantine_events, 0);
    }

    #[test]
    fn atomic_adds_from_threads_sum_exactly() {
        let shared = std::sync::Arc::new(AtomicPmvStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let shared = std::sync::Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    shared.add(&PmvStats {
                        queries: 1,
                        condition_parts: 2,
                        ..Default::default()
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = shared.snapshot();
        assert_eq!(snap.queries, 8000);
        assert_eq!(snap.condition_parts, 16000);
    }
}
