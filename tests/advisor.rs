//! Integration test: the PMV advisor watches a live workload, its
//! recommendation is instantiated, and the resulting PMV actually serves
//! that workload well.

mod common;

use common::{eqt_fixture, eqt_query};
use pmv::core::{AdvisorConfig, PmvAdvisor};
use pmv::prelude::*;
use pmv::query::Interval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn recommended_pmv_serves_the_observed_workload() {
    let fx = eqt_fixture(300);
    let pipeline = PmvPipeline::new();
    let mut advisor = PmvAdvisor::new();
    let mut rng = StdRng::seed_from_u64(9);

    // Phase 1: observe a skewed workload (f=1 hot).
    let mut workload = Vec::new();
    for _ in 0..100 {
        let f = if rng.gen_bool(0.7) {
            1
        } else {
            rng.gen_range(0..7)
        };
        let q = eqt_query(&fx.template, &[f], &[rng.gen_range(0..5)]);
        advisor.observe(&q);
        workload.push(q);
    }

    // Phase 2: take the recommendation and build the PMV.
    let recs = advisor
        .recommend(&AdvisorConfig {
            min_queries: 10,
            byte_budget: 1 << 20,
            ..Default::default()
        })
        .unwrap();
    assert_eq!(recs.len(), 1);
    let rec = &recs[0];
    assert!(rec.config.l >= 1);
    let mut pmv = Pmv::new(rec.def.clone(), rec.config.clone());

    // Phase 3: replay the workload; the recommended PMV gets warm and
    // serves a healthy share of it.
    for q in &workload {
        let out = pipeline.run(&fx.db, &mut pmv, q).unwrap();
        assert_eq!(out.ds_leftover, 0);
    }
    assert!(
        pmv.stats().hit_probability() > 0.5,
        "recommended PMV should serve the skewed workload, hit = {}",
        pmv.stats().hit_probability()
    );
}

#[test]
fn advisor_learns_interval_dividers_that_make_queries_basic() {
    // A template with an interval condition; the workload always asks
    // for one of three ranges. The advisor's learned discretizer should
    // turn each range into whole basic condition parts (mean h == 1 on
    // replay).
    let fx = eqt_fixture(100);
    let template = TemplateBuilder::new("iv")
        .relation(fx.db.schema("r").unwrap())
        .relation(fx.db.schema("s").unwrap())
        .join("r", "c", "s", "d")
        .unwrap()
        .select("r", "a")
        .unwrap()
        .cond_eq("s", "g")
        .unwrap()
        .cond_interval("r", "f")
        .unwrap()
        .build()
        .unwrap();
    let ranges = [
        Interval::half_open(0i64, 2i64),
        Interval::half_open(2i64, 5i64),
        Interval::half_open(5i64, 7i64),
    ];
    let mut advisor = PmvAdvisor::new();
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..50 {
        let q = template
            .bind(vec![
                Condition::Equality(vec![Value::Int(rng.gen_range(0..5))]),
                Condition::Intervals(vec![ranges[rng.gen_range(0..3)].clone()]),
            ])
            .unwrap();
        advisor.observe(&q);
    }
    let recs = advisor.recommend(&AdvisorConfig::default()).unwrap();
    assert_eq!(recs.len(), 1);
    let def = &recs[0].def;
    let disc = def.discretizer(1).expect("interval cond learned");
    assert_eq!(
        disc.dividers(),
        &[Value::Int(0), Value::Int(2), Value::Int(5), Value::Int(7)]
    );
    // Replaying any workload range decomposes into basic parts only.
    for r in &ranges {
        let q = template
            .bind(vec![
                Condition::Equality(vec![Value::Int(1)]),
                Condition::Intervals(vec![r.clone()]),
            ])
            .unwrap();
        let parts = pmv::core::decompose(def, &q).unwrap();
        assert!(parts.iter().all(|p| p.is_basic), "range {r} not basic");
    }
}
