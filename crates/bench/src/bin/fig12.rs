//! Figure 12 — speedup ratio of PMV over MV maintenance, from the
//! Section 4.3 analytical model.
//!
//! Paper's reading: the speedup grows with the insert fraction p (PMVs
//! are free on inserts), reaching the hundreds as p approaches 100% and
//! becoming unbounded at exactly p = 100%.

use pmv_bench::ExperimentReport;
use pmv_costmodel::CostParams;

fn main() {
    let model = CostParams::default();
    let mut report = ExperimentReport::new(
        "figure12",
        "Speedup ratio of PMV over MV maintenance (|ΔR| = 1000)",
        "p",
    );
    for pt in model.sweep(10) {
        let Some(speedup) = pt.speedup else {
            continue; // p = 100%: unbounded
        };
        report.push(
            format!("{:.0}%", pt.p * 100.0),
            vec![("speedup".into(), speedup)],
        );
    }
    report.print();
    println!();
    println!("note: at p = 100% the ratio is unbounded (PMV maintenance cost is 0)");
}
