//! Maintenance filter indices on V_PM attributes (Section 3.4):
//!
//! > "In many cases, we can avoid this join computation by building
//! > indices on some attributes of V_PM. Due to space constraints, the
//! > details of this method are available in \[25\]."
//!
//! Our instantiation: for each base relation `R_i`, consider the columns
//! of `R_i` that appear in the expanded select list `Ls'`. Every view
//! tuple derived from a base tuple `t ∈ R_i` must agree with `t` on those
//! columns, so a multiset index from (those columns' values) → count over
//! the *cached* view tuples gives a sound filter: if a deleted tuple's
//! projection is absent, no cached tuple can be affected and the
//! `ΔR ⋈ R_j` join is skipped entirely.
//!
//! The filter is maintained incrementally by the store on every cached
//! tuple added, removed, or evicted — cheap in-memory hash updates, which
//! is exactly why Figure 11's PMV maintenance cost is two orders of
//! magnitude below the MV's.

use std::collections::HashMap;

use pmv_query::QueryTemplate;
use pmv_storage::{Tuple, Value};

/// Per-relation projection spec: which `Ls'` positions hold relation
/// `i`'s attributes, and which base-relation columns they correspond to.
/// Shared with [`crate::delta_index::DeltaKeyIndex`] — the delta-key
/// index keys on exactly the same projection, just mapping to the
/// supported tuples instead of a count.
#[derive(Clone, Debug)]
pub(crate) struct RelSpec {
    /// Positions in the `Ls'` result layout.
    pub(crate) view_positions: Vec<usize>,
    /// Matching column indices in the base relation.
    pub(crate) base_columns: Vec<usize>,
}

impl RelSpec {
    /// One spec per base relation of `template`, in relation order.
    pub(crate) fn for_template(template: &QueryTemplate) -> Vec<RelSpec> {
        let n = template.relations().len();
        let mut specs = Vec::with_capacity(n);
        for rel in 0..n {
            let mut view_positions = Vec::new();
            let mut base_columns = Vec::new();
            for (pos, attr) in template.expanded_list().iter().enumerate() {
                if attr.relation == rel {
                    view_positions.push(pos);
                    base_columns.push(attr.column);
                }
            }
            specs.push(RelSpec {
                view_positions,
                base_columns,
            });
        }
        specs
    }

    /// Project a cached view tuple (`Ls'` layout) onto this relation's
    /// attributes.
    pub(crate) fn view_key(&self, view_tuple: &Tuple) -> Box<[Value]> {
        self.view_positions
            .iter()
            .map(|&p| view_tuple.get(p).clone())
            .collect()
    }

    /// Project a base-relation tuple onto the same attributes.
    pub(crate) fn base_key(&self, base_tuple: &Tuple) -> Box<[Value]> {
        self.base_columns
            .iter()
            .map(|&c| base_tuple.get(c).clone())
            .collect()
    }
}

/// Multiset filter index over cached view tuples, one map per base
/// relation.
pub struct MaintFilter {
    specs: Vec<RelSpec>,
    /// `counts[i]`: projection of cached view tuples onto relation i's
    /// attributes → number of cached tuples with that projection.
    counts: Vec<HashMap<Box<[Value]>, usize>>,
    /// Joins skipped thanks to the filter (for reporting).
    joins_avoided: u64,
}

impl MaintFilter {
    /// Build the (empty) filter for a template.
    pub fn new(template: &QueryTemplate) -> Self {
        let specs = RelSpec::for_template(template);
        let n = specs.len();
        MaintFilter {
            specs,
            counts: vec![HashMap::new(); n],
            joins_avoided: 0,
        }
    }

    fn view_key(&self, rel: usize, view_tuple: &Tuple) -> Box<[Value]> {
        self.specs[rel].view_key(view_tuple)
    }

    fn base_key(&self, rel: usize, base_tuple: &Tuple) -> Box<[Value]> {
        self.specs[rel].base_key(base_tuple)
    }

    /// Register a cached view tuple.
    pub fn add(&mut self, view_tuple: &Tuple) {
        for rel in 0..self.specs.len() {
            let key = self.view_key(rel, view_tuple);
            *self.counts[rel].entry(key).or_insert(0) += 1;
        }
    }

    /// Unregister a cached view tuple.
    pub fn remove(&mut self, view_tuple: &Tuple) {
        for rel in 0..self.specs.len() {
            let key = self.view_key(rel, view_tuple);
            match self.counts[rel].get_mut(&key) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    self.counts[rel].remove(&key);
                }
                None => debug_assert!(false, "filter underflow for relation {rel}"),
            }
        }
    }

    /// Could deleting `base_tuple` from relation `rel` affect any cached
    /// tuple? `false` means the ΔR join can be skipped (sound, never a
    /// false negative). Relations contributing no `Ls'` attribute always
    /// return `true` (the filter has no information).
    pub fn may_affect(&mut self, rel: usize, base_tuple: &Tuple) -> bool {
        let hit = self.check(rel, base_tuple);
        if !hit {
            self.joins_avoided += 1;
        }
        hit
    }

    /// Read-only form of [`Self::may_affect`] (no skip counting) — used
    /// when several filters must be consulted before acting on the answer.
    pub fn check(&self, rel: usize, base_tuple: &Tuple) -> bool {
        if self.specs[rel].view_positions.is_empty() {
            return true;
        }
        let key = self.base_key(rel, base_tuple);
        self.counts[rel].contains_key(&key)
    }

    /// The `(Ls' positions, base columns)` projection spec for one
    /// relation — what the filter actually keys on. The static verifier
    /// audits this against the template (`PMV005 UnsoundMaintFilter`).
    pub fn rel_spec(&self, rel: usize) -> (&[usize], &[usize]) {
        let spec = &self.specs[rel];
        (&spec.view_positions, &spec.base_columns)
    }

    /// Number of ΔR joins the filter has skipped.
    pub fn joins_avoided(&self) -> u64 {
        self.joins_avoided
    }

    /// Drop every tracked projection (the store was drained, e.g. on
    /// quarantine). The skip counter survives — it is cumulative history.
    pub fn clear(&mut self) {
        for m in &mut self.counts {
            m.clear();
        }
    }

    /// Total distinct projections tracked (diagnostic).
    pub fn key_count(&self) -> usize {
        self.counts.iter().map(HashMap::len).sum()
    }

    /// Compare against the full cached-tuple multiset, returning a
    /// violation message per drifted relation. Never panics.
    pub fn check_against(&self, cached: &[Tuple]) -> Vec<String> {
        let mut violations = Vec::new();
        for rel in 0..self.specs.len() {
            let mut expect: HashMap<Box<[Value]>, usize> = HashMap::new();
            for t in cached {
                *expect.entry(self.view_key(rel, t)).or_insert(0) += 1;
            }
            if expect != self.counts[rel] {
                violations.push(format!("maintenance filter drifted for relation {rel}"));
            }
        }
        violations
    }

    /// Validate against the full cached-tuple multiset (test helper).
    pub fn validate(&self, cached: &[Tuple]) {
        let violations = self.check_against(cached);
        assert!(violations.is_empty(), "{violations:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_query::TemplateBuilder;
    use pmv_storage::{tuple, Column, ColumnType, Schema};

    fn template() -> std::sync::Arc<QueryTemplate> {
        TemplateBuilder::new("t")
            .relation(Schema::new(
                "r",
                vec![
                    Column::new("a", ColumnType::Int),
                    Column::new("c", ColumnType::Int),
                    Column::new("f", ColumnType::Int),
                ],
            ))
            .relation(Schema::new(
                "s",
                vec![
                    Column::new("d", ColumnType::Int),
                    Column::new("e", ColumnType::Int),
                    Column::new("g", ColumnType::Int),
                ],
            ))
            .join("r", "c", "s", "d")
            .unwrap()
            .select("r", "a")
            .unwrap()
            .select("s", "e")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .cond_eq("s", "g")
            .unwrap()
            .build()
            .unwrap()
    }

    // Ls' layout for this template: (r.a, s.e, r.f, s.g).

    #[test]
    fn add_then_may_affect() {
        let t = template();
        let mut filter = MaintFilter::new(&t);
        // Cached view tuple: a=1, e=2, f=1, g=7.
        filter.add(&tuple![1i64, 2i64, 1i64, 7i64]);
        // Deleting r-tuple (a=1, c=4, f=1) projects to (a=1, f=1): match.
        assert!(filter.may_affect(0, &tuple![1i64, 4i64, 1i64]));
        // Different a: no cached tuple can be affected.
        assert!(!filter.may_affect(0, &tuple![9i64, 4i64, 1i64]));
        // s-side: (e=2, g=7) matches, (e=3, g=7) does not.
        assert!(filter.may_affect(1, &tuple![4i64, 2i64, 7i64]));
        assert!(!filter.may_affect(1, &tuple![4i64, 3i64, 7i64]));
        assert_eq!(filter.joins_avoided(), 2);
    }

    #[test]
    fn remove_clears_counts() {
        let t = template();
        let mut filter = MaintFilter::new(&t);
        let v = tuple![1i64, 2i64, 1i64, 7i64];
        filter.add(&v);
        filter.add(&v);
        filter.remove(&v);
        // Still one copy cached: must match.
        assert!(filter.may_affect(0, &tuple![1i64, 0i64, 1i64]));
        filter.remove(&v);
        assert!(!filter.may_affect(0, &tuple![1i64, 0i64, 1i64]));
        assert_eq!(filter.key_count(), 0);
    }

    #[test]
    fn validate_matches_multiset() {
        let t = template();
        let mut filter = MaintFilter::new(&t);
        let tuples = vec![
            tuple![1i64, 2i64, 1i64, 7i64],
            tuple![1i64, 2i64, 1i64, 7i64],
            tuple![7i64, 8i64, 3i64, 9i64],
        ];
        for tu in &tuples {
            filter.add(tu);
        }
        filter.validate(&tuples);
        filter.remove(&tuples[0]);
        filter.validate(&tuples[1..]);
    }

    #[test]
    fn relation_without_view_attrs_always_affects() {
        // A template selecting only r attributes: s contributes nothing
        // to Ls' beyond its condition attr... build one where s truly has
        // no Ls' columns is impossible (cond attrs join Ls'), so check
        // the guard directly with a handcrafted spec.
        let t = template();
        let mut filter = MaintFilter::new(&t);
        filter.specs[1].view_positions.clear();
        assert!(filter.may_affect(1, &tuple![0i64, 0i64, 0i64]));
        assert_eq!(filter.joins_avoided(), 0);
    }
}
