//! A SQL-subset parser for the paper's template class (Section 2.1).
//!
//! Templates are written as SQL with `?` placeholders marking the
//! parameterized selection-condition slots:
//!
//! ```sql
//! SELECT * FROM orders, lineitem
//! WHERE orders.orderkey = lineitem.orderkey   -- join (Cjoin)
//!   AND orders.status = 'open'                -- fixed predicate (Cjoin)
//!   AND orders.orderdate = ?                  -- equality-form slot
//!   AND lineitem.quantity BETWEEN ?           -- interval-form slot
//! ```
//!
//! `col = ?` declares an equality-form condition (bound later with one
//! or more values); `col BETWEEN ?` declares an interval-form condition
//! (bound with one or more disjoint intervals). Everything else in the
//! WHERE clause is `Cjoin`: equi-joins between two qualified columns, or
//! fixed `col = literal` predicates.

use std::fmt;
use std::sync::Arc;

use pmv_storage::Value;

use crate::engine::Database;
use crate::template::{QueryTemplate, TemplateBuilder};
use crate::{QueryError, Result};

/// Lexical token.
#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Star,
    Comma,
    Dot,
    Eq,
    Question,
    Keyword(Keyword),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Keyword {
    Select,
    From,
    Where,
    And,
    Between,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Star => write!(f, "*"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Eq => write!(f, "="),
            Token::Question => write!(f, "?"),
            Token::Keyword(k) => write!(f, "{k:?}"),
        }
    }
}

fn err(msg: impl Into<String>) -> QueryError {
    QueryError::Template(msg.into())
}

/// Tokenize, skipping whitespace and `--` line comments.
fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Question);
                i += 1;
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(err("unterminated string literal"));
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Float(
                        text.parse()
                            .map_err(|_| err(format!("bad number '{text}'")))?,
                    ));
                } else {
                    tokens.push(Token::Int(
                        text.parse()
                            .map_err(|_| err(format!("bad number '{text}'")))?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let token = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Token::Keyword(Keyword::Select),
                    "FROM" => Token::Keyword(Keyword::From),
                    "WHERE" => Token::Keyword(Keyword::Where),
                    "AND" => Token::Keyword(Keyword::And),
                    "BETWEEN" => Token::Keyword(Keyword::Between),
                    _ => Token::Ident(word.to_string()),
                };
                tokens.push(token);
            }
            other => return Err(err(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

/// Recursive-descent parser state.
struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

#[derive(Clone, Debug, PartialEq)]
enum Operand {
    Column { relation: String, column: String },
    Literal(Value),
    Placeholder,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| err("unexpected end of template"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Token) -> Result<()> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(err(format!("expected {want}, got {got}")))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<()> {
        self.expect(&Token::Keyword(kw))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(err(format!("expected identifier, got {other}"))),
        }
    }

    /// `relation '.' column`.
    fn qualified(&mut self) -> Result<(String, String)> {
        let rel = self.ident()?;
        self.expect(&Token::Dot)?;
        let col = self.ident()?;
        Ok((rel, col))
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.next()? {
            Token::Ident(rel) => {
                self.expect(&Token::Dot)?;
                let col = self.ident()?;
                Ok(Operand::Column {
                    relation: rel,
                    column: col,
                })
            }
            Token::Int(v) => Ok(Operand::Literal(Value::Int(v))),
            Token::Float(v) => Ok(Operand::Literal(Value::Double(v))),
            Token::Str(s) => Ok(Operand::Literal(Value::str(&s))),
            Token::Question => Ok(Operand::Placeholder),
            other => Err(err(format!("expected column, literal, or ?, got {other}"))),
        }
    }
}

/// Parse `sql` into a [`QueryTemplate`] named `name`, resolving relation
/// schemas through `db`.
///
/// ```
/// use pmv_query::{parse_template, Database};
/// use pmv_storage::{Column, ColumnType, Schema};
///
/// let mut db = Database::new();
/// db.create_relation(Schema::new(
///     "t",
///     vec![Column::new("a", ColumnType::Int), Column::new("b", ColumnType::Int)],
/// )).unwrap();
/// let template = parse_template(
///     "demo",
///     "SELECT t.a FROM t WHERE t.b = ?",
///     &db,
/// ).unwrap();
/// assert_eq!(template.cond_count(), 1);
/// ```
pub fn parse_template(name: &str, sql: &str, db: &Database) -> Result<Arc<QueryTemplate>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };

    // SELECT list.
    p.expect_keyword(Keyword::Select)?;
    let mut select_star = false;
    let mut select_cols: Vec<(String, String)> = Vec::new();
    if p.peek() == Some(&Token::Star) {
        p.next()?;
        select_star = true;
    } else {
        loop {
            select_cols.push(p.qualified()?);
            if p.peek() == Some(&Token::Comma) {
                p.next()?;
            } else {
                break;
            }
        }
    }

    // FROM list.
    p.expect_keyword(Keyword::From)?;
    let mut relations = Vec::new();
    loop {
        relations.push(p.ident()?);
        if p.peek() == Some(&Token::Comma) {
            p.next()?;
        } else {
            break;
        }
    }

    // Builder with schemas resolved from the database.
    let mut builder = TemplateBuilder::new(name);
    for rel in &relations {
        builder = builder.relation(db.schema(rel)?);
    }
    if select_star {
        builder = builder.select_star();
    } else {
        for (rel, col) in &select_cols {
            builder = builder.select(rel, col)?;
        }
    }

    // WHERE clause.
    p.expect_keyword(Keyword::Where)?;
    loop {
        let left = p.qualified()?;
        match p.next()? {
            Token::Eq => match p.operand()? {
                Operand::Column { relation, column } => {
                    builder = builder.join(&left.0, &left.1, &relation, &column)?;
                }
                Operand::Literal(v) => {
                    builder = builder.fixed(&left.0, &left.1, v)?;
                }
                Operand::Placeholder => {
                    builder = builder.cond_eq(&left.0, &left.1)?;
                }
            },
            Token::Keyword(Keyword::Between) => {
                p.expect(&Token::Question)?;
                builder = builder.cond_interval(&left.0, &left.1)?;
            }
            other => return Err(err(format!("expected = or BETWEEN, got {other}"))),
        }
        match p.peek() {
            Some(Token::Keyword(Keyword::And)) => {
                p.next()?;
            }
            None => break,
            Some(other) => return Err(err(format!("expected AND or end, got {other}"))),
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Condition, Interval};
    use crate::template::CondForm;
    use pmv_index::IndexDef;
    use pmv_storage::{tuple, Column, ColumnType, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "orders",
            vec![
                Column::new("orderkey", ColumnType::Int),
                Column::new("orderdate", ColumnType::Int),
                Column::new("status", ColumnType::Str),
            ],
        ))
        .unwrap();
        db.create_relation(Schema::new(
            "lineitem",
            vec![
                Column::new("orderkey", ColumnType::Int),
                Column::new("suppkey", ColumnType::Int),
                Column::new("quantity", ColumnType::Int),
            ],
        ))
        .unwrap();
        db
    }

    #[test]
    fn parses_the_paper_t1_shape() {
        let db = db();
        let t = parse_template(
            "T1",
            "SELECT * FROM orders, lineitem \
             WHERE orders.orderkey = lineitem.orderkey \
               AND orders.orderdate = ? \
               AND lineitem.suppkey = ?",
            &db,
        )
        .unwrap();
        assert_eq!(
            t.relations(),
            &["orders".to_string(), "lineitem".to_string()]
        );
        assert_eq!(t.joins().len(), 1);
        assert_eq!(t.cond_count(), 2);
        assert_eq!(t.cond_templates()[0].form, CondForm::Equality);
        assert_eq!(t.select_list().len(), 6);
    }

    #[test]
    fn parses_projection_fixed_and_between() {
        let db = db();
        let t = parse_template(
            "mixed",
            "SELECT orders.orderkey, lineitem.quantity \
             FROM orders, lineitem \
             WHERE orders.orderkey = lineitem.orderkey \
               AND orders.status = 'open' \
               AND lineitem.quantity BETWEEN ?",
            &db,
        )
        .unwrap();
        assert_eq!(t.select_list().len(), 2);
        assert_eq!(t.fixed_preds().len(), 1);
        assert_eq!(t.fixed_preds()[0].value, Value::str("open"));
        assert_eq!(t.cond_count(), 1);
        assert_eq!(t.cond_templates()[0].form, CondForm::Interval);
        // quantity is already in Ls, so Ls' == Ls.
        assert_eq!(t.expanded_list().len(), 2);
    }

    #[test]
    fn parsed_template_executes() {
        let mut db = db();
        db.load(
            "orders",
            vec![tuple![1i64, 100i64, "open"], tuple![2i64, 200i64, "open"]],
        )
        .unwrap();
        db.load(
            "lineitem",
            vec![tuple![1i64, 7i64, 5i64], tuple![2i64, 7i64, 9i64]],
        )
        .unwrap();
        db.create_index(IndexDef::btree("orders", vec![1])).unwrap();
        db.create_index(IndexDef::btree("lineitem", vec![0]))
            .unwrap();
        let t = parse_template(
            "exec",
            "SELECT orders.orderkey FROM orders, lineitem \
             WHERE orders.orderkey = lineitem.orderkey \
               AND orders.orderdate = ? AND lineitem.quantity BETWEEN ?",
            &db,
        )
        .unwrap();
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(100)]),
                Condition::Intervals(vec![Interval::closed(0i64, 6i64)]),
            ])
            .unwrap();
        let (rows, _) = crate::exec::execute(&db, &q).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int(1));
    }

    #[test]
    fn comments_and_case_are_tolerated() {
        let db = db();
        let t = parse_template(
            "c",
            "select orders.orderkey -- projection\n\
             from orders\n\
             where orders.orderdate = ? -- the slot\n",
            &db,
        )
        .unwrap();
        assert_eq!(t.cond_count(), 1);
    }

    #[test]
    fn negative_and_float_literals() {
        let db = db();
        let t = parse_template(
            "neg",
            "SELECT orders.orderkey FROM orders \
             WHERE orders.orderdate = -5 AND orders.orderkey = ?",
            &db,
        )
        .unwrap();
        assert_eq!(t.fixed_preds()[0].value, Value::Int(-5));
        let tokens = tokenize("3.5").unwrap();
        assert_eq!(tokens, vec![Token::Float(3.5)]);
    }

    #[test]
    fn error_cases() {
        let db = db();
        let cases = [
            // Unknown relation.
            "SELECT * FROM nosuch WHERE nosuch.x = ?",
            // Unknown column.
            "SELECT * FROM orders WHERE orders.nope = ?",
            // Missing WHERE.
            "SELECT * FROM orders",
            // BETWEEN needs a placeholder.
            "SELECT * FROM orders WHERE orders.orderdate BETWEEN 3",
            // Dangling AND.
            "SELECT * FROM orders WHERE orders.orderdate = ? AND",
            // Unterminated string.
            "SELECT * FROM orders WHERE orders.status = 'oops",
            // Garbage character.
            "SELECT * FROM orders WHERE orders.orderdate = ? ;",
            // No conditions at all (template class requires ≥ 1).
            "SELECT * FROM orders WHERE orders.status = 'open'",
        ];
        for sql in cases {
            assert!(
                parse_template("bad", sql, &db).is_err(),
                "should reject: {sql}"
            );
        }
    }

    #[test]
    fn tokenizer_roundtrip_basics() {
        let t = tokenize("SELECT a.b, * FROM x WHERE a.b = 'hi' AND c.d BETWEEN ?").unwrap();
        assert!(t.contains(&Token::Keyword(Keyword::Select)));
        assert!(t.contains(&Token::Star));
        assert!(t.contains(&Token::Str("hi".into())));
        assert!(t.contains(&Token::Question));
        assert!(t.contains(&Token::Keyword(Keyword::Between)));
    }
}
