//! `pmv-obs` — observability for the PMV serving path.
//!
//! Three pieces, all std-only so every layer of the workspace can record
//! into them without new dependencies:
//!
//! * [`hist`] — lock-free log-bucketed latency histograms (HDR-lite),
//!   mergeable, with p50/p90/p99/max within one bucket (≤12.5%) of the
//!   exact order statistic.
//! * [`trace`] — a bounded ring-buffer recorder of per-query lifecycle
//!   events with a drop-publishing [`TraceScope`] span API.
//! * [`export`] — Prometheus text format and hand-rolled JSON snapshots.
//! * [`account`] — lock-free per-template workload accounting (the
//!   advisor's observed-statistics input).
//! * [`spool`] — anomaly-triggered flight recorder over a pluggable
//!   [`spool::SpoolSink`] (the disk sink lives in `pmv-wal`).
//! * [`profile`] — the `pmv-profile` report model: contention ranking,
//!   template cost ranking, pipeline stage breakdown.
//!
//! [`ObsRegistry`] ties them together: one histogram per serving-path
//! [`Phase`], one trace ring, and one `enabled` switch. The switch is a
//! relaxed `AtomicBool` — like every atomic in this crate it is
//! statistics, not synchronization; a disabled registry turns
//! [`ObsRegistry::record`] into a single relaxed load and
//! [`ObsRegistry::begin_trace`] into a no-alloc no-op scope, which is
//! what keeps disabled observability under the 5% serving-path budget.
//!
//! Phases are declared once in [`for_each_phase!`] with a
//! `[keep]`/`[transient]` tag, mirroring `for_each_stat_field!` in
//! `pmv-core`: `[transient]` histograms (degradation latency) are zeroed
//! by [`ObsRegistry::reset_transient`] alongside the transient counters
//! on revalidation, `[keep]` histograms (the paper-facing latency
//! series) survive.

pub mod account;
pub mod export;
pub mod hist;
pub mod profile;
pub mod sketch;
pub mod spool;
pub mod trace;

pub use account::{AccountSnapshot, AccountTable, O2Outcome, TemplateAccount};
pub use export::{phase_json, to_json, to_prometheus, ViewMetrics};
pub use hist::{bucket_bounds, bucket_of, HistSnapshot, LatencyHistogram, BUCKETS};
pub use profile::{ContentionSite, PipelineStage, ProfileReport, TemplateCost};
pub use sketch::{SpaceSaving, DEFAULT_SKETCH_CAPACITY};
pub use spool::{FlightRecorder, MemSink, SpoolSink, TriggerReason};
pub use trace::{EventKind, QueryTrace, TraceEvent, TraceKind, TraceRecorder, TraceScope};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Traces retained by a registry's ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Single declaration point for the serving-path phases, tagged
/// `[keep]` (survives `reset_transient`) or `[transient]` (zeroed with
/// the transient counters on revalidation).
#[macro_export]
macro_rules! for_each_phase {
    ($m:ident) => {
        $m! {
            [keep] ttfr,
            [keep] full,
            [keep] o1_decompose,
            [keep] o2_probe,
            [keep] o3_exec,
            [keep] o3_dedup,
            [keep] maint_join,
            [keep] maint_index,
            [keep] upquery,
            [keep] revalidate,
            [keep] snapshot_swap,
            [keep] epoch_pin,
            [keep] wal_append,
            [keep] wal_fsync,
            [keep] ckpt_write,
            [keep] recovery_replay,
            [keep] lock_shard_probe,
            [keep] lock_shard_fill,
            [keep] lock_shard_maint,
            [keep] lock_master_commit,
            [keep] commit_drain,
            [keep] snapshot_publish,
            [transient] degraded,
        }
    };
}

macro_rules! reset_if_transient {
    ([keep] $h:expr) => {};
    ([transient] $h:expr) => {
        $h.reset();
    };
}

macro_rules! define_phases {
    ($([$tag:ident] $name:ident,)*) => {
        /// A timed phase of the serving path. `ttfr` is query start →
        /// O2 partials returned (the paper's "~1 ms" claim); `full` is
        /// query start → complete results; the rest are the individual
        /// phase timers.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[allow(non_camel_case_types)]
        pub enum Phase {
            $(
                #[allow(missing_docs)]
                $name,
            )*
        }

        impl Phase {
            /// Every phase, in declaration order.
            pub const ALL: &'static [Phase] = &[$(Phase::$name,)*];

            /// Stable name used as the export `phase` label.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Phase::$name => stringify!($name),)*
                }
            }
        }

        #[derive(Debug, Default)]
        struct PhaseHists {
            $($name: LatencyHistogram,)*
        }

        impl PhaseHists {
            fn get(&self, p: Phase) -> &LatencyHistogram {
                match p {
                    $(Phase::$name => &self.$name,)*
                }
            }

            fn reset(&self) {
                $(self.$name.reset();)*
            }

            fn reset_transient(&self) {
                $(reset_if_transient!([$tag] self.$name);)*
            }
        }
    };
}

for_each_phase!(define_phases);

/// Per-view observability hub: one [`LatencyHistogram`] per [`Phase`]
/// plus a [`TraceRecorder`], behind one enable switch.
#[derive(Debug)]
pub struct ObsRegistry {
    enabled: AtomicBool,
    hists: PhaseHists,
    trace: TraceRecorder,
}

impl Default for ObsRegistry {
    fn default() -> Self {
        ObsRegistry::new()
    }
}

impl ObsRegistry {
    /// An enabled registry with [`DEFAULT_TRACE_CAPACITY`] traces.
    pub fn new() -> Self {
        ObsRegistry::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled registry retaining `trace_capacity` traces.
    pub fn with_capacity(trace_capacity: usize) -> Self {
        ObsRegistry {
            enabled: AtomicBool::new(true),
            hists: PhaseHists::default(),
            trace: TraceRecorder::new(trace_capacity),
        }
    }

    /// A registry that records nothing until re-enabled.
    pub fn disabled() -> Self {
        let reg = ObsRegistry::new();
        reg.set_enabled(false);
        reg
    }

    /// Flip recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on. One relaxed load — this is the entire
    /// cost of a disabled [`ObsRegistry::record`] call.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one duration into a phase histogram (no-op when
    /// disabled).
    #[inline]
    pub fn record(&self, phase: Phase, d: Duration) {
        if self.enabled() {
            self.hists.get(phase).record(d);
        }
    }

    /// Snapshot one phase histogram.
    pub fn snapshot(&self, phase: Phase) -> HistSnapshot {
        self.hists.get(phase).snapshot()
    }

    /// Snapshot every phase, in declaration order, as export-ready
    /// `(phase name, histogram)` pairs.
    pub fn snapshots(&self) -> Vec<(&'static str, HistSnapshot)> {
        Phase::ALL
            .iter()
            .map(|&p| (p.as_str(), self.snapshot(p)))
            .collect()
    }

    /// Zero every histogram and drop every trace.
    pub fn reset(&self) {
        self.hists.reset();
        self.trace.clear();
    }

    /// Zero only `[transient]`-tagged histograms (the revalidation
    /// contract, matching `AtomicPmvStats::reset_transient`).
    pub fn reset_transient(&self) {
        self.hists.reset_transient();
    }

    /// The trace ring (always readable, even when disabled).
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Open a lifecycle span. Disabled registries hand back a no-alloc
    /// no-op scope that publishes nothing on drop.
    pub fn begin_trace(&self, kind: TraceKind, template: &str) -> TraceScope<'_> {
        if self.enabled() {
            self.trace.begin(kind, template)
        } else {
            TraceScope::noop()
        }
    }

    /// [`ObsRegistry::begin_trace`] without the per-span string copy:
    /// the serving path holds one `Arc<str>` per view and opening a
    /// span costs a refcount bump — and, when disabled, nothing at all.
    pub fn begin_trace_shared(
        &self,
        kind: TraceKind,
        template: &std::sync::Arc<str>,
    ) -> TraceScope<'_> {
        if self.enabled() {
            self.trace.begin_shared(kind, template)
        } else {
            TraceScope::noop()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique_and_stable() {
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        assert!(names.contains(&"ttfr"));
        assert!(names.contains(&"full"));
        assert!(names.contains(&"degraded"));
        assert!(names.contains(&"wal_append"));
        assert!(names.contains(&"recovery_replay"));
        assert!(names.contains(&"lock_master_commit"));
        assert!(names.contains(&"snapshot_publish"));
        assert!(names.contains(&"maint_index"));
        assert!(names.contains(&"upquery"));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
        assert_eq!(n, 23);
    }

    #[test]
    fn reset_transient_keeps_keep_tagged_histograms() {
        let reg = ObsRegistry::new();
        reg.record(Phase::ttfr, Duration::from_micros(100));
        reg.record(Phase::full, Duration::from_micros(400));
        reg.record(Phase::degraded, Duration::from_micros(900));
        reg.reset_transient();
        assert_eq!(reg.snapshot(Phase::ttfr).count(), 1, "[keep] survives");
        assert_eq!(reg.snapshot(Phase::full).count(), 1, "[keep] survives");
        assert_eq!(
            reg.snapshot(Phase::degraded).count(),
            0,
            "[transient] zeroed"
        );
        reg.reset();
        assert_eq!(reg.snapshot(Phase::ttfr).count(), 0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = ObsRegistry::disabled();
        assert!(!reg.enabled());
        reg.record(Phase::o3_exec, Duration::from_millis(5));
        assert_eq!(reg.snapshot(Phase::o3_exec).count(), 0);
        let mut scope = reg.begin_trace(TraceKind::Query, "t1");
        assert!(!scope.active());
        scope.event(EventKind::Decompose { parts: 1, us: 1 });
        drop(scope);
        assert!(reg.trace().is_empty());

        reg.set_enabled(true);
        reg.record(Phase::o3_exec, Duration::from_millis(5));
        assert_eq!(reg.snapshot(Phase::o3_exec).count(), 1);
        drop(reg.begin_trace(TraceKind::Query, "t1"));
        assert_eq!(reg.trace().len(), 1);
    }

    #[test]
    fn snapshots_cover_every_phase_in_order() {
        let reg = ObsRegistry::new();
        reg.record(Phase::maint_join, Duration::from_micros(7));
        let snaps = reg.snapshots();
        assert_eq!(snaps.len(), Phase::ALL.len());
        assert_eq!(snaps[0].0, "ttfr");
        let (_, maint) = snaps.iter().find(|(n, _)| *n == "maint_join").unwrap();
        assert_eq!(maint.count(), 1);
    }
}
