//! Space-saving heavy-hitter sketch (Metwally et al.), used by the
//! maintenance path to split the delta stream into heavy and light
//! keys: a delta key whose estimated frequency clears a threshold takes
//! the O(fanout) delta-key-index path, everything else batches into the
//! coalesced ΔR join (Abo-Khamis-style heavy/light partitioning bounds
//! worst-case maintenance under Zipfian churn).
//!
//! The sketch tracks at most `cap` keys. A new key arriving at capacity
//! replaces the current minimum and inherits `min + 1` as its count —
//! the classic space-saving overestimate, which errs toward *heavy*.
//! Overestimating a cold key merely routes a few extra deltas through
//! the (always-sound) indexed path, so the bias is safe here.

use std::collections::HashMap;

/// Default number of tracked keys — enough for the hot tail of a
/// Zipfian delete stream while keeping the replace-min scan trivial.
pub const DEFAULT_SKETCH_CAPACITY: usize = 64;

/// Bounded frequency sketch over pre-hashed `u64` keys.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    cap: usize,
    counts: HashMap<u64, u64>,
    /// Total keys noted (observed stream length, for reporting).
    noted: u64,
}

impl Default for SpaceSaving {
    fn default() -> Self {
        SpaceSaving::new(DEFAULT_SKETCH_CAPACITY)
    }
}

impl SpaceSaving {
    /// Sketch tracking at most `cap` keys (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SpaceSaving {
            cap,
            counts: HashMap::with_capacity(cap),
            noted: 0,
        }
    }

    /// Record one occurrence of `key`, returning its estimated count
    /// after the update.
    pub fn note(&mut self, key: u64) -> u64 {
        self.noted += 1;
        if let Some(n) = self.counts.get_mut(&key) {
            *n += 1;
            return *n;
        }
        if self.counts.len() < self.cap {
            self.counts.insert(key, 1);
            return 1;
        }
        // At capacity: evict the minimum, inherit its count + 1.
        let (&victim, &min) = self
            .counts
            .iter()
            .min_by_key(|(_, &n)| n)
            .expect("cap >= 1, so a full sketch is non-empty");
        self.counts.remove(&victim);
        self.counts.insert(key, min + 1);
        min + 1
    }

    /// Estimated count for `key` (0 when untracked). Never
    /// underestimates a tracked key's true frequency by more than the
    /// evicted minimum at insertion time; untracked keys have true
    /// count at most the current minimum.
    pub fn estimate(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Keys whose estimated count is at least `threshold`, heaviest
    /// first.
    pub fn heavy(&self, threshold: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .counts
            .iter()
            .filter(|(_, &n)| n >= threshold)
            .map(|(&k, &n)| (k, n))
            .collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Keys currently tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing has been tracked yet.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total occurrences noted since construction (or the last clear).
    pub fn noted(&self) -> u64 {
        self.noted
    }

    /// Forget every key and zero the stream length.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.noted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_below_capacity_are_exact() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..5 {
            s.note(1);
        }
        s.note(2);
        assert_eq!(s.estimate(1), 5);
        assert_eq!(s.estimate(2), 1);
        assert_eq!(s.estimate(3), 0);
        assert_eq!(s.noted(), 6);
    }

    #[test]
    fn heavy_hitters_survive_churn() {
        let mut s = SpaceSaving::new(4);
        // One genuinely hot key among a stream of singletons.
        for i in 0..100u64 {
            s.note(999);
            s.note(1000 + i);
        }
        assert!(s.estimate(999) >= 100, "hot key evicted: {}", s.estimate(999));
        assert_eq!(s.len(), 4);
        let heavy = s.heavy(50);
        assert_eq!(heavy[0].0, 999);
    }

    #[test]
    fn eviction_inherits_min_plus_one() {
        let mut s = SpaceSaving::new(2);
        s.note(1); // 1 -> 1
        s.note(1); // 1 -> 2
        s.note(2); // 2 -> 1
        s.note(3); // evicts 2 (min=1), 3 -> 2
        assert_eq!(s.estimate(2), 0);
        assert_eq!(s.estimate(3), 2);
        assert_eq!(s.estimate(1), 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = SpaceSaving::new(2);
        s.note(7);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.noted(), 0);
        assert_eq!(s.estimate(7), 0);
    }
}
