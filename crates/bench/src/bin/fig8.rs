//! Figure 8 — overhead of our techniques, "number of tuples" experiment.
//!
//! h = 4 and s fixed; F (tuples stored per PMV entry) swept 1..=5;
//! templates T1 and T2. The PMV has 20K entries and, per the paper's
//! setup, exactly one of the query's h bcps is resident.
//!
//! Paper's reading: overhead grows with F (more cached tuples are
//! checked per hit), and T2's overhead exceeds T1's (three-way join ⇒
//! longer tuples and wider bcps).
//!
//! Scale defaults to 0.05 (`--scale X` to change, `--paper` = 1.0).

use pmv_bench::tpcr_harness::{arg_flag, arg_value, build_db, measure_cell, CellConfig, Template};
use pmv_bench::ExperimentReport;

fn main() {
    let scale: f64 = if arg_flag("--paper") {
        1.0
    } else {
        arg_value("--scale")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.05)
    };
    let runs: usize = arg_value("--runs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if arg_flag("--quick") { 5 } else { 30 });

    eprintln!("building TPC-R database at s={scale}…");
    let db = build_db(scale, 0xc0ffee);

    let mut report = ExperimentReport::new(
        "figure8",
        format!("PMV overhead (s) vs F; h=4, s={scale}"),
        "F",
    );
    for f_cap in 1..=5usize {
        let mut values = Vec::new();
        for (template, name) in [(Template::T1, "T1"), (Template::T2, "T2")] {
            // h = 4: T1 uses e=2, f=2; T2 uses e=2, f=2, g=1.
            let cell = CellConfig {
                template,
                e: 2,
                f_disjuncts: 2,
                g: 1,
                f_cap,
                entries: 20_000,
                runs,
                seed: 7 + f_cap as u64,
            };
            let s = measure_cell(&db, &cell);
            values.push((name.to_string(), s.overhead.as_secs_f64()));
            values.push((format!("{name} probe"), s.probe.as_secs_f64()));
            eprintln!(
                "F={f_cap} {name}: overhead={:?} exec={:?} partial={:.1}",
                s.overhead, s.exec, s.partial_tuples
            );
        }
        report.push(f_cap.to_string(), values);
    }
    report.print();
}
