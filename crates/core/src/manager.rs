//! Multi-PMV management.
//!
//! The paper argues the RDBMS "can afford storing many PMVs" — with
//! L = 10K, F = 2, At = 50 B a PMV is ≤ 1 MB, so memory holds hundreds
//! (Section 3.2) — one per frequently used query template (the call-center
//! scenario needs "many query templates", one `R_sale` per store or
//! department). [`PmvManager`] owns a set of PMVs, routes queries to the
//! right one by template identity, fans maintenance out to every PMV built
//! over the changed relation, and enforces a global byte budget.

use std::collections::HashMap;
use std::sync::Arc;

use pmv_query::{Database, QueryInstance, QueryTemplate};
use pmv_storage::DeltaBatch;

use crate::health::ViewHealth;
use crate::maintenance::MaintenanceOutcome;
use crate::pipeline::{Pmv, PmvPipeline, QueryOutcome};
use crate::verify::{self, VerifyOptions};
use crate::view::{PartialViewDef, PmvConfig};
use crate::{CoreError, Result};

/// One row of [`PmvManager::health_report`]: the operator-facing health
/// summary for a single view.
#[derive(Clone, Debug)]
pub struct ViewHealthReport {
    /// View name.
    pub name: String,
    /// Circuit-breaker state.
    pub health: ViewHealth,
    /// Windowed error fraction seen by the breaker.
    pub error_rate: f64,
    /// Times the breaker entered Quarantined.
    pub trips: u64,
    /// Queries answered with a `Degraded` outcome so far.
    pub degraded_queries: u64,
    /// Shard/store drain events so far.
    pub quarantine_events: u64,
    /// Milliseconds since the view was last verified consistent (a
    /// completed maintenance batch or revalidation sweep) — how old the
    /// breaker's notion of "known good" is.
    pub last_verified_age_ms: u64,
}

impl std::fmt::Display for ViewHealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} (error rate {:.3}, trips {}, degraded queries {}, quarantine events {}, \
             last verified {}ms ago)",
            self.name,
            self.health,
            self.error_rate,
            self.trips,
            self.degraded_queries,
            self.quarantine_events,
            self.last_verified_age_ms
        )
    }
}

/// A named collection of PMVs sharing one pipeline (and thus one lock
/// manager).
pub struct PmvManager {
    pipeline: PmvPipeline,
    views: Vec<Pmv>,
    /// template pointer identity → index into `views`.
    by_template: HashMap<usize, usize>,
    /// Optional global budget over Σ store byte sizes.
    byte_budget: Option<usize>,
    /// Registration-time static-analysis options (deny-by-default; see
    /// [`crate::verify`]).
    analysis: VerifyOptions,
}

impl Default for PmvManager {
    fn default() -> Self {
        Self::new()
    }
}

impl PmvManager {
    /// Empty manager with a fresh pipeline.
    pub fn new() -> Self {
        PmvManager {
            pipeline: PmvPipeline::new(),
            views: Vec::new(),
            by_template: HashMap::new(),
            byte_budget: None,
            analysis: VerifyOptions::default(),
        }
    }

    /// Override the registration-time analysis options — e.g. downgrade
    /// a diagnostic code via [`crate::verify::VerifyPolicy`], or set a
    /// hard `PMV004` byte budget (distinct from [`Self::with_byte_budget`],
    /// the *soft* runtime budget enforced by shedding).
    pub fn with_analysis(mut self, opts: VerifyOptions) -> Self {
        self.analysis = opts;
        self
    }

    /// Impose a global byte budget across all PMVs. [`Self::over_budget`]
    /// reports violations; [`Self::shed`] trims the largest PMV until the
    /// budget holds.
    pub fn with_byte_budget(mut self, bytes: usize) -> Self {
        self.byte_budget = Some(bytes);
        self
    }

    /// The shared pipeline (for direct `run`/`maintain` calls).
    pub fn pipeline(&self) -> &PmvPipeline {
        &self.pipeline
    }

    fn template_key(t: &Arc<QueryTemplate>) -> usize {
        Arc::as_ptr(t) as usize
    }

    /// Register a PMV for a template. One PMV per template.
    ///
    /// The definition first passes through the static verifier
    /// ([`crate::verify::verify_def`]); any `PMV001..PMV006` diagnostic
    /// at deny severity rejects the registration with
    /// [`CoreError::Analysis`] before a store is ever allocated.
    /// Deny-by-default — downgrade individual codes through
    /// [`Self::with_analysis`].
    pub fn register(&mut self, def: PartialViewDef, config: PmvConfig) -> Result<()> {
        let report = verify::verify_def(&def, &config, &self.analysis);
        if report.denied() {
            return Err(CoreError::Analysis(report));
        }
        let key = Self::template_key(def.template());
        if self.by_template.contains_key(&key) {
            return Err(CoreError::Definition(format!(
                "template '{}' already has a PMV",
                def.template().name()
            )));
        }
        self.by_template.insert(key, self.views.len());
        self.views.push(Pmv::new(def, config));
        Ok(())
    }

    /// Alias for [`Self::register`], kept for earlier callers.
    pub fn create_view(&mut self, def: PartialViewDef, config: PmvConfig) -> Result<()> {
        self.register(def, config)
    }

    /// Number of registered PMVs.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// The PMV for a template, if registered.
    pub fn view_for(&self, template: &Arc<QueryTemplate>) -> Option<&Pmv> {
        self.by_template
            .get(&Self::template_key(template))
            .map(|&i| &self.views[i])
    }

    /// Mutable access by template (e.g. for `revalidate`).
    pub fn view_for_mut(&mut self, template: &Arc<QueryTemplate>) -> Option<&mut Pmv> {
        self.by_template
            .get(&Self::template_key(template))
            .map(|&i| &mut self.views[i])
    }

    /// Route a query to its template's PMV and run the O1/O2/O3 pipeline.
    /// Queries over unregistered templates fail with a definition error;
    /// use [`PmvPipeline::run_plain`] for those.
    pub fn run(&mut self, db: &Database, q: &QueryInstance) -> Result<QueryOutcome> {
        let idx = *self
            .by_template
            .get(&Self::template_key(q.template()))
            .ok_or_else(|| {
                CoreError::Definition(format!(
                    "no PMV registered for template '{}'",
                    q.template().name()
                ))
            })?;
        self.pipeline.run(db, &mut self.views[idx], q)
    }

    /// Fan a delta batch out to every PMV whose template references the
    /// changed relation. Returns one outcome per affected PMV.
    pub fn maintain(
        &mut self,
        db: &Database,
        batch: &DeltaBatch,
    ) -> Result<Vec<(String, MaintenanceOutcome)>> {
        let mut outcomes = Vec::new();
        for pmv in &mut self.views {
            let references = pmv
                .def()
                .template()
                .relations()
                .iter()
                .any(|r| r == batch.relation());
            if references {
                let name = pmv.def().name().to_string();
                let out = self.pipeline.maintain(db, pmv, batch)?;
                outcomes.push((name, out));
            }
        }
        Ok(outcomes)
    }

    /// Total bytes cached across all PMVs.
    pub fn total_bytes(&self) -> usize {
        self.views.iter().map(|p| p.store().byte_size()).sum()
    }

    /// Amount over the byte budget, if any.
    pub fn over_budget(&self) -> usize {
        match self.byte_budget {
            Some(b) => self.total_bytes().saturating_sub(b),
            None => 0,
        }
    }

    /// Trim cached entries (largest store first, evicting its coldest
    /// entries through the policy) until within budget. Returns tuples
    /// dropped.
    pub fn shed(&mut self) -> usize {
        let Some(budget) = self.byte_budget else {
            return 0;
        };
        let mut dropped = 0;
        while self.total_bytes() > budget {
            // Largest store pays.
            let Some((idx, _)) = self
                .views
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| p.store().byte_size())
            else {
                break;
            };
            let pmv = &mut self.views[idx];
            // Evict one entry: drop the first resident bcp's tuples.
            let victim = pmv
                .store()
                .iter()
                .next()
                .map(|(k, ts)| (k.clone(), ts.to_vec()));
            match victim {
                Some((bcp, tuples)) => {
                    for (t, _) in tuples {
                        pmv.store.remove_tuple(&bcp, &t);
                        dropped += 1;
                    }
                }
                None => break, // nothing left to shed anywhere
            }
        }
        dropped
    }

    /// Re-derive every cached tuple of every PMV from the current
    /// database state and drop anything stale (the coarse fallback when
    /// deltas were lost, e.g. after crash recovery). Returns the total
    /// number of tuples removed across all PMVs.
    pub fn revalidate_all(&mut self, db: &Database) -> Result<usize> {
        let mut removed = 0;
        for pmv in &mut self.views {
            removed += pmv.revalidate(db)?;
        }
        Ok(removed)
    }

    /// Per-view health summary: breaker state, windowed error rate, trip
    /// count, and degradation counters. The CLI's `health` command and
    /// operators' dashboards read this.
    pub fn health_report(&self) -> Vec<ViewHealthReport> {
        self.views
            .iter()
            .map(|p| {
                let stats = p.stats();
                ViewHealthReport {
                    name: p.def().name().to_string(),
                    health: p.health(),
                    error_rate: p.breaker().error_rate(),
                    trips: p.breaker().trip_count(),
                    degraded_queries: stats.degraded_queries,
                    quarantine_events: stats.quarantine_events,
                    last_verified_age_ms: p.last_verified_age().as_millis() as u64,
                }
            })
            .collect()
    }

    /// Per-view exportable telemetry: every `PmvStats` counter, the
    /// derived probability gauges, breaker state, and the per-phase
    /// latency snapshots from each view's obs registry. This is the feed
    /// for [`Self::metrics_prometheus`] / [`Self::metrics_json`].
    pub fn metrics_views(&self) -> Vec<pmv_obs::ViewMetrics> {
        self.views
            .iter()
            .map(|p| {
                let stats = p.stats();
                pmv_obs::ViewMetrics {
                    name: p.def().name().to_string(),
                    health: p.health().as_str().to_string(),
                    error_rate: p.breaker().error_rate(),
                    trips: p.breaker().trip_count(),
                    last_verified_age_ms: p.last_verified_age().as_millis() as u64,
                    counters: stats.as_pairs(),
                    gauges: vec![
                        ("hit_probability", stats.hit_probability()),
                        ("serving_probability", stats.serving_probability()),
                        ("degraded_query_rate", stats.degraded_query_rate()),
                        ("store_bytes", p.store().byte_size() as f64),
                        ("occupancy", p.store().occupancy()),
                    ],
                    phases: p.obs().snapshots(),
                }
            })
            .collect()
    }

    /// All views' telemetry in the Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        pmv_obs::to_prometheus(&self.metrics_views())
    }

    /// All views' telemetry as one JSON document.
    pub fn metrics_json(&self) -> String {
        pmv_obs::to_json(&self.metrics_views())
    }

    /// The most recent `n` lifecycle traces per view, oldest first
    /// within each view. Empty unless tracing was enabled via
    /// [`crate::pipeline::Pmv`]'s obs registry (`obs().set_enabled`).
    pub fn trace_tail(&self, n: usize) -> Vec<pmv_obs::QueryTrace> {
        let mut out = Vec::new();
        for p in &self.views {
            out.extend(p.obs().trace().tail(n));
        }
        out
    }

    /// Flip observability (histograms + traces) for every registered
    /// view at once.
    pub fn set_obs_enabled(&self, on: bool) {
        for p in &self.views {
            p.obs().set_enabled(on);
        }
    }

    /// Aggregate statistics across all PMVs.
    pub fn aggregate_stats(&self) -> crate::stats::PmvStats {
        let mut total = crate::stats::PmvStats::default();
        for p in &self.views {
            total.merge(p.stats());
        }
        total
    }

    /// Iterate over the registered PMVs.
    pub fn views(&self) -> impl Iterator<Item = &Pmv> {
        self.views.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_cache::PolicyKind;
    use pmv_index::IndexDef;
    use pmv_query::{Condition, TemplateBuilder, Transaction};
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

    fn setup() -> (Database, Arc<QueryTemplate>, Arc<QueryTemplate>) {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        for i in 0..200i64 {
            db.insert("r", tuple![i, i % 10]).unwrap();
        }
        db.create_index(IndexDef::btree("r", vec![1])).unwrap();
        let ta = TemplateBuilder::new("by_f")
            .relation(db.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap();
        let tb = TemplateBuilder::new("by_a")
            .relation(db.schema("r").unwrap())
            .select("r", "f")
            .unwrap()
            .cond_eq("r", "a")
            .unwrap()
            .build()
            .unwrap();
        (db, ta, tb)
    }

    fn mgr(ta: &Arc<QueryTemplate>, tb: &Arc<QueryTemplate>) -> PmvManager {
        let mut m = PmvManager::new();
        m.create_view(
            PartialViewDef::all_equality("pmv_a", ta.clone()).unwrap(),
            PmvConfig::new(2, 16, PolicyKind::Clock),
        )
        .unwrap();
        m.create_view(
            PartialViewDef::all_equality("pmv_b", tb.clone()).unwrap(),
            PmvConfig::new(2, 16, PolicyKind::Clock),
        )
        .unwrap();
        m
    }

    #[test]
    fn routes_queries_by_template() {
        let (db, ta, tb) = setup();
        let mut m = mgr(&ta, &tb);
        let qa = ta
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        let qb = tb
            .bind(vec![Condition::Equality(vec![Value::Int(7)])])
            .unwrap();
        m.run(&db, &qa).unwrap();
        m.run(&db, &qb).unwrap();
        assert_eq!(m.view_for(&ta).unwrap().stats().queries, 1);
        assert_eq!(m.view_for(&tb).unwrap().stats().queries, 1);
        assert_eq!(m.aggregate_stats().queries, 2);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (_db, ta, tb) = setup();
        let mut m = mgr(&ta, &tb);
        let err = m.create_view(
            PartialViewDef::all_equality("again", ta.clone()).unwrap(),
            PmvConfig::default(),
        );
        assert!(err.is_err());
        assert_eq!(m.view_count(), 2);
    }

    #[test]
    fn unregistered_template_errors() {
        let (db, ta, tb) = setup();
        let mut m = PmvManager::new();
        m.create_view(
            PartialViewDef::all_equality("only_a", ta.clone()).unwrap(),
            PmvConfig::default(),
        )
        .unwrap();
        let qb = tb
            .bind(vec![Condition::Equality(vec![Value::Int(1)])])
            .unwrap();
        assert!(m.run(&db, &qb).is_err());
    }

    #[test]
    fn maintenance_fans_out_to_referencing_views() {
        let (mut db, ta, tb) = setup();
        let mut m = mgr(&ta, &tb);
        // Warm both.
        let qa = ta
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        let qb = tb
            .bind(vec![Condition::Equality(vec![Value::Int(13)])])
            .unwrap();
        m.run(&db, &qa).unwrap();
        m.run(&db, &qb).unwrap();
        // Delete tuple (13, 3): both PMVs reference relation r.
        let row = db
            .relation("r")
            .unwrap()
            .read()
            .iter()
            .find(|(_, t)| t.get(0) == &Value::Int(13))
            .map(|(r, _)| r)
            .unwrap();
        let mut txn = Transaction::begin(&mut db);
        txn.delete("r", row).unwrap();
        let batches = txn.commit();
        let outcomes = m.maintain(&db, &batches[0]).unwrap();
        assert_eq!(outcomes.len(), 2, "both PMVs must be maintained");
        let removed: usize = outcomes.iter().map(|(_, o)| o.view_tuples_removed).sum();
        assert!(
            removed >= 1,
            "the cached (13) tuple must be evicted somewhere"
        );
        // Queries stay consistent.
        let out = m.run(&db, &qa).unwrap();
        assert_eq!(out.ds_leftover, 0);
        let out = m.run(&db, &qb).unwrap();
        assert_eq!(out.ds_leftover, 0);
    }

    #[test]
    fn revalidate_all_sweeps_every_view() {
        let (mut db, ta, tb) = setup();
        let mut m = mgr(&ta, &tb);
        let qa = ta
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        let qb = tb
            .bind(vec![Condition::Equality(vec![Value::Int(13)])])
            .unwrap();
        m.run(&db, &qa).unwrap();
        m.run(&db, &qb).unwrap();
        // Nothing stale yet.
        assert_eq!(m.revalidate_all(&db).unwrap(), 0);
        // Delete a row behind the manager's back (no maintain call): both
        // PMVs cached tuples derived from it, so revalidation must sweep
        // them out.
        let row = db
            .relation("r")
            .unwrap()
            .read()
            .iter()
            .find(|(_, t)| t.get(0) == &Value::Int(13))
            .map(|(r, _)| r)
            .unwrap();
        let mut txn = Transaction::begin(&mut db);
        txn.delete("r", row).unwrap();
        txn.commit();
        let removed = m.revalidate_all(&db).unwrap();
        assert!(removed >= 1, "stale tuples must be removed, got {removed}");
        let out = m.run(&db, &qa).unwrap();
        assert_eq!(out.ds_leftover, 0);
    }

    #[test]
    fn register_runs_static_verifier_deny_by_default() {
        use crate::bcp::Discretizer;
        use crate::verify::{DiagCode, Severity, VerifyPolicy};
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        let t = TemplateBuilder::new("iv")
            .relation(db.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_interval("r", "f")
            .unwrap()
            .build()
            .unwrap();
        // Raw, unnormalized dividers: PMV002 must deny the registration.
        let bad = Discretizer::from_raw(vec![Value::Int(20), Value::Int(10)]);
        let def = PartialViewDef::new("bad_grid", t.clone(), vec![Some(bad.clone())]).unwrap();
        let mut m = PmvManager::new();
        let err = m.register(def, PmvConfig::default()).unwrap_err();
        match err {
            CoreError::Analysis(report) => {
                assert!(report.has(DiagCode::OverlappingBasicIntervals), "{report}")
            }
            other => panic!("expected analysis denial, got {other}"),
        }
        assert_eq!(m.view_count(), 0, "no store allocated for a denied view");
        // Downgrading the code via config admits the same definition.
        let mut m = PmvManager::new().with_analysis(VerifyOptions {
            policy: VerifyPolicy::deny_by_default()
                .with_override(DiagCode::OverlappingBasicIntervals, Severity::Warn),
            ..Default::default()
        });
        let def = PartialViewDef::new("bad_grid", t, vec![Some(bad)]).unwrap();
        m.register(def, PmvConfig::default()).unwrap();
        assert_eq!(m.view_count(), 1);
    }

    #[test]
    fn revalidate_all_resets_transient_counters() {
        let (db, ta, tb) = setup();
        let mut m = PmvManager::new();
        // A zero row budget degrades every query: transient counters rise.
        m.register(
            PartialViewDef::all_equality("tight", ta.clone()).unwrap(),
            PmvConfig::new(2, 16, PolicyKind::Clock).with_row_budget(0),
        )
        .unwrap();
        m.register(
            PartialViewDef::all_equality("other", tb.clone()).unwrap(),
            PmvConfig::new(2, 16, PolicyKind::Clock),
        )
        .unwrap();
        let qa = ta
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        m.run(&db, &qa).unwrap();
        let before = *m.view_for(&ta).unwrap().stats();
        assert!(before.budget_exceeded > 0, "row budget must have tripped");
        assert!(before.degraded_queries > 0);
        m.revalidate_all(&db).unwrap();
        let after = m.view_for(&ta).unwrap().stats();
        assert_eq!(after.budget_exceeded, 0, "transient counters reset");
        assert_eq!(after.degraded_queries, 0);
        assert_eq!(after.queries, before.queries, "workload history kept");
        assert_eq!(after.revalidations, 1);
    }

    #[test]
    fn metrics_export_covers_every_view_and_phase() {
        let (db, ta, tb) = setup();
        let mut m = mgr(&ta, &tb);
        m.set_obs_enabled(true);
        // Repeats make the second query of each pair a bcp hit.
        for f in [0i64, 0, 1, 1, 2] {
            let q = ta
                .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                .unwrap();
            m.run(&db, &q).unwrap();
        }
        let views = m.metrics_views();
        assert_eq!(views.len(), 2);
        let v = views.iter().find(|v| v.name == "pmv_a").unwrap();
        assert_eq!(v.health, "healthy");
        assert!(v.counters.contains(&("queries", 5)), "{:?}", v.counters);
        assert!(v
            .gauges
            .iter()
            .any(|(n, g)| *n == "hit_probability" && *g > 0.0));
        // Every declared phase appears; ttfr/full actually recorded.
        assert_eq!(v.phases.len(), pmv_obs::Phase::ALL.len());
        let ttfr = &v.phases.iter().find(|(n, _)| *n == "ttfr").unwrap().1;
        assert_eq!(ttfr.count(), 5);

        let text = m.metrics_prometheus();
        assert!(
            text.contains("pmv_queries_total{view=\"pmv_a\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("pmv_phase_latency_seconds_count{view=\"pmv_a\",phase=\"full\"} 5"),
            "{text}"
        );
        let json = m.metrics_json();
        assert!(json.contains("\"name\":\"pmv_a\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        // Traces were captured and the tail is bounded per view.
        let traces = m.trace_tail(3);
        assert_eq!(traces.len(), 3, "only pmv_a ran queries");
        assert!(traces.iter().all(|t| &*t.template == "pmv_a"));
        assert!(traces
            .iter()
            .all(|t| t.events.iter().any(|e| e.kind.name() == "first_results")));
    }

    #[test]
    fn health_report_includes_last_verified_age() {
        let (db, ta, tb) = setup();
        let mut m = mgr(&ta, &tb);
        let qa = ta
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        m.run(&db, &qa).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let report = m.health_report();
        assert!(report.iter().all(|r| r.last_verified_age_ms >= 5));
        // A revalidation sweep resets the age.
        m.revalidate_all(&db).unwrap();
        let report = m.health_report();
        assert!(
            report.iter().all(|r| r.last_verified_age_ms < 5),
            "{report:?}"
        );
        let line = report[0].to_string();
        assert!(line.contains("last verified"), "{line}");
    }

    #[test]
    fn byte_budget_shedding() {
        let (db, ta, tb) = setup();
        let mut m = mgr(&ta, &tb).with_byte_budget(200);
        for f in 0..10i64 {
            let q = ta
                .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                .unwrap();
            m.run(&db, &q).unwrap();
        }
        assert!(m.total_bytes() > 200);
        assert!(m.over_budget() > 0);
        let dropped = m.shed();
        assert!(dropped > 0);
        assert_eq!(m.over_budget(), 0);
        // The system still answers correctly after shedding.
        let q = ta
            .bind(vec![Condition::Equality(vec![Value::Int(1)])])
            .unwrap();
        let out = m.run(&db, &q).unwrap();
        assert_eq!(out.ds_leftover, 0);
        assert_eq!(out.all_results().len(), 20);
    }
}
