//! # pmv-faultinject — deterministic fault injection
//!
//! The PMV's value proposition is answering from the cache even when the
//! full query path is slow or broken, so the serving path has to be
//! exercised *under* failure, not just under load. This crate provides
//! that failure model: a seeded [`FaultPlan`] of [`FaultRule`]s, each
//! binding a [`Site`] (a named point in storage, index, query execution,
//! or the sharded PMV's critical sections) to a [`FaultKind`]
//! (error/latency/panic) at a given rate.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** Whether invocation *n* of a site fires is a pure
//!    function of `(seed, site, n)` — a counter-indexed hash, not a
//!    shared-state RNG — so an 8-thread stress run injects the same
//!    multiset of faults for a given seed regardless of interleaving,
//!    and a failing seed replays.
//! 2. **Free when off.** `fire` is one relaxed atomic load when no plan
//!    is installed, so the hooks can sit on per-tuple paths. All atomics
//!    in this crate are monotonically-increasing counters — they are
//!    statistics, not synchronization — so `Ordering::Relaxed` is sound
//!    throughout (no reader derives a happens-before edge from them; the
//!    pmv-lint `relaxed_outside_stats` rule keys off this paragraph).
//! 3. **Suppressible.** Test oracles need to compute ground truth on the
//!    same thread the faults target; [`suppress`] disables injection for
//!    the duration of a closure on the current thread.
//! 4. **Observable.** A delivered fault must be visible to telemetry,
//!    not just to the code path it broke: [`capture`] opens a
//!    thread-local scope that records every [`FiredFault`] delivered on
//!    the current thread. Faults are recorded *before* they act (sleep,
//!    error return, panic), so a panic contained by `catch_unwind`
//!    further up the same thread still leaves its record behind.
//!
//! Faults are injected *globally* (process-wide) via [`install`], because
//! the interesting failures cross thread boundaries: a panic injected in
//! one query thread must not poison state observed by another.
//!
//! ```
//! use pmv_faultinject::{fire, install, FaultKind, FaultPlan, Site};
//! use std::sync::Arc;
//!
//! let plan = Arc::new(FaultPlan::new(42).with_rule(Site::MaintJoin, FaultKind::Error, 1.0));
//! let _guard = install(Arc::clone(&plan));
//! assert!(fire(Site::MaintJoin).is_err());
//! assert!(fire(Site::ExecRow).is_ok()); // no rule at this site
//! ```

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A named injection point. Each site is a place in the real code where
/// [`fire`] (or [`fire_soft`]) is called.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Site {
    /// `pmv_storage::HeapRelation::get` — every tuple fetch. Soft site:
    /// latency/panic only (the read path has no `Result` to carry an
    /// injected error).
    StorageRead,
    /// Secondary-index probe (`AnyIndex::get`). Soft site.
    IndexProbe,
    /// Entry of the index-nested-loop executor (one per query/join).
    ExecStart,
    /// Each tuple examined by the executor. Latency here makes O3 slow
    /// enough to trip deadlines; errors abort the execution.
    ExecRow,
    /// The `ΔR ⋈ R_j` maintenance join (`join_from`).
    MaintJoin,
    /// A targeted per-bcp upquery refill (`upquery_fill`) — the bounded
    /// keyed O3 re-execution that repairs one bcp's slice after a miss
    /// or a drained shard.
    Upquery,
    /// Inside a shard's O2 probe critical section. Soft site.
    ShardProbe,
    /// Inside a shard's O3 fill critical section. Soft site.
    ShardFill,
    /// Inside a shard's maintenance removal critical section. Soft site.
    ShardMaint,
    /// `Dio::append` — the WAL record write (before the bytes reach the
    /// file). Disk site: supports `Io`/`TornWrite`/`CrashPoint`.
    WalAppend,
    /// `Dio::fsync` on the WAL file — the durability point of a commit.
    WalFsync,
    /// WAL segment deletion behind a checkpoint (`Dio::remove`).
    WalTruncate,
    /// Checkpoint temp-file write (`Dio::write_all` during serialization).
    CkptWrite,
    /// The checkpoint's atomic rename (`Dio::rename`).
    CkptRename,
    /// Flight-recorder spool dump write (`DiskSpool` in `pmv-wal`).
    /// Disk site: a failed dump is dropped, never surfaced to the
    /// serving path.
    SpoolWrite,
}

/// All sites, for iteration and per-site counters.
pub const ALL_SITES: [Site; 15] = [
    Site::StorageRead,
    Site::IndexProbe,
    Site::ExecStart,
    Site::ExecRow,
    Site::MaintJoin,
    Site::Upquery,
    Site::ShardProbe,
    Site::ShardFill,
    Site::ShardMaint,
    Site::WalAppend,
    Site::WalFsync,
    Site::WalTruncate,
    Site::CkptWrite,
    Site::CkptRename,
    Site::SpoolWrite,
];

impl Site {
    fn index(self) -> usize {
        match self {
            Site::StorageRead => 0,
            Site::IndexProbe => 1,
            Site::ExecStart => 2,
            Site::ExecRow => 3,
            Site::MaintJoin => 4,
            Site::Upquery => 5,
            Site::ShardProbe => 6,
            Site::ShardFill => 7,
            Site::ShardMaint => 8,
            Site::WalAppend => 9,
            Site::WalFsync => 10,
            Site::WalTruncate => 11,
            Site::CkptWrite => 12,
            Site::CkptRename => 13,
            Site::SpoolWrite => 14,
        }
    }

    /// Stable name, used by the plan parser and in error messages. Disk
    /// sites use dotted names (`wal.append`) to mark the layer boundary;
    /// in-memory sites keep their dashed PR-2 names.
    pub fn as_str(self) -> &'static str {
        match self {
            Site::StorageRead => "storage-read",
            Site::IndexProbe => "index-probe",
            Site::ExecStart => "exec-start",
            Site::ExecRow => "exec-row",
            Site::MaintJoin => "maint-join",
            Site::Upquery => "upquery",
            Site::ShardProbe => "shard-probe",
            Site::ShardFill => "shard-fill",
            Site::ShardMaint => "shard-maint",
            Site::WalAppend => "wal.append",
            Site::WalFsync => "wal.fsync",
            Site::WalTruncate => "wal.truncate",
            Site::CkptWrite => "ckpt.write",
            Site::CkptRename => "ckpt.rename",
            Site::SpoolWrite => "spool.write",
        }
    }

    /// Parse a site name as printed by [`Site::as_str`].
    pub fn parse(s: &str) -> Option<Site> {
        ALL_SITES.iter().copied().find(|site| site.as_str() == s)
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an injected fault does at its site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Return an [`InjectedFault`] error (ignored at soft sites).
    Error,
    /// Panic with a recognizable message; the serving path must contain
    /// the unwind.
    Panic,
    /// Sleep for the given duration (simulates a slow disk/lock/join).
    Latency(Duration),
    /// Disk sites: the operation fails with an I/O error after doing
    /// nothing (ENOSPC/EIO model). At non-disk `Result` sites it behaves
    /// like [`FaultKind::Error`].
    Io,
    /// Disk sites: the write persists only a prefix of the buffer, then
    /// fails — the torn-tail case WAL recovery must truncate. Elsewhere
    /// it degrades to [`FaultKind::Error`].
    TornWrite,
    /// Simulated `kill -9`: panic with [`CRASH_PREFIX`] so a crash
    /// harness can catch the unwind, drop all in-memory state, and
    /// reopen from the surviving files.
    CrashPoint,
}

/// One (site, kind, trigger) binding in a plan: either probabilistic
/// (`rate` per invocation) or one-shot (`nth` pins the exact invocation
/// index, for kill-point placement).
#[derive(Clone, Copy, Debug)]
pub struct FaultRule {
    /// Where to inject.
    pub site: Site,
    /// What to inject.
    pub kind: FaultKind,
    /// Probability per invocation, in `[0, 1]`. Ignored when `nth` is
    /// set.
    pub rate: f64,
    /// Fire exactly on the `nth` invocation (0-based) of the site and
    /// never again — deterministic kill-point placement.
    pub nth: Option<u64>,
}

/// The error value carried out of a fault-injected `Result` path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// Site that fired.
    pub site: Site,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {}", self.site)
    }
}

impl std::error::Error for InjectedFault {}

/// Message prefix of every injected panic, so harnesses can tell injected
/// panics from genuine bugs when inspecting a caught payload.
pub const PANIC_PREFIX: &str = "pmv-faultinject: injected panic";

/// Message prefix of a [`FaultKind::CrashPoint`] unwind — a *simulated
/// process kill*, distinct from [`PANIC_PREFIX`] so the serving path's
/// panic containment can let it through while a crash harness catches
/// it at the top.
pub const CRASH_PREFIX: &str = "pmv-faultinject: injected crash";

/// The injected I/O failure surfaced by disk sites, convertible into a
/// real `std::io::Error` by the [`Dio`] layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Whole-operation failure: nothing was written.
    Io,
    /// Partial write: a prefix of the buffer reached the file, then the
    /// operation failed.
    Torn,
}

/// Counts of faults actually delivered, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Errors returned (including injected I/O and torn-write errors).
    pub errors: u64,
    /// Panics raised.
    pub panics: u64,
    /// Latency injections applied.
    pub latencies: u64,
    /// Crash points hit.
    pub crashes: u64,
}

/// A seeded, deterministic fault plan.
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    /// Per-site invocation counters (the `n` in `(seed, site, n)`).
    invocations: [AtomicU64; ALL_SITES.len()],
    errors: AtomicU64,
    panics: AtomicU64,
    latencies: AtomicU64,
    crashes: AtomicU64,
}

impl FaultPlan {
    /// Empty plan (no rules fire) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            invocations: Default::default(),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            latencies: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
        }
    }

    /// Add a probabilistic rule (builder style).
    pub fn with_rule(mut self, site: Site, kind: FaultKind, rate: f64) -> Self {
        self.rules.push(FaultRule {
            site,
            kind,
            rate: rate.clamp(0.0, 1.0),
            nth: None,
        });
        self
    }

    /// Add a one-shot rule firing exactly on invocation `nth` (0-based)
    /// of `site` — the kill-point placement primitive for the crash
    /// matrix.
    pub fn with_rule_at(mut self, site: Site, kind: FaultKind, nth: u64) -> Self {
        self.rules.push(FaultRule {
            site,
            kind,
            rate: 0.0,
            nth: Some(nth),
        });
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Faults delivered so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            errors: self.errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            latencies: self.latencies.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
        }
    }

    /// Total site invocations observed (diagnostics).
    pub fn invocations(&self, site: Site) -> u64 {
        self.invocations[site.index()].load(Ordering::Relaxed)
    }

    /// Decide the fault (if any) for the next invocation of `site`.
    /// Consumes one invocation index; at most one rule fires per
    /// invocation. One-shot (`nth`) rules take precedence on their exact
    /// invocation; probabilistic rules at the same site stack their
    /// rates.
    fn decide(&self, site: Site) -> Option<FaultKind> {
        if self.rules.iter().all(|r| r.site != site) {
            return None;
        }
        let n = self.invocations[site.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(rule) = self
            .rules
            .iter()
            .find(|r| r.site == site && r.nth == Some(n))
        {
            return Some(rule.kind);
        }
        let h = splitmix64(
            self.seed
                .wrapping_add((site.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(n.wrapping_mul(0xbf58_476d_1ce4_e5b9)),
        );
        // Uniform in [0, 1).
        let mut x = (h >> 11) as f64 / (1u64 << 53) as f64;
        for rule in self
            .rules
            .iter()
            .filter(|r| r.site == site && r.nth.is_none())
        {
            if x < rule.rate {
                return Some(rule.kind);
            }
            x -= rule.rate;
        }
        None
    }

    /// Parse a plan spec, the `--fault-plan` argument format:
    ///
    /// ```text
    /// seed=42;exec-row:latency=2ms@0.01;maint-join:error@0.2;wal.fsync:crash#3
    /// ```
    ///
    /// Semicolon-separated items; `seed=N` sets the seed (default 0);
    /// every other item is `<site>:<kind>[=<duration>]` followed by
    /// either `@<rate>` (probabilistic) or `#<n>` (one-shot: fire
    /// exactly on the 0-based `n`th invocation of the site). Kinds:
    /// `error`, `panic`, `latency=<N>ms|us`, and the disk-layer
    /// `io`, `torn`, `crash`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for item in spec.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(v) = item.strip_prefix("seed=") {
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
                continue;
            }
            let (site_s, rest) = item
                .split_once(':')
                .ok_or_else(|| format!("bad rule '{item}' (want <site>:<kind>@<rate>)"))?;
            let site = Site::parse(site_s).ok_or_else(|| {
                format!(
                    "unknown site '{site_s}' (known: {})",
                    ALL_SITES.map(Site::as_str).join(", ")
                )
            })?;
            let (kind_s, trigger) = if let Some((k, n)) = rest.split_once('#') {
                (k, Trigger::Nth(n))
            } else if let Some((k, r)) = rest.split_once('@') {
                (k, Trigger::Rate(r))
            } else {
                return Err(format!("bad rule '{item}' (missing @<rate> or #<n>)"));
            };
            let kind = match kind_s {
                "error" => FaultKind::Error,
                "panic" => FaultKind::Panic,
                "io" => FaultKind::Io,
                "torn" => FaultKind::TornWrite,
                "crash" => FaultKind::CrashPoint,
                other => match other.strip_prefix("latency=") {
                    Some(d) => FaultKind::Latency(parse_duration(d)?),
                    None => return Err(format!("unknown fault kind '{kind_s}'")),
                },
            };
            let rule = match trigger {
                Trigger::Rate(rate_s) => {
                    let rate: f64 = rate_s.parse().map_err(|_| format!("bad rate '{rate_s}'"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("rate {rate} outside [0, 1]"));
                    }
                    FaultRule {
                        site,
                        kind,
                        rate,
                        nth: None,
                    }
                }
                Trigger::Nth(n_s) => {
                    let n: u64 = n_s
                        .parse()
                        .map_err(|_| format!("bad invocation index '{n_s}'"))?;
                    FaultRule {
                        site,
                        kind,
                        rate: 0.0,
                        nth: Some(n),
                    }
                }
            };
            rules.push(rule);
        }
        let mut plan = FaultPlan::new(seed);
        plan.rules = rules;
        Ok(plan)
    }
}

/// How a parsed rule triggers: probabilistically or on one exact
/// invocation.
enum Trigger<'a> {
    Rate(&'a str),
    Nth(&'a str),
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    if let Some(ms) = s.strip_suffix("ms") {
        let n: u64 = ms.parse().map_err(|_| format!("bad duration '{s}'"))?;
        Ok(Duration::from_millis(n))
    } else if let Some(us) = s.strip_suffix("us") {
        let n: u64 = us.parse().map_err(|_| format!("bad duration '{s}'"))?;
        Ok(Duration::from_micros(n))
    } else {
        Err(format!("bad duration '{s}' (want <N>ms or <N>us)"))
    }
}

/// SplitMix64 finalizer: a well-mixed pure function of its input.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fast-path flag: true while a plan is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

thread_local! {
    static SUPPRESSED: Cell<u32> = const { Cell::new(0) };
}

/// Uninstalls the plan when dropped, so a panicking test cannot leak
/// faults into the rest of the process.
pub struct InstallGuard(());

impl Drop for InstallGuard {
    fn drop(&mut self) {
        uninstall();
    }
}

/// Install `plan` process-wide, replacing any previous plan. Injection
/// stays active until the returned guard drops (or [`uninstall`] is
/// called).
pub fn install(plan: Arc<FaultPlan>) -> InstallGuard {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    ACTIVE.store(true, Ordering::SeqCst);
    InstallGuard(())
}

/// Remove the installed plan; [`fire`] becomes a no-op again.
pub fn uninstall() {
    ACTIVE.store(false, Ordering::SeqCst);
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether a plan is currently installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Run `f` with injection disabled on this thread — for test oracles that
/// must compute ground truth through the same (instrumented) code paths.
pub fn suppress<T>(f: impl FnOnce() -> T) -> T {
    SUPPRESSED.with(|s| s.set(s.get() + 1));
    // Balance the counter even if `f` unwinds.
    struct Unsuppress;
    impl Drop for Unsuppress {
        fn drop(&mut self) {
            SUPPRESSED.with(|s| s.set(s.get() - 1));
        }
    }
    let _guard = Unsuppress;
    f()
}

/// A fault actually delivered on the current thread, as observed by a
/// [`capture`] scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FiredFault {
    /// Site that fired.
    pub site: Site,
    /// What was delivered.
    pub kind: FaultKind,
}

impl FiredFault {
    /// Render the kind for trace/log output: `"error"`, `"panic"`, or
    /// `"latency:<N>us"`.
    pub fn kind_str(&self) -> String {
        match self.kind {
            FaultKind::Error => "error".to_string(),
            FaultKind::Panic => "panic".to_string(),
            FaultKind::Latency(d) => format!("latency:{}us", d.as_micros()),
            FaultKind::Io => "io".to_string(),
            FaultKind::TornWrite => "torn".to_string(),
            FaultKind::CrashPoint => "crash".to_string(),
        }
    }
}

thread_local! {
    static CAPTURE: RefCell<Option<Vec<FiredFault>>> = const { RefCell::new(None) };
}

/// Open a capture scope on the current thread: every fault delivered
/// until [`CaptureGuard::finish`] is recorded. Scopes nest — an inner
/// scope shadows the outer one, which resumes when the inner finishes
/// (or drops on an unwind).
pub fn capture() -> CaptureGuard {
    let prev = CAPTURE.with(|c| c.borrow_mut().replace(Vec::new()));
    CaptureGuard {
        prev,
        finished: false,
    }
}

/// Live capture scope; restores the previous scope (if any) when
/// finished or dropped.
pub struct CaptureGuard {
    prev: Option<Vec<FiredFault>>,
    finished: bool,
}

impl CaptureGuard {
    /// Close the scope and return the faults delivered on this thread
    /// since [`capture`], in delivery order.
    pub fn finish(mut self) -> Vec<FiredFault> {
        self.finished = true;
        let fired = CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default();
        CAPTURE.with(|c| *c.borrow_mut() = self.prev.take());
        fired
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        if !self.finished {
            CAPTURE.with(|c| *c.borrow_mut() = self.prev.take());
        }
    }
}

/// Record a delivered fault into the current thread's capture scope (if
/// one is open). Called *before* the fault acts so the record survives
/// injected panics contained further up the stack.
fn record_fired(site: Site, kind: FaultKind) {
    CAPTURE.with(|c| {
        if let Some(buf) = c.borrow_mut().as_mut() {
            buf.push(FiredFault { site, kind });
        }
    });
}

/// Evaluate the installed plan at `site`: may sleep (latency), panic, or
/// return an [`InjectedFault`] error. Free (one relaxed load) when no
/// plan is installed or the thread is [`suppress`]ed.
pub fn fire(site: Site) -> Result<(), InjectedFault> {
    match fire_disk(site) {
        Ok(()) => Ok(()),
        Err(_) => Err(InjectedFault { site }),
    }
}

/// [`fire`] for the disk layer: distinguishes whole-operation I/O
/// failures from torn (prefix-persisted) writes so `Dio` can model
/// both. `Error`/`Io` rules surface as [`DiskFault::Io`], `TornWrite`
/// as [`DiskFault::Torn`]; `CrashPoint` panics with [`CRASH_PREFIX`]
/// (the simulated kill), `Panic` with [`PANIC_PREFIX`]. Free (one
/// relaxed load) when no plan is installed or the thread is
/// [`suppress`]ed.
pub fn fire_disk(site: Site) -> Result<(), DiskFault> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    if SUPPRESSED.with(Cell::get) > 0 {
        return Ok(());
    }
    let plan = PLAN.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let Some(plan) = plan else { return Ok(()) };
    match plan.decide(site) {
        None => Ok(()),
        Some(kind @ FaultKind::Latency(d)) => {
            plan.latencies.fetch_add(1, Ordering::Relaxed);
            record_fired(site, kind);
            std::thread::sleep(d);
            Ok(())
        }
        Some(kind @ (FaultKind::Error | FaultKind::Io)) => {
            plan.errors.fetch_add(1, Ordering::Relaxed);
            record_fired(site, kind);
            Err(DiskFault::Io)
        }
        Some(kind @ FaultKind::TornWrite) => {
            plan.errors.fetch_add(1, Ordering::Relaxed);
            record_fired(site, kind);
            Err(DiskFault::Torn)
        }
        Some(kind @ FaultKind::Panic) => {
            plan.panics.fetch_add(1, Ordering::Relaxed);
            record_fired(site, kind);
            panic!("{PANIC_PREFIX} at {site}");
        }
        Some(kind @ FaultKind::CrashPoint) => {
            plan.crashes.fetch_add(1, Ordering::Relaxed);
            record_fired(site, kind);
            panic!("{CRASH_PREFIX} at {site}");
        }
    }
}

/// [`fire`] for sites without a `Result` to carry an error: latency and
/// panic rules apply; an error rule at a soft site is counted but has no
/// effect.
pub fn fire_soft(site: Site) {
    let _ = fire(site);
}

/// Whether a caught panic payload is one of ours (vs a genuine bug) —
/// covers both ordinary injected panics and simulated crashes.
pub fn is_injected_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    payload_has_prefix(payload, PANIC_PREFIX) || payload_has_prefix(payload, CRASH_PREFIX)
}

/// Whether a caught panic payload is a simulated process kill
/// ([`FaultKind::CrashPoint`]); a crash harness catches these at the
/// top, drops in-memory state, and reopens from disk.
pub fn is_crash_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    payload_has_prefix(payload, CRASH_PREFIX)
}

fn payload_has_prefix(payload: &(dyn std::any::Any + Send), prefix: &str) -> bool {
    payload
        .downcast_ref::<String>()
        .is_some_and(|s| s.starts_with(prefix))
        || payload
            .downcast_ref::<&str>()
            .is_some_and(|s| s.starts_with(prefix))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module share the global plan slot; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn inactive_plan_fires_nothing() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(fire(Site::ExecStart).is_ok());
        assert!(!active());
    }

    #[test]
    fn rates_are_deterministic_per_seed() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let counts = |seed: u64| {
            let plan =
                Arc::new(FaultPlan::new(seed).with_rule(Site::MaintJoin, FaultKind::Error, 0.3));
            let _g = install(Arc::clone(&plan));
            let mut fired = Vec::new();
            for i in 0..1000 {
                if fire(Site::MaintJoin).is_err() {
                    fired.push(i);
                }
            }
            fired
        };
        let a = counts(7);
        let b = counts(7);
        let c = counts(8);
        assert_eq!(a, b, "same seed must fire identically");
        assert_ne!(a, c, "different seeds must differ");
        // Rate roughly honored.
        assert!(a.len() > 200 && a.len() < 400, "got {}", a.len());
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = Arc::new(
            FaultPlan::new(1)
                .with_rule(Site::ExecStart, FaultKind::Error, 1.0)
                .with_rule(Site::ExecRow, FaultKind::Error, 0.0),
        );
        let _g = install(Arc::clone(&plan));
        for _ in 0..50 {
            assert!(fire(Site::ExecStart).is_err());
            assert!(fire(Site::ExecRow).is_ok());
        }
        assert_eq!(plan.counts().errors, 50);
    }

    #[test]
    fn suppress_disables_injection_on_this_thread() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = Arc::new(FaultPlan::new(1).with_rule(Site::ExecStart, FaultKind::Error, 1.0));
        let _g = install(plan);
        assert!(fire(Site::ExecStart).is_err());
        suppress(|| assert!(fire(Site::ExecStart).is_ok()));
        assert!(fire(Site::ExecStart).is_err());
    }

    #[test]
    fn injected_panic_is_recognizable() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = Arc::new(FaultPlan::new(1).with_rule(Site::ShardFill, FaultKind::Panic, 1.0));
        let _g = install(Arc::clone(&plan));
        let caught =
            std::panic::catch_unwind(|| fire_soft(Site::ShardFill)).expect_err("must panic");
        assert!(is_injected_panic(caught.as_ref()));
        assert_eq!(plan.counts().panics, 1);
    }

    #[test]
    fn guard_uninstalls_on_drop() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        {
            let _g = install(Arc::new(FaultPlan::new(1).with_rule(
                Site::ExecStart,
                FaultKind::Error,
                1.0,
            )));
            assert!(active());
        }
        assert!(!active());
        assert!(fire(Site::ExecStart).is_ok());
    }

    #[test]
    fn latency_rule_sleeps() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = Arc::new(FaultPlan::new(1).with_rule(
            Site::StorageRead,
            FaultKind::Latency(Duration::from_millis(5)),
            1.0,
        ));
        let _g = install(Arc::clone(&plan));
        let t0 = std::time::Instant::now();
        fire_soft(Site::StorageRead);
        assert!(t0.elapsed() >= Duration::from_millis(4));
        assert_eq!(plan.counts().latencies, 1);
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan = FaultPlan::parse(
            "seed=42; exec-row:latency=2ms@0.01; maint-join:error@0.2; exec-start:panic@0.1",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rules().len(), 3);
        assert_eq!(plan.rules()[0].site, Site::ExecRow);
        assert_eq!(
            plan.rules()[0].kind,
            FaultKind::Latency(Duration::from_millis(2))
        );
        assert_eq!(plan.rules()[1].kind, FaultKind::Error);
        assert!((plan.rules()[2].rate - 0.1).abs() < 1e-12);
        assert!(FaultPlan::parse("nosite:error@0.5").is_err());
        assert!(FaultPlan::parse("exec-row:error@1.5").is_err());
        assert!(FaultPlan::parse("exec-row:latency=2s@0.5").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
    }

    #[test]
    fn capture_records_delivered_faults_including_contained_panics() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = Arc::new(
            FaultPlan::new(1)
                .with_rule(
                    Site::ExecRow,
                    FaultKind::Latency(Duration::from_micros(50)),
                    1.0,
                )
                .with_rule(Site::MaintJoin, FaultKind::Error, 1.0)
                .with_rule(Site::ShardFill, FaultKind::Panic, 1.0),
        );
        let _g = install(plan);

        let cap = capture();
        fire_soft(Site::ExecRow); // latency: recorded before the sleep
        assert!(fire(Site::MaintJoin).is_err());
        // Panic contained on the same thread still leaves its record.
        let caught = std::panic::catch_unwind(|| fire_soft(Site::ShardFill));
        assert!(caught.is_err());
        fire_soft(Site::IndexProbe); // no rule: not recorded
        let fired = cap.finish();

        assert_eq!(fired.len(), 3);
        assert_eq!(fired[0].site, Site::ExecRow);
        assert_eq!(fired[0].kind_str(), "latency:50us");
        assert_eq!(fired[1].kind, FaultKind::Error);
        assert_eq!(fired[2].site, Site::ShardFill);
        assert_eq!(fired[2].kind_str(), "panic");
    }

    #[test]
    fn capture_scopes_nest_and_restore() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = Arc::new(FaultPlan::new(1).with_rule(Site::ExecStart, FaultKind::Error, 1.0));
        let _g = install(plan);

        let outer = capture();
        let _ = fire(Site::ExecStart);
        {
            let inner = capture();
            let _ = fire(Site::ExecStart);
            assert_eq!(inner.finish().len(), 1, "inner sees only its own");
        }
        let _ = fire(Site::ExecStart);
        assert_eq!(
            outer.finish().len(),
            2,
            "outer resumes after inner, missing inner's faults"
        );

        // No scope open: delivery is not recorded anywhere (and finish on
        // a fresh scope returns empty).
        let _ = fire(Site::ExecStart);
        assert!(capture().finish().is_empty());
    }

    #[test]
    fn stacked_rules_share_the_draw() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // error@0.5 + latency@0.5 → every invocation fires exactly one.
        let plan = Arc::new(
            FaultPlan::new(3)
                .with_rule(Site::MaintJoin, FaultKind::Error, 0.5)
                .with_rule(Site::MaintJoin, FaultKind::Latency(Duration::ZERO), 0.5),
        );
        let _g = install(Arc::clone(&plan));
        for _ in 0..200 {
            let _ = fire(Site::MaintJoin);
        }
        let c = plan.counts();
        assert_eq!(c.errors + c.latencies, 200);
        assert!(c.errors > 50 && c.latencies > 50);
    }

    #[test]
    fn one_shot_rule_fires_exactly_once_at_nth() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = Arc::new(FaultPlan::new(0).with_rule_at(Site::WalFsync, FaultKind::Io, 3));
        let _g = install(Arc::clone(&plan));
        let fired: Vec<usize> = (0..10)
            .filter(|_| fire_disk(Site::WalFsync).is_err())
            .collect();
        assert_eq!(plan.counts().errors, 1);
        assert_eq!(fired.len(), 1);
        // Invocations 0..=2 pass, 3 fails, 4.. pass again.
        assert_eq!(plan.invocations(Site::WalFsync), 10);
    }

    #[test]
    fn disk_kinds_distinguish_io_from_torn() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = Arc::new(
            FaultPlan::new(0)
                .with_rule_at(Site::WalAppend, FaultKind::TornWrite, 0)
                .with_rule_at(Site::CkptWrite, FaultKind::Io, 0),
        );
        let _g = install(plan);
        assert_eq!(fire_disk(Site::WalAppend), Err(DiskFault::Torn));
        assert_eq!(fire_disk(Site::CkptWrite), Err(DiskFault::Io));
        assert_eq!(fire_disk(Site::WalAppend), Ok(()));
    }

    #[test]
    fn crash_point_panics_with_crash_prefix() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan =
            Arc::new(FaultPlan::new(0).with_rule_at(Site::CkptRename, FaultKind::CrashPoint, 0));
        let _g = install(Arc::clone(&plan));
        let caught = std::panic::catch_unwind(|| {
            let _ = fire_disk(Site::CkptRename);
        })
        .expect_err("crash point must unwind");
        assert!(is_crash_panic(caught.as_ref()));
        assert!(is_injected_panic(caught.as_ref()), "crash is also injected");
        assert_eq!(plan.counts().crashes, 1);
        // An ordinary injected panic is not a crash.
        let plan2 = Arc::new(FaultPlan::new(0).with_rule(Site::ShardFill, FaultKind::Panic, 1.0));
        let _g2 = install(plan2);
        let caught =
            std::panic::catch_unwind(|| fire_soft(Site::ShardFill)).expect_err("must panic");
        assert!(!is_crash_panic(caught.as_ref()));
    }

    #[test]
    fn parse_supports_disk_sites_and_one_shot_triggers() {
        let plan = FaultPlan::parse(
            "seed=9; wal.append:torn#2; wal.fsync:crash#0; ckpt.write:io@0.5; ckpt.rename:crash#1",
        )
        .unwrap();
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.rules().len(), 4);
        assert_eq!(plan.rules()[0].site, Site::WalAppend);
        assert_eq!(plan.rules()[0].kind, FaultKind::TornWrite);
        assert_eq!(plan.rules()[0].nth, Some(2));
        assert_eq!(plan.rules()[1].site, Site::WalFsync);
        assert_eq!(plan.rules()[1].kind, FaultKind::CrashPoint);
        assert_eq!(plan.rules()[2].kind, FaultKind::Io);
        assert_eq!(plan.rules()[2].nth, None);
        assert!(FaultPlan::parse("wal.fsync:crash#x").is_err());
        assert!(FaultPlan::parse("wal.fsync:crash").is_err());
        let up = FaultPlan::parse("upquery:error@0.5").unwrap();
        assert_eq!(up.rules()[0].site, Site::Upquery);
    }
}
