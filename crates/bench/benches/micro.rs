//! Criterion microbenchmarks for the hot paths of the PMV method and
//! its substrates, including the DESIGN.md ablations:
//!
//! * bcp-index shape: hash probe vs B+-tree probe (the PMV's index I is
//!   exact-match, so hash should win).
//! * Operation O1 decomposition cost vs h.
//! * Operation O2 probe cost (the "within a millisecond" claim: a probe
//!   must be microseconds).
//! * DS insert/remove cost (per-result-tuple O3 bookkeeping).
//! * Replacement-policy touch/admit cost (CLOCK vs 2Q vs LRU vs LRU-2).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pmv_cache::{PolicyKind, ReplacementPolicy};
use pmv_core::{
    decompose, BcpDim, BcpKey, Discretizer, Ds, PartialViewDef, Pmv, PmvConfig, PmvPipeline,
};
use pmv_index::{BTreeIndex, HashIndex, IndexKey, SecondaryIndex};
use pmv_query::{Condition, Database, TemplateBuilder};
use pmv_storage::{tuple, Column, ColumnType, RowId, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_index_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_probe");
    let n = 100_000;
    let mut hash = HashIndex::new();
    let mut btree = BTreeIndex::new();
    for i in 0..n {
        hash.insert(IndexKey::single(Value::Int(i)), RowId(i as u32));
        btree.insert(IndexKey::single(Value::Int(i)), RowId(i as u32));
    }
    let mut rng = StdRng::seed_from_u64(1);
    let keys: Vec<IndexKey> = (0..1024)
        .map(|_| IndexKey::single(Value::Int(rng.gen_range(0..n))))
        .collect();
    let mut i = 0;
    group.bench_function("hash_get", |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            black_box(hash.get(&keys[i]))
        })
    });
    group.bench_function("btree_get", |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            black_box(btree.get(&keys[i]))
        })
    });
    group.finish();
}

fn bench_btree_insert(c: &mut Criterion) {
    c.bench_function("btree_insert_100k", |b| {
        b.iter(|| {
            let mut t = BTreeIndex::new();
            for i in 0..100_000i64 {
                t.insert(IndexKey::single(Value::Int(i)), RowId(i as u32));
            }
            black_box(t.key_count())
        })
    });
}

/// One-relation PMV fixture over equality + interval conditions.
fn fixture() -> (Database, Pmv, PmvPipeline) {
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
            Column::new("g", ColumnType::Int),
        ],
    ))
    .unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    db.load(
        "r",
        (0..50_000).map(|i| {
            tuple![
                i as i64,
                rng.gen_range(0..1000i64),
                rng.gen_range(0..10_000i64)
            ]
        }),
    )
    .unwrap();
    db.create_index(pmv_index::IndexDef::btree("r", vec![1]))
        .unwrap();
    db.create_index(pmv_index::IndexDef::btree("r", vec![2]))
        .unwrap();
    let t = TemplateBuilder::new("bench")
        .relation(db.schema("r").unwrap())
        .select("r", "a")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .cond_interval("r", "g")
        .unwrap()
        .build()
        .unwrap();
    let def = PartialViewDef::new(
        "bench_pmv",
        t,
        vec![None, Some(Discretizer::int_grid(0, 100, 100))],
    )
    .unwrap();
    let pmv = Pmv::new(def, PmvConfig::new(3, 20_000, PolicyKind::Clock));
    (db, pmv, PmvPipeline::new())
}

fn bench_o1_decompose(c: &mut Criterion) {
    let (_db, pmv, _) = fixture();
    let mut group = c.benchmark_group("o1_decompose");
    for h in [1usize, 4, 16] {
        let q = pmv
            .def()
            .template()
            .bind(vec![
                Condition::Equality((0..h as i64).map(Value::Int).collect()),
                Condition::Intervals(vec![pmv_query::Interval::half_open(0i64, 100i64)]),
            ])
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(h), &q, |b, q| {
            b.iter(|| black_box(decompose(pmv.def(), q).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_pipeline_hit(c: &mut Criterion) {
    let (db, mut pmv, pipe) = fixture();
    let q = pmv
        .def()
        .template()
        .bind(vec![
            Condition::Equality(vec![Value::Int(1)]),
            Condition::Intervals(vec![pmv_query::Interval::half_open(0i64, 100i64)]),
        ])
        .unwrap();
    // Warm.
    pipe.run(&db, &mut pmv, &q).unwrap();
    c.bench_function("pipeline_warm_query", |b| {
        b.iter(|| black_box(pipe.run(&db, &mut pmv, &q).unwrap().partial.len()))
    });
}

fn bench_ds(c: &mut Criterion) {
    let tuples: Vec<Tuple> = (0..1000i64).map(|i| tuple![i, i * 3, i * 7]).collect();
    c.bench_function("ds_insert_remove_1k", |b| {
        b.iter(|| {
            let mut ds = Ds::new();
            for t in &tuples {
                ds.insert(t.clone());
            }
            for t in &tuples {
                ds.remove_one(t);
            }
            black_box(ds.is_empty())
        })
    });
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_admit_touch");
    for kind in [
        PolicyKind::Clock,
        PolicyKind::TwoQ,
        PolicyKind::TwoQFull,
        PolicyKind::Lru,
        PolicyKind::LruK,
    ] {
        group.bench_function(kind.name(), |b| {
            let mut policy: Box<dyn ReplacementPolicy<u64>> = kind.build(4_096);
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let k = rng.gen_range(0..100_000u64);
                policy.touch(&k);
                black_box(policy.admit(k).is_resident())
            })
        });
    }
    group.finish();
}

fn bench_bcp_recovery(c: &mut Criterion) {
    let (_db, pmv, _) = fixture();
    let t = tuple![5i64, 42i64, 777i64];
    c.bench_function("bcp_of_tuple", |b| {
        b.iter(|| black_box(pmv.def().bcp_of_tuple(&t)))
    });
    let key = BcpKey::new(vec![BcpDim::Eq(Value::Int(42)), BcpDim::Iv(7)]);
    c.bench_function("bcp_key_clone_hash", |b| {
        b.iter(|| {
            let k = key.clone();
            black_box(k.arity())
        })
    });
}

criterion_group!(
    benches,
    bench_index_probe,
    bench_btree_insert,
    bench_o1_decompose,
    bench_pipeline_hit,
    bench_ds,
    bench_policies,
    bench_bcp_recovery
);
criterion_main!(benches);
