//! Multiply-fold hasher for the serving path's hot hash maps.
//!
//! The profiled `o3_dedup` hot spot was dominated not by the dedup
//! algorithm but by SipHash-1-3: every O3 result tuple was hashed twice
//! (DS probe + per-bcp counter map), and `Value`-heavy keys made each
//! hash a long byte-wise SipHash round. This hasher is the familiar
//! Fx/rustc scheme — fold every machine word into the state with a
//! rotate + xor + odd-constant multiply — which is several times faster
//! on short keys and has more than adequate distribution for in-process
//! tables. It is **not** DoS-resistant; use it only for maps whose keys
//! come from inside the engine (tuples, bcp keys, projection keys),
//! never for attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit odd multiplier (golden-ratio derived, same constant family as
/// rustc-hash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The state-folding hasher. One `u64` of state; each word of input
/// costs a rotate, xor, and multiply.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low-entropy states still spread across
        // HashMap's bucket-index bits.
        let h = self.hash;
        h ^ (h >> 32)
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed by the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal_and_nearby_differ() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        // Length must matter even when the padded prefix matches.
        assert_ne!(hash_of(&[1u8, 0, 0][..]), hash_of(&[1u8, 0][..]));
    }

    #[test]
    fn distribution_is_usable_for_bucketing() {
        // 10k sequential keys into 64 buckets — no bucket should hold
        // more than 4x its fair share under any reasonable mixing.
        let mut buckets = [0u32; 64];
        for i in 0..10_000u64 {
            buckets[(hash_of(&i) % 64) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 4 * (10_000 / 64), "skewed buckets: max={max}");
    }

    #[test]
    fn map_and_set_aliases_behave() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("k".into(), 7);
        assert_eq!(m.get("k"), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
