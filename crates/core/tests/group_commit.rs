//! Property test: N concurrent committers through the flat-combining
//! group-commit path (DESIGN.md §15) are observationally equivalent to
//! the same commits applied serially. Threads race [`EpochDb::commit`]
//! with commuting mutations (inserts of distinct rows, deletes of
//! disjoint pre-seeded rows) while also issuing pinned queries; whatever
//! interleaving and coalescing the combiner picks, the final relation
//! must equal the serial oracle's, every post-storm pinned query must
//! match the plain executor, and no view shard may hold a stale tuple.
//! The coalescing counters are checked too: every request is counted
//! once, and combine passes never exceed requests.

use pmv_cache::PolicyKind;
use pmv_core::{EpochDb, PartialViewDef, PmvConfig, SharedPmv};
use pmv_index::IndexDef;
use pmv_query::{execute, Condition, Database, TemplateBuilder, Transaction};
use pmv_storage::{tuple, Column, ColumnType, Schema, Value};
use proptest::prelude::*;

/// 40 seeded rows `(i, i % 8)`; thread `t` owns rows `[t*10, t*10+10)`
/// for deletion so concurrent deletes never collide.
fn seed_db() -> Database {
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    for i in 0..40i64 {
        db.insert("r", tuple![i, i % 8]).unwrap();
    }
    db.create_index(IndexDef::btree("r", vec![1])).unwrap();
    db
}

fn make_view(db: &Database, name: &str) -> SharedPmv {
    let t = TemplateBuilder::new("t")
        .relation(db.schema("r").unwrap())
        .select("r", "a")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .build()
        .unwrap();
    let def = PartialViewDef::all_equality(name, t).unwrap();
    SharedPmv::with_shards(def, PmvConfig::new(3, 8, PolicyKind::Clock), 4)
}

/// Sorted debug renderings of every tuple in `r` — a multiset fingerprint
/// that is independent of row-id assignment order.
fn relation_fingerprint(db: &Database) -> Vec<String> {
    let handle = db.relation("r").unwrap();
    let rel = handle.read();
    let mut rows: Vec<String> = rel.iter().map(|(_, tu)| format!("{tu:?}")).collect();
    rows.sort();
    rows
}

/// Per-thread op lists: `(kind, f)` where kind 0 inserts a fresh unique
/// row with selector `f` and kind 1 deletes one of the thread's own
/// seeded rows. 2–4 threads, 1–9 ops each (so delete targets `t*10 + k`
/// stay inside the thread's disjoint block of 10 seeded rows).
fn plans() -> impl Strategy<Value = Vec<Vec<(u8, i64)>>> {
    proptest::collection::vec(proptest::collection::vec((0u8..2, 0i64..8), 1..10), 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_commits_equal_serialized(plans in plans()) {
        let db = seed_db();
        // Seeded row ids in insertion order; thread t deletes only from
        // its own block so every delete target is distinct.
        let seeded_rows: Vec<_> = {
            let handle = db.relation("r").unwrap();
            let rel = handle.read();
            let mut rows: Vec<_> = rel.iter().map(|(row, _)| row).collect();
            rows.sort();
            rows
        };
        let view = make_view(&db, "gc");
        let edb = EpochDb::new(db);
        let t = view.def().template().clone();

        // Warm the cache so commits exercise coalesced maintenance over
        // populated shards, not just cold fills.
        for f in 0..8i64 {
            let q = t.bind(vec![Condition::Equality(vec![Value::Int(f)])]).unwrap();
            edb.query(&view, &q).unwrap();
        }

        let total_ops: u64 = plans.iter().map(|p| p.len() as u64).sum();
        std::thread::scope(|s| {
            for (tid, ops) in plans.iter().enumerate() {
                let edb = &edb;
                let view = &view;
                let t = &t;
                let seeded_rows = &seeded_rows;
                s.spawn(move || {
                    for (k, &(kind, f)) in ops.iter().enumerate() {
                        if kind == 0 {
                            let a = 1000 + (tid as i64) * 100 + k as i64;
                            let got = edb
                                .commit(&[view], move |db| {
                                    let mut txn = Transaction::begin(db);
                                    txn.insert("r", tuple![a, f]).unwrap();
                                    Ok((a, txn.commit()))
                                })
                                .unwrap();
                            assert_eq!(got, a, "combiner filled the wrong slot");
                        } else {
                            let row = seeded_rows[tid * 10 + k];
                            edb.commit(&[view], move |db| {
                                let mut txn = Transaction::begin(db);
                                txn.delete("r", row).unwrap();
                                Ok(((), txn.commit()))
                            })
                            .unwrap();
                        }
                        // Reads race the commit storm; staleness is
                        // checked after the storm, liveness here.
                        let q = t.bind(vec![Condition::Equality(vec![Value::Int(f)])]).unwrap();
                        let out = edb.query(view, &q).unwrap();
                        assert_eq!(out.ds_leftover, 0, "stale partial served mid-storm");
                    }
                });
            }
        });

        // Serial oracle: same ops applied one transaction at a time in
        // thread order. All ops commute (distinct inserts, disjoint
        // deletes), so any interleaving must land on this state.
        let mut oracle = seed_db();
        let oracle_rows: Vec<_> = {
            let handle = oracle.relation("r").unwrap();
            let rel = handle.read();
            let mut rows: Vec<_> = rel.iter().map(|(row, _)| row).collect();
            rows.sort();
            rows
        };
        for (tid, ops) in plans.iter().enumerate() {
            for (k, &(kind, f)) in ops.iter().enumerate() {
                let mut txn = Transaction::begin(&mut oracle);
                if kind == 0 {
                    txn.insert("r", tuple![1000 + (tid as i64) * 100 + k as i64, f]).unwrap();
                } else {
                    txn.delete("r", oracle_rows[tid * 10 + k]).unwrap();
                }
                txn.commit();
            }
        }

        {
            let guard = edb.read();
            prop_assert_eq!(
                relation_fingerprint(&guard),
                relation_fingerprint(&oracle),
                "group-committed state diverged from the serial oracle"
            );
        }

        // Post-storm: every pinned query agrees with the plain executor
        // on the final database.
        for f in 0..8i64 {
            let q = t.bind(vec![Condition::Equality(vec![Value::Int(f)])]).unwrap();
            let pinned = edb.query(&view, &q).unwrap();
            prop_assert_eq!(pinned.ds_leftover, 0);
            let guard = edb.read();
            let (oracle_out, _) = execute(&*guard, &q).unwrap();
            drop(guard);
            let mut a = pinned.all_results();
            let mut b: Vec<_> = oracle_out.iter().map(|e| t.user_tuple(e)).collect();
            a.sort();
            b.sort();
            prop_assert_eq!(&a, &b, "pinned query diverged from oracle on f={}", f);
        }

        // Coalescing counters: each request counted once; combine passes
        // bounded by requests (equality means no coalescing happened,
        // which is legal — e.g. on a single-core host).
        let (commits, combines) = edb.commit_counts();
        prop_assert_eq!(commits, total_ops);
        prop_assert!(
            combines >= 1 && combines <= commits,
            "combine passes {} outside [1, {}]",
            combines,
            commits
        );

        // No view shard may hold a stale tuple after the storm.
        let guard = edb.read();
        prop_assert_eq!(view.revalidate(&guard).unwrap(), 0);
        view.debug_validate();
    }
}
