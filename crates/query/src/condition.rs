//! The two disjunctive selection-condition forms of Section 2.1.
//!
//! An equality-form condition is `∨_{r=1..u} (R.a = v_r)`; an interval-form
//! condition is `∨_{r=1..u} (v_r < R.a < w_r)` with pairwise-disjoint
//! intervals that may be open/closed and bounded/unbounded on either side.

use std::cmp::Ordering;
use std::fmt;
use std::ops::Bound;

use pmv_storage::Value;

/// One interval over a totally ordered attribute domain.
///
/// Bounds may be open ([`Bound::Excluded`]), closed ([`Bound::Included`]),
/// or unbounded — "the intervals can be either bounded or unbounded, open
/// or closed" (Section 2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound.
    pub lo: Bound<Value>,
    /// Upper bound.
    pub hi: Bound<Value>,
}

impl Interval {
    /// Open interval `(lo, hi)`.
    pub fn open(lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Interval {
            lo: Bound::Excluded(lo.into()),
            hi: Bound::Excluded(hi.into()),
        }
    }

    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Interval {
            lo: Bound::Included(lo.into()),
            hi: Bound::Included(hi.into()),
        }
    }

    /// Half-open interval `[lo, hi)`.
    pub fn half_open(lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Interval {
            lo: Bound::Included(lo.into()),
            hi: Bound::Excluded(hi.into()),
        }
    }

    /// Interval unbounded below: `(-∞, hi)` (open at `hi` unless `closed`).
    pub fn below(hi: impl Into<Value>, closed: bool) -> Self {
        Interval {
            lo: Bound::Unbounded,
            hi: if closed {
                Bound::Included(hi.into())
            } else {
                Bound::Excluded(hi.into())
            },
        }
    }

    /// Interval unbounded above: `(lo, +∞)` (open at `lo` unless `closed`).
    pub fn above(lo: impl Into<Value>, closed: bool) -> Self {
        Interval {
            lo: if closed {
                Bound::Included(lo.into())
            } else {
                Bound::Excluded(lo.into())
            },
            hi: Bound::Unbounded,
        }
    }

    /// The whole domain `(-∞, +∞)` — the paper's `E_i`.
    pub fn everything() -> Self {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// Whether `v` lies inside this interval.
    pub fn contains(&self, v: &Value) -> bool {
        let above_lo = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(b) => v >= b,
            Bound::Excluded(b) => v > b,
        };
        let below_hi = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(b) => v <= b,
            Bound::Excluded(b) => v < b,
        };
        above_lo && below_hi
    }

    /// Whether the interval is certainly empty (only decidable when both
    /// bounds are present).
    pub fn is_empty(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Bound::Included(a), Bound::Included(b)) => a > b,
            (Bound::Included(a), Bound::Excluded(b))
            | (Bound::Excluded(a), Bound::Included(b))
            | (Bound::Excluded(a), Bound::Excluded(b)) => a >= b,
            _ => false,
        }
    }

    /// Whether two intervals overlap (share at least one point). Assumes
    /// neither is empty.
    pub fn overlaps(&self, other: &Interval) -> bool {
        // a.lo <= b.hi and b.lo <= a.hi, with open/closed care: intervals
        // are disjoint iff one ends before the other begins.
        !Self::ends_before(&self.hi, &other.lo) && !Self::ends_before(&other.hi, &self.lo)
    }

    /// True if an interval ending at `hi` is entirely before one starting
    /// at `lo`.
    fn ends_before(hi: &Bound<Value>, lo: &Bound<Value>) -> bool {
        match (hi, lo) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => false,
            (Bound::Included(h), Bound::Included(l)) => h < l,
            (Bound::Included(h), Bound::Excluded(l)) => h <= l,
            (Bound::Excluded(h), Bound::Included(l)) => h <= l,
            (Bound::Excluded(h), Bound::Excluded(l)) => h <= l,
        }
    }

    /// Intersection of two intervals, or `None` if they do not overlap.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        if !self.overlaps(other) {
            return None;
        }
        let lo = Self::max_lo(&self.lo, &other.lo);
        let hi = Self::min_hi(&self.hi, &other.hi);
        let out = Interval { lo, hi };
        (!out.is_empty()).then_some(out)
    }

    /// The tighter (greater) of two lower bounds.
    fn max_lo(a: &Bound<Value>, b: &Bound<Value>) -> Bound<Value> {
        match Self::cmp_lo(a, b) {
            Ordering::Less => b.clone(),
            _ => a.clone(),
        }
    }

    /// The tighter (smaller) of two upper bounds.
    fn min_hi(a: &Bound<Value>, b: &Bound<Value>) -> Bound<Value> {
        match Self::cmp_hi(a, b) {
            Ordering::Greater => b.clone(),
            _ => a.clone(),
        }
    }

    /// Order lower bounds by tightness (Unbounded loosest; at equal value
    /// Included is looser than Excluded).
    fn cmp_lo(a: &Bound<Value>, b: &Bound<Value>) -> Ordering {
        match (a, b) {
            (Bound::Unbounded, Bound::Unbounded) => Ordering::Equal,
            (Bound::Unbounded, _) => Ordering::Less,
            (_, Bound::Unbounded) => Ordering::Greater,
            (Bound::Included(x), Bound::Included(y)) | (Bound::Excluded(x), Bound::Excluded(y)) => {
                x.cmp(y)
            }
            (Bound::Included(x), Bound::Excluded(y)) => x.cmp(y).then(Ordering::Less),
            (Bound::Excluded(x), Bound::Included(y)) => x.cmp(y).then(Ordering::Greater),
        }
    }

    /// Order upper bounds by position (Unbounded greatest; at equal value
    /// Excluded is smaller than Included).
    fn cmp_hi(a: &Bound<Value>, b: &Bound<Value>) -> Ordering {
        match (a, b) {
            (Bound::Unbounded, Bound::Unbounded) => Ordering::Equal,
            (Bound::Unbounded, _) => Ordering::Greater,
            (_, Bound::Unbounded) => Ordering::Less,
            (Bound::Included(x), Bound::Included(y)) | (Bound::Excluded(x), Bound::Excluded(y)) => {
                x.cmp(y)
            }
            (Bound::Excluded(x), Bound::Included(y)) => x.cmp(y).then(Ordering::Less),
            (Bound::Included(x), Bound::Excluded(y)) => x.cmp(y).then(Ordering::Greater),
        }
    }

    /// Bounds as references, for index range scans.
    pub fn as_bounds(&self) -> (Bound<&Value>, Bound<&Value>) {
        (bound_as_ref(&self.lo), bound_as_ref(&self.hi))
    }
}

fn bound_as_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Bound::Unbounded => write!(f, "(-inf")?,
            Bound::Included(v) => write!(f, "[{v}")?,
            Bound::Excluded(v) => write!(f, "({v}")?,
        }
        write!(f, ", ")?;
        match &self.hi {
            Bound::Unbounded => write!(f, "+inf)"),
            Bound::Included(v) => write!(f, "{v}]"),
            Bound::Excluded(v) => write!(f, "{v})"),
        }
    }
}

/// A bound selection condition `Ci`: one of the two disjunctive forms,
/// over a single attribute.
#[derive(Clone, Debug, PartialEq)]
pub enum Condition {
    /// Equality form: attribute ∈ `values`.
    Equality(Vec<Value>),
    /// Interval form: attribute in one of the (disjoint) `intervals`.
    Intervals(Vec<Interval>),
}

impl Condition {
    /// Whether `v` satisfies the condition.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Condition::Equality(vals) => vals.contains(v),
            Condition::Intervals(ivs) => ivs.iter().any(|i| i.contains(v)),
        }
    }

    /// Number of disjuncts (`u_i` in the paper).
    pub fn disjunct_count(&self) -> usize {
        match self {
            Condition::Equality(vals) => vals.len(),
            Condition::Intervals(ivs) => ivs.len(),
        }
    }

    /// Validate the form: equality values must be distinct; intervals must
    /// be non-empty and pairwise disjoint (Section 2.1 requires it).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Condition::Equality(vals) => {
                if vals.is_empty() {
                    return Err("equality condition with no values".into());
                }
                for (i, v) in vals.iter().enumerate() {
                    if vals[..i].contains(v) {
                        return Err(format!("duplicate equality value {v}"));
                    }
                }
                Ok(())
            }
            Condition::Intervals(ivs) => {
                if ivs.is_empty() {
                    return Err("interval condition with no intervals".into());
                }
                for (i, iv) in ivs.iter().enumerate() {
                    if iv.is_empty() {
                        return Err(format!("empty interval {iv}"));
                    }
                    for other in &ivs[..i] {
                        if iv.overlaps(other) {
                            return Err(format!("intervals {other} and {iv} overlap"));
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: i64) -> Value {
        Value::Int(x)
    }

    #[test]
    fn contains_respects_open_closed() {
        let open = Interval::open(1i64, 5i64);
        assert!(!open.contains(&v(1)));
        assert!(open.contains(&v(3)));
        assert!(!open.contains(&v(5)));

        let closed = Interval::closed(1i64, 5i64);
        assert!(closed.contains(&v(1)));
        assert!(closed.contains(&v(5)));

        let half = Interval::half_open(1i64, 5i64);
        assert!(half.contains(&v(1)));
        assert!(!half.contains(&v(5)));
    }

    #[test]
    fn unbounded_sides() {
        let below = Interval::below(10i64, false);
        assert!(below.contains(&v(i64::MIN)));
        assert!(!below.contains(&v(10)));
        let above = Interval::above(10i64, true);
        assert!(above.contains(&v(10)));
        assert!(above.contains(&v(i64::MAX)));
        assert!(Interval::everything().contains(&v(0)));
    }

    #[test]
    fn emptiness() {
        assert!(Interval::open(3i64, 3i64).is_empty());
        assert!(!Interval::closed(3i64, 3i64).is_empty());
        assert!(Interval::closed(5i64, 3i64).is_empty());
        assert!(!Interval::everything().is_empty());
    }

    #[test]
    fn overlap_cases() {
        let a = Interval::closed(1i64, 5i64);
        let b = Interval::closed(5i64, 9i64);
        assert!(a.overlaps(&b)); // share point 5
        let c = Interval::open(5i64, 9i64);
        assert!(!a.overlaps(&c)); // c starts strictly after 5
        let d = Interval::half_open(1i64, 5i64);
        let e = Interval::half_open(5i64, 9i64);
        assert!(!d.overlaps(&e)); // [1,5) and [5,9) are disjoint
        assert!(Interval::everything().overlaps(&a));
    }

    #[test]
    fn intersection() {
        let a = Interval::closed(1i64, 10i64);
        let b = Interval::open(5i64, 20i64);
        let i = a.intersect(&b).unwrap();
        assert!(!i.contains(&v(5)));
        assert!(i.contains(&v(6)));
        assert!(i.contains(&v(10)));
        assert!(!i.contains(&v(11)));

        let c = Interval::closed(30i64, 40i64);
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn intersect_with_unbounded() {
        let a = Interval::everything();
        let b = Interval::half_open(2i64, 7i64);
        assert_eq!(a.intersect(&b), Some(b.clone()));
        assert_eq!(b.intersect(&a), Some(b));
    }

    #[test]
    fn condition_matches() {
        let eq = Condition::Equality(vec![v(1), v(3)]);
        assert!(eq.matches(&v(3)));
        assert!(!eq.matches(&v(2)));
        assert_eq!(eq.disjunct_count(), 2);

        let iv = Condition::Intervals(vec![
            Interval::open(0i64, 10i64),
            Interval::open(20i64, 30i64),
        ]);
        assert!(iv.matches(&v(5)));
        assert!(!iv.matches(&v(15)));
        assert!(iv.matches(&v(25)));
    }

    #[test]
    fn validation_catches_bad_forms() {
        assert!(Condition::Equality(vec![]).validate().is_err());
        assert!(Condition::Equality(vec![v(1), v(1)]).validate().is_err());
        assert!(Condition::Equality(vec![v(1), v(2)]).validate().is_ok());

        let overlapping = Condition::Intervals(vec![
            Interval::closed(1i64, 5i64),
            Interval::closed(4i64, 9i64),
        ]);
        assert!(overlapping.validate().is_err());

        let disjoint = Condition::Intervals(vec![
            Interval::half_open(1i64, 5i64),
            Interval::half_open(5i64, 9i64),
        ]);
        assert!(disjoint.validate().is_ok());

        let empty = Condition::Intervals(vec![Interval::open(3i64, 3i64)]);
        assert!(empty.validate().is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Interval::open(1i64, 2i64).to_string(), "(1, 2)");
        assert_eq!(Interval::closed(1i64, 2i64).to_string(), "[1, 2]");
        assert_eq!(Interval::everything().to_string(), "(-inf, +inf)");
    }
}
