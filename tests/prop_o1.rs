//! Property tests for Operation O1 (Section 3.3): for arbitrary valid
//! queries, the generated condition parts must
//!   1. be pairwise disjoint,
//!   2. cover exactly the query's `Cselect`,
//!   3. each be contained in its containing bcp,
//!   4. have `is_basic` set iff the part equals its bcp.

use pmv::core::{decompose, Discretizer, PartDim, PartialViewDef};
use pmv::prelude::*;
use pmv::query::Interval;
use proptest::prelude::*;
use std::sync::Arc;

fn template() -> Arc<pmv::query::QueryTemplate> {
    TemplateBuilder::new("p")
        .relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
                Column::new("g", ColumnType::Int),
            ],
        ))
        .select("r", "a")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .cond_interval("r", "g")
        .unwrap()
        .build()
        .unwrap()
}

/// Random sorted dividers in a small domain.
fn dividers() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::btree_set(-30i64..30, 1..6).prop_map(|s| s.into_iter().collect())
}

/// Random disjoint half-open intervals: derived from a sorted set of cut
/// points, taking every other gap.
fn disjoint_intervals() -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::btree_set(-40i64..40, 2..8).prop_map(|cuts| {
        let cuts: Vec<i64> = cuts.into_iter().collect();
        cuts.chunks(2)
            .filter(|c| c.len() == 2 && c[0] < c[1])
            .map(|c| Interval::half_open(c[0], c[1]))
            .collect()
    })
}

fn eq_values() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::btree_set(0i64..10, 1..4).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn o1_invariants(
        divs in dividers(),
        ivs in disjoint_intervals(),
        eqs in eq_values(),
    ) {
        prop_assume!(!ivs.is_empty());
        let t = template();
        let def = PartialViewDef::new(
            "v",
            Arc::clone(&t),
            vec![None, Some(Discretizer::new(divs.iter().map(|&d| Value::Int(d)).collect()))],
        )
        .unwrap();
        let q = t
            .bind(vec![
                Condition::Equality(eqs.iter().map(|&v| Value::Int(v)).collect()),
                Condition::Intervals(ivs.clone()),
            ])
            .unwrap();
        let parts = decompose(&def, &q).unwrap();
        prop_assert!(!parts.is_empty());

        // Probe a dense grid of (f, g) points.
        for f in 0..10i64 {
            for g in -45..45i64 {
                let tup = pmv::storage::Tuple::new(vec![
                    Value::Int(0),
                    Value::Int(f),
                    Value::Int(g),
                ]);
                let n_parts = parts
                    .iter()
                    .filter(|p| p.contains_tuple(&def, &tup))
                    .count();
                // (1) disjoint and (2) exact coverage.
                let in_query = q.matches_select(&tup);
                prop_assert!(
                    n_parts <= 1,
                    "tuple (f={f}, g={g}) is in {n_parts} parts"
                );
                prop_assert_eq!(
                    n_parts == 1,
                    in_query,
                    "coverage mismatch at (f={}, g={})", f, g
                );
            }
        }

        for p in &parts {
            // (3) containment in the bcp & (4) is_basic correctness.
            let disc = def.discretizer(1).unwrap();
            match (&p.bcp.dims()[1], &p.dims[1]) {
                (pmv::core::BcpDim::Iv(id), PartDim::Iv(frag)) => {
                    let basic = disc.interval_of(*id);
                    let clipped = basic.intersect(frag);
                    prop_assert_eq!(
                        clipped.as_ref(),
                        Some(frag),
                        "fragment escapes its basic interval"
                    );
                    let whole = &basic == frag;
                    prop_assert_eq!(p.is_basic, whole);
                }
                other => prop_assert!(false, "unexpected dims {:?}", other),
            }
        }
    }

    /// bcp recovery agrees with decomposition: a tuple matching a part
    /// maps to that part's containing bcp.
    #[test]
    fn bcp_of_tuple_consistent_with_parts(
        divs in dividers(),
        g in -45i64..45,
        f in 0i64..10,
    ) {
        let t = template();
        let def = PartialViewDef::new(
            "v",
            Arc::clone(&t),
            vec![None, Some(Discretizer::new(divs.iter().map(|&d| Value::Int(d)).collect()))],
        )
        .unwrap();
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(f)]),
                Condition::Intervals(vec![Interval::everything()]),
            ])
            .unwrap();
        let parts = decompose(&def, &q).unwrap();
        let tup = pmv::storage::Tuple::new(vec![Value::Int(0), Value::Int(f), Value::Int(g)]);
        let holder: Vec<_> = parts
            .iter()
            .filter(|p| p.contains_tuple(&def, &tup))
            .collect();
        prop_assert_eq!(holder.len(), 1, "everything-query must cover any g");
        prop_assert_eq!(&def.bcp_of_tuple(&tup), &holder[0].bcp);
    }
}
