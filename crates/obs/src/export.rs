//! Export layer: Prometheus text format and JSON snapshots.
//!
//! The serde_json shim has no serializer derive, so JSON is hand-rolled
//! with the same idiom as `VerifyReport::to_json` in `pmv-core`. The
//! Prometheus rendering follows the text exposition format: counters as
//! `pmv_<name>_total`, per-phase latencies as summary-style quantile
//! gauges (`quantile="0.5|0.9|0.99"`) plus `_sum`/`_count`/`_max` —
//! rather than 496 `le`-labelled buckets, which would swamp scrapes for
//! no added fidelity beyond the ≤12.5% bucket error.

use crate::hist::HistSnapshot;
use crate::trace::esc;
use std::fmt::Write as _;

/// Quantiles exported for every phase histogram.
pub const EXPORT_QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// One view's exportable telemetry: identity/health plus the counter,
/// gauge, and per-phase histogram series. Built by `PmvManager` (or the
/// CLI) from `PmvStats`, the circuit breaker, and the obs registry.
#[derive(Clone, Debug)]
pub struct ViewMetrics {
    /// View (template) name — the `view` label.
    pub name: String,
    /// Breaker state name (`healthy` / `degraded` / `quarantined`).
    pub health: String,
    /// Breaker windowed error rate in `[0, 1]`.
    pub error_rate: f64,
    /// Breaker trip count.
    pub trips: u64,
    /// Milliseconds since the view was last verified consistent
    /// (maintenance or revalidation) — the staleness age.
    pub last_verified_age_ms: u64,
    /// Monotonic counters (name, value), e.g. from `PmvStats::as_pairs`.
    pub counters: Vec<(&'static str, u64)>,
    /// Derived gauges (name, value), e.g. hit probability.
    pub gauges: Vec<(&'static str, f64)>,
    /// Per-phase latency snapshots (phase name, histogram).
    pub phases: Vec<(&'static str, HistSnapshot)>,
}

/// Render a fleet of views in the Prometheus text exposition format.
pub fn to_prometheus(views: &[ViewMetrics]) -> String {
    let mut out = String::with_capacity(4096);

    head(
        &mut out,
        "pmv_view_health",
        "gauge",
        "Breaker health state of each view (1 for the labelled state)",
    );
    for v in views {
        let _ = writeln!(
            out,
            "pmv_view_health{{view=\"{}\",state=\"{}\"}} 1",
            esc(&v.name),
            esc(&v.health)
        );
    }
    head(
        &mut out,
        "pmv_view_error_rate",
        "gauge",
        "Windowed circuit-breaker error rate per view, in [0, 1]",
    );
    for v in views {
        let _ = writeln!(
            out,
            "pmv_view_error_rate{{view=\"{}\"}} {}",
            esc(&v.name),
            fmt_f64(v.error_rate)
        );
    }
    head(
        &mut out,
        "pmv_view_breaker_trips_total",
        "counter",
        "Circuit-breaker trips per view",
    );
    for v in views {
        let _ = writeln!(
            out,
            "pmv_view_breaker_trips_total{{view=\"{}\"}} {}",
            esc(&v.name),
            v.trips
        );
    }
    head(
        &mut out,
        "pmv_view_last_verified_age_ms",
        "gauge",
        "Milliseconds since the view was last verified consistent (staleness age)",
    );
    for v in views {
        let _ = writeln!(
            out,
            "pmv_view_last_verified_age_ms{{view=\"{}\"}} {}",
            esc(&v.name),
            v.last_verified_age_ms
        );
    }

    // Counters: one HELP/TYPE pair per metric name, then every view's
    // sample.
    let mut counter_names: Vec<&'static str> = Vec::new();
    for v in views {
        for &(name, _) in &v.counters {
            if !counter_names.contains(&name) {
                counter_names.push(name);
            }
        }
    }
    for name in counter_names {
        let _ = writeln!(
            out,
            "# HELP pmv_{name}_total PMV serving-path counter '{name}' (see DESIGN.md)"
        );
        let _ = writeln!(out, "# TYPE pmv_{name}_total counter");
        for v in views {
            if let Some(&(_, value)) = v.counters.iter().find(|(n, _)| *n == name) {
                let _ = writeln!(out, "pmv_{name}_total{{view=\"{}\"}} {value}", esc(&v.name));
            }
        }
    }

    let mut gauge_names: Vec<&'static str> = Vec::new();
    for v in views {
        for &(name, _) in &v.gauges {
            if !gauge_names.contains(&name) {
                gauge_names.push(name);
            }
        }
    }
    for name in gauge_names {
        let _ = writeln!(
            out,
            "# HELP pmv_{name} PMV derived gauge '{name}' (see DESIGN.md)"
        );
        let _ = writeln!(out, "# TYPE pmv_{name} gauge");
        for v in views {
            if let Some(&(_, value)) = v.gauges.iter().find(|(n, _)| *n == name) {
                let _ = writeln!(
                    out,
                    "pmv_{name}{{view=\"{}\"}} {}",
                    esc(&v.name),
                    fmt_f64(value)
                );
            }
        }
    }

    // Phase latencies as a summary per (view, phase).
    head(
        &mut out,
        "pmv_phase_latency_seconds",
        "summary",
        "Serving-path phase latency quantiles per view",
    );
    for v in views {
        let view = esc(&v.name);
        for (phase, snap) in &v.phases {
            for (q, qlabel) in EXPORT_QUANTILES {
                let _ = writeln!(
                    out,
                    "pmv_phase_latency_seconds{{view=\"{view}\",phase=\"{phase}\",quantile=\"{qlabel}\"}} {}",
                    fmt_f64(snap.quantile(q).as_secs_f64())
                );
            }
            let _ = writeln!(
                out,
                "pmv_phase_latency_seconds_sum{{view=\"{view}\",phase=\"{phase}\"}} {}",
                fmt_f64(snap.sum_ns() as f64 / 1e9)
            );
            let _ = writeln!(
                out,
                "pmv_phase_latency_seconds_count{{view=\"{view}\",phase=\"{phase}\"}} {}",
                snap.count()
            );
        }
    }
    head(
        &mut out,
        "pmv_phase_latency_seconds_max",
        "gauge",
        "Exact maximum phase latency per view",
    );
    for v in views {
        let view = esc(&v.name);
        for (phase, snap) in &v.phases {
            let _ = writeln!(
                out,
                "pmv_phase_latency_seconds_max{{view=\"{view}\",phase=\"{phase}\"}} {}",
                fmt_f64(snap.max().as_secs_f64())
            );
        }
    }
    out
}

/// Render a fleet of views as one JSON document:
/// `{"views":[{...,"phases":{"ttfr":{"count":..,"p50_us":..},..}},..]}`.
pub fn to_json(views: &[ViewMetrics]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\"views\":[");
    for (i, v) in views.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"health\":\"{}\",\"error_rate\":{},\"trips\":{},\
             \"last_verified_age_ms\":{}",
            esc(&v.name),
            esc(&v.health),
            fmt_f64(v.error_rate),
            v.trips,
            v.last_verified_age_ms
        );
        out.push_str(",\"counters\":{");
        for (j, (name, value)) in v.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (j, (name, value)) in v.gauges.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", fmt_f64(*value));
        }
        out.push_str("},\"phases\":{");
        for (j, (phase, snap)) in v.phases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{phase}\":{}", phase_json(snap));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// One phase histogram as a JSON object with microsecond percentiles.
pub fn phase_json(snap: &HistSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        snap.count(),
        snap.sum_ns() / 1_000,
        snap.quantile(0.5).as_micros(),
        snap.quantile(0.9).as_micros(),
        snap.quantile(0.99).as_micros(),
        snap.max().as_micros()
    )
}

/// Emit the `# HELP`/`# TYPE` header pair for one metric family. The
/// exposition format requires HELP before TYPE and both before any
/// sample of the family.
fn head(out: &mut String, family: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {family} {help}");
    let _ = writeln!(out, "# TYPE {family} {kind}");
}

/// `f64` rendering that is always valid JSON/Prometheus: finite values
/// via `{}` (Rust's shortest round-trip), non-finite clamped to 0.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use std::time::Duration;

    fn sample() -> Vec<ViewMetrics> {
        let h = LatencyHistogram::new();
        for us in [100u64, 200, 900, 5_000] {
            h.record(Duration::from_micros(us));
        }
        vec![
            ViewMetrics {
                name: "t1".into(),
                health: "healthy".into(),
                error_rate: 0.0,
                trips: 0,
                last_verified_age_ms: 12,
                counters: vec![("queries", 4), ("bcp_hit_queries", 3)],
                gauges: vec![("hit_probability", 0.75)],
                phases: vec![("ttfr", h.snapshot()), ("full", HistSnapshot::empty())],
            },
            ViewMetrics {
                name: "t2".into(),
                health: "degraded".into(),
                error_rate: 0.25,
                trips: 1,
                last_verified_age_ms: 9_000,
                counters: vec![("queries", 8)],
                gauges: vec![],
                phases: vec![],
            },
        ]
    }

    #[test]
    fn prometheus_contains_expected_series() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE pmv_queries_total counter"), "{text}");
        assert!(text.contains("pmv_queries_total{view=\"t1\"} 4"), "{text}");
        assert!(text.contains("pmv_queries_total{view=\"t2\"} 8"), "{text}");
        assert!(
            text.contains("pmv_view_health{view=\"t2\",state=\"degraded\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("pmv_hit_probability{view=\"t1\"} 0.75"),
            "{text}"
        );
        assert!(
            text.contains(
                "pmv_phase_latency_seconds{view=\"t1\",phase=\"ttfr\",quantile=\"0.99\"}"
            ),
            "{text}"
        );
        assert!(
            text.contains("pmv_phase_latency_seconds_count{view=\"t1\",phase=\"ttfr\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("pmv_view_last_verified_age_ms{view=\"t2\"} 9000"),
            "{text}"
        );
        // Exactly one TYPE line per metric family.
        assert_eq!(text.matches("# TYPE pmv_queries_total").count(), 1);
        // Every non-comment line has a value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.contains(' '), "malformed line: {line}");
        }
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let j = to_json(&sample());
        assert!(j.starts_with("{\"views\":["), "{j}");
        assert!(j.contains("\"name\":\"t1\""), "{j}");
        assert!(j.contains("\"counters\":{\"queries\":4"), "{j}");
        assert!(j.contains("\"p99_us\""), "{j}");
        assert!(j.contains("\"health\":\"degraded\""), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn empty_phase_exports_zeroes() {
        let p = phase_json(&HistSnapshot::empty());
        assert_eq!(
            p,
            "{\"count\":0,\"sum_us\":0,\"p50_us\":0,\"p90_us\":0,\"p99_us\":0,\"max_us\":0}"
        );
    }

    #[test]
    fn non_finite_gauges_render_as_zero() {
        let mut views = sample();
        views[0].gauges.push(("bad", f64::NAN));
        let text = to_prometheus(&views);
        assert!(text.contains("pmv_bad{view=\"t1\"} 0"), "{text}");
    }
}
