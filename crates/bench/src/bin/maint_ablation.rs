//! Ablation — the Section 3.4 / \[25\] maintenance filter.
//!
//! A mixed delete workload against a warmed PMV, with and without the
//! filter indices on V_PM attributes. The filter should skip the vast
//! majority of ΔR joins (most deleted tuples touch nothing cached in a
//! small PMV), directly supporting the paper's claim that PMV
//! maintenance "mainly performs cheap in-memory operations".

use std::time::Instant;

use pmv_bench::tpcr_harness::{arg_flag, arg_value, build_db};
use pmv_bench::ExperimentReport;
use pmv_cache::PolicyKind;
use pmv_core::{PartialViewDef, Pmv, PmvConfig, PmvPipeline};
use pmv_query::Transaction;
use pmv_storage::Value;
use pmv_workload::queries::{t1_query, template_t1};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale: f64 = arg_value("--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if arg_flag("--quick") { 0.005 } else { 0.02 });
    let deletes: usize = arg_value("--deletes")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);

    let mut report = ExperimentReport::new(
        "maint_ablation",
        format!("Maintenance-filter ablation: {deletes} random lineitem deletes, s={scale}"),
        "filter",
    );

    for use_filter in [false, true] {
        eprintln!("building database (filter={use_filter})…");
        let mut db = build_db(scale, 0xfeed);
        let t1 = template_t1(&db).expect("T1");
        let def = PartialViewDef::all_equality("ablate", t1.clone()).expect("def");
        let mut config = PmvConfig::new(3, 20_000, PolicyKind::Clock);
        config.maint_filter = use_filter;
        let mut pmv = Pmv::new(def, config);
        let pipeline = PmvPipeline::new();
        let mut rng = StdRng::seed_from_u64(99);

        // Warm the PMV over 200 hot queries.
        let n_orders = db.len("orders").unwrap() as i64;
        for _ in 0..200 {
            let okey = rng.gen_range(1..=n_orders);
            let (date, supp) = order_combo(&db, okey);
            let q = t1_query(&t1, &[date], &[supp]).expect("bind");
            pipeline.run(&db, &mut pmv, &q).expect("warm");
        }

        // Delete random lineitems, maintaining the PMV each time.
        let started = Instant::now();
        let mut joins = 0usize;
        let mut avoided = 0usize;
        let mut removed = 0usize;
        for _ in 0..deletes {
            let handle = db.relation("lineitem").unwrap();
            let row = {
                let guard = handle.read();
                let nth = rng.gen_range(0..guard.len());
                let r = guard.iter().nth(nth).map(|(r, _)| r).unwrap();
                r
            };
            let mut txn = Transaction::begin(&mut db);
            txn.delete("lineitem", row).expect("delete");
            for b in txn.commit() {
                let out = pipeline.maintain(&db, &mut pmv, &b).expect("maintain");
                joins += out.deletes_joined - out.joins_avoided;
                avoided += out.joins_avoided;
                removed += out.view_tuples_removed;
            }
        }
        let elapsed = started.elapsed();
        report.push(
            if use_filter { "with" } else { "without" },
            vec![
                ("joins_computed".into(), joins as f64),
                ("joins_avoided".into(), avoided as f64),
                ("tuples_evicted".into(), removed as f64),
                ("seconds".into(), elapsed.as_secs_f64()),
            ],
        );
        eprintln!(
            "filter={use_filter}: {joins} joins, {avoided} avoided, {removed} evicted in {elapsed:?}"
        );
    }
    report.print();
}

/// (orderdate, one suppkey) of an order, via the standard indexes.
fn order_combo(db: &pmv_query::Database, okey: i64) -> (i64, i64) {
    use pmv_index::SecondaryIndex;
    let o_idx = db.index_on("orders", &[0]).unwrap();
    let row = o_idx.get(&pmv_index::IndexKey::single(Value::Int(okey)))[0];
    let order = db.get("orders", row).unwrap();
    let date = order.get(2).as_int().unwrap();
    let l_idx = db.index_on("lineitem", &[0]).unwrap();
    let lrows = l_idx.get(&pmv_index::IndexKey::single(Value::Int(okey)));
    let supp = db
        .get("lineitem", lrows[0])
        .unwrap()
        .get(1)
        .as_int()
        .unwrap();
    (date, supp)
}
