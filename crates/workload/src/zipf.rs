//! Zipfian sampling over ranks `0..n`.
//!
//! The paper's simulation draws each basic condition part from a Zipfian
//! distribution with parameter α: `e_i ∝ 1 / i^α` (Section 4.1). We
//! precompute the cumulative distribution once and sample by binary
//! search, so a draw is O(log n) with no floating-point accumulation
//! drift during sampling.

use rand::Rng;

/// A Zipfian distribution over `n` ranks (rank 0 is the hottest).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n` items with skew `alpha` (> 0).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(alpha > 0.0, "alpha must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding: the last entry must be exactly 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are no ranks (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draw a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Smallest number of top ranks holding at least `mass` of the
    /// probability (used to report e.g. "10% of bcps get 90% of the
    /// accesses" like the paper's skew description).
    pub fn ranks_for_mass(&self, mass: f64) -> usize {
        self.cdf.partition_point(|&c| c < mass) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 1.07);
        let total: f64 = (0..1000).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
    }

    #[test]
    fn sampling_respects_skew() {
        let z = Zipf::new(1000, 1.07);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 1000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must be sampled far more often than rank 500.
        assert!(counts[0] > counts[500] * 10);
        // Empirical frequency of rank 0 within 10% of its pmf.
        let emp = counts[0] as f64 / 200_000.0;
        assert!((emp - z.pmf(0)).abs() / z.pmf(0) < 0.1);
    }

    #[test]
    fn skew_concentration_matches_paper_narrative() {
        // Paper: α = 1.07 → ~10% of 1M bcps get 90% of accesses;
        // α = 1.01 → ~21%. Verify the direction and rough magnitude on
        // a smaller universe (exact fractions depend on n).
        let hi = Zipf::new(100_000, 1.07);
        let lo = Zipf::new(100_000, 1.01);
        let hi_frac = hi.ranks_for_mass(0.9) as f64 / 100_000.0;
        let lo_frac = lo.ranks_for_mass(0.9) as f64 / 100_000.0;
        assert!(hi_frac < lo_frac, "higher skew concentrates more");
        assert!(hi_frac < 0.35, "got {hi_frac}");
    }

    #[test]
    fn sample_always_in_range() {
        let z = Zipf::new(10, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }
}
