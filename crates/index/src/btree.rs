//! A from-scratch B+-tree over composite keys.
//!
//! Arena-allocated nodes, leaf-level linked list for range scans, posting
//! lists per key. Deletion is *lazy*: removing the last posting of a key
//! removes the key from its leaf but never merges nodes. Underfull leaves
//! are harmless for correctness and keep the code small; the workloads in
//! this reproduction are insert-heavy (TPC-R loads) with comparatively few
//! deletes, matching the paper's setting where deletes flow through ΔR.

use std::ops::Bound;

use pmv_storage::RowId;

use crate::key::IndexKey;
use crate::SecondaryIndex;

/// Maximum keys per node before it splits.
const DEFAULT_ORDER: usize = 32;

type NodeId = usize;

#[derive(Clone)]
enum Node {
    Internal {
        /// Separator keys; `children[i]` holds keys `< keys[i]`,
        /// `children[i+1]` holds keys `>= keys[i]`.
        keys: Vec<IndexKey>,
        children: Vec<NodeId>,
    },
    Leaf {
        keys: Vec<IndexKey>,
        postings: Vec<Vec<RowId>>,
        next: Option<NodeId>,
    },
}

/// B+-tree index: ordered composite keys with range scans.
///
/// `Clone` supports the copy-on-write snapshot layer: `Database`
/// publishes indexes behind `Arc`, and maintenance clones-on-write via
/// `Arc::make_mut` only when a pinned snapshot still holds the old
/// version.
#[derive(Clone)]
pub struct BTreeIndex {
    nodes: Vec<Node>,
    root: NodeId,
    order: usize,
    key_count: usize,
    entry_count: usize,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    /// Empty tree with the default node order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Empty tree with `order` maximum keys per node (minimum 4).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "B+-tree order must be at least 4");
        BTreeIndex {
            // Node 0 is the initial (leftmost) leaf and stays the leftmost
            // leaf forever: splits always allocate the *right* sibling.
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                postings: Vec::new(),
                next: None,
            }],
            root: 0,
            order,
            key_count: 0,
            entry_count: 0,
        }
    }

    /// Leaf that would contain `key`, plus the path of internal nodes
    /// walked (for split propagation).
    fn descend(&self, key: &IndexKey) -> (NodeId, Vec<(NodeId, usize)>) {
        let mut path = Vec::new();
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let child_idx = keys.partition_point(|sep| sep <= key);
                    path.push((node, child_idx));
                    node = children[child_idx];
                }
                Node::Leaf { .. } => return (node, path),
            }
        }
    }

    /// Rows whose key components equal `parts`, without materializing an
    /// [`IndexKey`] — the executor's hot probe path borrows the values
    /// straight out of the bound tuple. Component comparison matches
    /// `IndexKey`'s derived `Ord` (lexicographic over `Value`), so this
    /// lands on the same leaf slot as [`SecondaryIndex::get`].
    pub fn get_by_parts(&self, parts: &[pmv_storage::Value]) -> &[RowId] {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let child_idx = keys.partition_point(|sep| sep.parts() <= parts);
                    node = children[child_idx];
                }
                Node::Leaf { keys, postings, .. } => {
                    return match keys.binary_search_by(|k| k.parts().cmp(parts)) {
                        Ok(i) => &postings[i],
                        Err(_) => &[],
                    };
                }
            }
        }
    }

    /// Split the overfull node `node`, returning the separator key and the
    /// new right sibling id.
    fn split(&mut self, node: NodeId) -> (IndexKey, NodeId) {
        let new_id = self.nodes.len();
        match &mut self.nodes[node] {
            Node::Leaf {
                keys,
                postings,
                next,
            } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_postings = postings.split_off(mid);
                let sep = right_keys[0].clone();
                let right = Node::Leaf {
                    keys: right_keys,
                    postings: right_postings,
                    next: next.take(),
                };
                match &mut self.nodes[node] {
                    Node::Leaf { next, .. } => *next = Some(new_id),
                    Node::Internal { .. } => unreachable!(),
                }
                self.nodes.push(right);
                (sep, new_id)
            }
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                // The separator at `mid` moves up; right node gets keys
                // after it.
                let sep = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // drop the promoted separator
                let right_children = children.split_off(mid + 1);
                let right = Node::Internal {
                    keys: right_keys,
                    children: right_children,
                };
                self.nodes.push(right);
                (sep, new_id)
            }
        }
    }

    fn node_len(&self, node: NodeId) -> usize {
        match &self.nodes[node] {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len(),
        }
    }

    /// Propagate splits from `leaf` back up `path` to the root.
    fn rebalance_after_insert(&mut self, leaf: NodeId, path: Vec<(NodeId, usize)>) {
        let mut child = leaf;
        let mut path = path;
        while self.node_len(child) > self.order {
            let (sep, right) = self.split(child);
            match path.pop() {
                Some((parent, child_idx)) => {
                    match &mut self.nodes[parent] {
                        Node::Internal { keys, children } => {
                            keys.insert(child_idx, sep);
                            children.insert(child_idx + 1, right);
                        }
                        Node::Leaf { .. } => unreachable!("parent must be internal"),
                    }
                    child = parent;
                }
                None => {
                    // `child` was the root: grow a new root.
                    let new_root = Node::Internal {
                        keys: vec![sep],
                        children: vec![child, right],
                    };
                    self.nodes.push(new_root);
                    self.root = self.nodes.len() - 1;
                    return;
                }
            }
        }
    }

    /// Range scan: all `(key, postings)` with key within the bounds, in
    /// ascending key order.
    pub fn range(&self, lo: Bound<&IndexKey>, hi: Bound<&IndexKey>) -> Vec<(IndexKey, Vec<RowId>)> {
        let mut out = Vec::new();
        // Locate the starting leaf and position.
        let (mut node, mut pos) = match lo {
            Bound::Unbounded => (0, 0), // node 0 is always the leftmost leaf
            Bound::Included(k) | Bound::Excluded(k) => {
                let (leaf, _) = self.descend(k);
                let pos = match &self.nodes[leaf] {
                    Node::Leaf { keys, .. } => match lo {
                        Bound::Included(k) => keys.partition_point(|x| x < k),
                        Bound::Excluded(k) => keys.partition_point(|x| x <= k),
                        Bound::Unbounded => 0,
                    },
                    Node::Internal { .. } => unreachable!(),
                };
                (leaf, pos)
            }
        };
        loop {
            let Node::Leaf {
                keys,
                postings,
                next,
            } = &self.nodes[node]
            else {
                unreachable!("leaf chain contains only leaves")
            };
            while pos < keys.len() {
                let k = &keys[pos];
                let in_hi = match hi {
                    Bound::Unbounded => true,
                    Bound::Included(h) => k <= h,
                    Bound::Excluded(h) => k < h,
                };
                if !in_hi {
                    return out;
                }
                out.push((k.clone(), postings[pos].clone()));
                pos += 1;
            }
            match next {
                Some(n) => {
                    node = *n;
                    pos = 0;
                }
                None => return out,
            }
        }
    }

    /// All keys in ascending order (test/validation helper).
    pub fn keys_in_order(&self) -> Vec<IndexKey> {
        self.range(Bound::Unbounded, Bound::Unbounded)
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }

    /// Check structural invariants; panics on violation. Test helper.
    pub fn validate(&self) {
        let keys = self.keys_in_order();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "leaf chain keys must be strictly ascending"
        );
        assert_eq!(keys.len(), self.key_count, "key_count mismatch");
        let posted: usize = self
            .range(Bound::Unbounded, Bound::Unbounded)
            .iter()
            .map(|(_, p)| p.len())
            .sum();
        assert_eq!(posted, self.entry_count, "entry_count mismatch");
    }
}

impl SecondaryIndex for BTreeIndex {
    fn insert(&mut self, key: IndexKey, row: RowId) {
        let (leaf, path) = self.descend(&key);
        let overflow = match &mut self.nodes[leaf] {
            Node::Leaf { keys, postings, .. } => {
                match keys.binary_search(&key) {
                    Ok(i) => postings[i].push(row),
                    Err(i) => {
                        keys.insert(i, key);
                        postings.insert(i, vec![row]);
                        self.key_count += 1;
                    }
                }
                keys.len() > self.order
            }
            Node::Internal { .. } => unreachable!(),
        };
        self.entry_count += 1;
        if overflow {
            self.rebalance_after_insert(leaf, path);
        }
    }

    fn remove(&mut self, key: &IndexKey, row: RowId) -> bool {
        let (leaf, _) = self.descend(key);
        match &mut self.nodes[leaf] {
            Node::Leaf { keys, postings, .. } => match keys.binary_search(key) {
                Ok(i) => {
                    let Some(pos) = postings[i].iter().position(|&r| r == row) else {
                        return false;
                    };
                    postings[i].swap_remove(pos);
                    self.entry_count -= 1;
                    if postings[i].is_empty() {
                        keys.remove(i);
                        postings.remove(i);
                        self.key_count -= 1;
                    }
                    true
                }
                Err(_) => false,
            },
            Node::Internal { .. } => unreachable!(),
        }
    }

    fn get(&self, key: &IndexKey) -> &[RowId] {
        let (leaf, _) = self.descend(key);
        match &self.nodes[leaf] {
            Node::Leaf { keys, postings, .. } => match keys.binary_search(key) {
                Ok(i) => &postings[i],
                Err(_) => &[],
            },
            Node::Internal { .. } => unreachable!(),
        }
    }

    fn key_count(&self) -> usize {
        self.key_count
    }

    fn entry_count(&self) -> usize {
        self.entry_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::Value;

    fn k(v: i64) -> IndexKey {
        IndexKey::single(Value::Int(v))
    }

    #[test]
    fn insert_and_get_small() {
        let mut t = BTreeIndex::new();
        t.insert(k(5), RowId(50));
        t.insert(k(3), RowId(30));
        t.insert(k(7), RowId(70));
        assert_eq!(t.get(&k(3)), &[RowId(30)]);
        assert_eq!(t.get(&k(5)), &[RowId(50)]);
        assert_eq!(t.get(&k(9)), &[] as &[RowId]);
        t.validate();
    }

    #[test]
    fn many_inserts_force_splits() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..1000i64 {
            t.insert(k(i), RowId(i as u32));
        }
        t.validate();
        assert_eq!(t.key_count(), 1000);
        for i in 0..1000i64 {
            assert_eq!(t.get(&k(i)), &[RowId(i as u32)], "key {i}");
        }
    }

    #[test]
    fn descending_inserts() {
        let mut t = BTreeIndex::with_order(4);
        for i in (0..500i64).rev() {
            t.insert(k(i), RowId(i as u32));
        }
        t.validate();
        let keys = t.keys_in_order();
        assert_eq!(keys.len(), 500);
        assert_eq!(keys[0], k(0));
        assert_eq!(keys[499], k(499));
    }

    #[test]
    fn duplicate_keys_extend_postings() {
        let mut t = BTreeIndex::new();
        t.insert(k(1), RowId(10));
        t.insert(k(1), RowId(11));
        assert_eq!(t.get(&k(1)), &[RowId(10), RowId(11)]);
        assert_eq!(t.key_count(), 1);
        assert_eq!(t.entry_count(), 2);
    }

    #[test]
    fn remove_posting_and_key() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..100i64 {
            t.insert(k(i), RowId(i as u32));
            t.insert(k(i), RowId(1000 + i as u32));
        }
        assert!(t.remove(&k(50), RowId(50)));
        assert_eq!(t.get(&k(50)), &[RowId(1050)]);
        assert!(t.remove(&k(50), RowId(1050)));
        assert_eq!(t.get(&k(50)), &[] as &[RowId]);
        assert!(!t.remove(&k(50), RowId(1050)));
        t.validate();
        assert_eq!(t.key_count(), 99);
    }

    #[test]
    fn range_inclusive_exclusive() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..20i64 {
            t.insert(k(i * 10), RowId(i as u32));
        }
        let r = t.range(Bound::Included(&k(30)), Bound::Included(&k(60)));
        let got: Vec<_> = r.iter().map(|(key, _)| key.clone()).collect();
        assert_eq!(got, vec![k(30), k(40), k(50), k(60)]);

        let r = t.range(Bound::Excluded(&k(30)), Bound::Excluded(&k(60)));
        let got: Vec<_> = r.iter().map(|(key, _)| key.clone()).collect();
        assert_eq!(got, vec![k(40), k(50)]);
    }

    #[test]
    fn range_unbounded_sides() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..50i64 {
            t.insert(k(i), RowId(i as u32));
        }
        assert_eq!(t.range(Bound::Unbounded, Bound::Excluded(&k(3))).len(), 3);
        assert_eq!(t.range(Bound::Included(&k(47)), Bound::Unbounded).len(), 3);
        assert_eq!(t.range(Bound::Unbounded, Bound::Unbounded).len(), 50);
    }

    #[test]
    fn range_between_keys_lands_correctly() {
        let mut t = BTreeIndex::with_order(4);
        for i in 0..20i64 {
            t.insert(k(i * 10), RowId(i as u32));
        }
        // Bounds that are not keys themselves.
        let r = t.range(Bound::Included(&k(25)), Bound::Included(&k(45)));
        let got: Vec<_> = r.iter().map(|(key, _)| key.clone()).collect();
        assert_eq!(got, vec![k(30), k(40)]);
    }

    #[test]
    fn empty_tree_behaves() {
        let t = BTreeIndex::new();
        assert_eq!(t.get(&k(1)), &[] as &[RowId]);
        assert!(t.range(Bound::Unbounded, Bound::Unbounded).is_empty());
        t.validate();
    }

    #[test]
    fn composite_keys_order_lexicographically_in_range() {
        let mut t = BTreeIndex::with_order(4);
        for a in 0..10i64 {
            for b in 0..10i64 {
                t.insert(
                    IndexKey::new(vec![Value::Int(a), Value::Int(b)]),
                    RowId((a * 10 + b) as u32),
                );
            }
        }
        t.validate();
        // All keys with first component 3: [ (3,0) .. (4,0) )
        let lo = IndexKey::new(vec![Value::Int(3)]);
        let hi = IndexKey::new(vec![Value::Int(4)]);
        let r = t.range(Bound::Included(&lo), Bound::Excluded(&hi));
        assert_eq!(r.len(), 10);
        assert!(r.iter().all(|(key, _)| key.parts()[0] == Value::Int(3)));
    }

    #[test]
    fn interleaved_insert_remove_stress() {
        let mut t = BTreeIndex::with_order(4);
        for round in 0..5 {
            for i in 0..200i64 {
                t.insert(k(i), RowId((round * 200 + i) as u32));
            }
            for i in (0..200i64).step_by(2) {
                assert!(t.remove(&k(i), RowId((round * 200 + i) as u32)));
            }
            t.validate();
        }
        // Odd keys have 5 postings each, even keys 0 extra beyond removals.
        assert_eq!(t.get(&k(1)).len(), 5);
        assert_eq!(t.get(&k(2)).len(), 0);
    }
}
