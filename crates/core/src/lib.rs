//! # pmv-core — Partial Materialized Views
//!
//! The primary contribution of *Partial Materialized Views* (Gang Luo,
//! ICDE 2007), built on the workspace's storage/index/query substrates.
//!
//! A **PMV** caches, for one parameterized query template, up to `F`
//! result tuples for each of up to `L` *basic condition parts* — the
//! discretized cells of the template's selection space. On query arrival
//! the PMV is probed first and any cached results are returned within
//! microseconds (Operation O2); the query then executes normally and the
//! remaining results follow, deduplicated through the multiset `DS`
//! (Operation O3). The cached content adapts to the query pattern via a
//! replacement policy (CLOCK/2Q/…), is filled and updated *for free* from
//! observed result tuples, needs **no maintenance on inserts**, and is
//! kept consistent on deletes/updates by joining `ΔR` with the other base
//! relations.
//!
//! Module map (paper section in parentheses):
//!
//! * [`bcp`] — basic intervals, discretizers, bcp keys (3.1)
//! * [`view`] — PMV definitions and config (3.2)
//! * [`o1`] — decomposition of `Cselect` into condition parts (3.3, O1)
//! * [`store`] — the bounded, policy-managed result store (3.2, 3.5)
//! * [`ds`] — the O2/O3 dedup multiset (3.3)
//! * [`pipeline`] — Operations O1/O2/O3 with S-locking (3.3, 3.6)
//! * [`maintenance`] — deferred maintenance under X locks (3.4)
//! * [`delta_index`] — delta-key index: O(|Δ| · fanout) partial-state
//!   maintenance with no base-relation join (3.4, DESIGN.md §19)
//! * [`fasthash`] — multiply-fold hasher for the hot dedup/index maps
//! * [`mv`] — traditional-MV and small-MV baselines (2.2, 2.3)
//! * [`ext`] — DISTINCT / aggregate / EXISTS / popularity-ranking
//!   extensions (3.6 and the conclusion)
//! * [`stats`] — cumulative counters, hit probability
//! * [`health`] — circuit breaker, degradation semantics, validation
//!   reports (failure model; see DESIGN.md §11)
//! * [`verify`] — registration-time static verifier, diagnostics
//!   `PMV001..PMV006` (see DESIGN.md §12)
//!
//! Observability (per-phase latency histograms, lifecycle traces, and
//! the Prometheus/JSON export layer) lives in the dependency-free
//! `pmv-obs` crate; its core types are re-exported here (see
//! DESIGN.md §13).

pub mod advisor;
pub mod bcp;
pub mod concurrent;
pub mod delta_index;
pub mod ds;
pub mod epoch;
pub mod ext;
pub mod fasthash;
pub mod health;
pub mod maint_filter;
pub mod maintenance;
pub mod manager;
pub mod mv;
pub mod o1;
pub mod pipeline;
pub mod stats;
pub mod store;
pub mod verify;
pub mod view;

pub use advisor::{AdvisorConfig, PmvAdvisor, Recommendation};
pub use bcp::{BcpDim, BcpKey, Discretizer};
pub use concurrent::SharedPmv;
pub use delta_index::DeltaKeyIndex;
pub use ds::Ds;
pub use epoch::EpochDb;
pub use fasthash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use health::{
    BreakerConfig, CircuitBreaker, Degradation, DegradeReason, ShardReport, ValidationReport,
    ViewHealth,
};
pub use maint_filter::MaintFilter;
pub use maintenance::MaintenanceOutcome;
pub use manager::{PmvManager, ViewHealthReport};
pub use mv::{SmallMvSet, TraditionalMv};
pub use o1::{decompose, ConditionPart, PartDim};
pub use pipeline::{Pmv, PmvPipeline, QueryOutcome, QueryTimings};
pub use pmv_obs::{
    EventKind, HistSnapshot, LatencyHistogram, ObsRegistry, Phase, QueryTrace, TraceEvent,
    TraceKind, TraceRecorder, ViewMetrics,
};
pub use pmv_wal::{CheckpointMeta, Durability, RecoveryInfo, ViewSpec};
pub use stats::{AtomicPmvStats, PmvStats};
pub use store::{PmvStore, Residency};
pub use verify::{
    verify_def, verify_parts, DiagCode, Diagnostic, FilterSpec, Severity, VerifyOptions,
    VerifyPolicy, VerifyReport,
};
pub use view::{MaintStrategy, PartialViewDef, PmvConfig};

/// Errors from the PMV layer.
#[derive(Debug)]
pub enum CoreError {
    /// Bad PMV definition or query/definition mismatch.
    Definition(String),
    /// A group-commit combine round failed during view maintenance; the
    /// coalesced batch was not published and every transaction in it
    /// reports this error.
    Commit(String),
    /// Underlying query/storage failure.
    Query(pmv_query::QueryError),
    /// The durability layer failed: a commit's WAL record could not be
    /// made durable (the transaction was rolled back and nothing
    /// published), or a checkpoint/recovery operation failed.
    Durability(String),
    /// Registration rejected by the static verifier (deny diagnostics).
    Analysis(verify::VerifyReport),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Definition(msg) => write!(f, "pmv definition error: {msg}"),
            CoreError::Commit(msg) => write!(f, "group commit failed: {msg}"),
            CoreError::Query(e) => write!(f, "query error: {e}"),
            CoreError::Durability(msg) => write!(f, "durability error: {msg}"),
            CoreError::Analysis(report) => {
                write!(f, "registration denied by static analysis:\n{report}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<pmv_query::QueryError> for CoreError {
    fn from(e: pmv_query::QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<pmv_wal::WalError> for CoreError {
    fn from(e: pmv_wal::WalError) -> Self {
        CoreError::Durability(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
