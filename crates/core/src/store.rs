//! The PMV store: bcp-keyed entries of at most `F` result tuples, bounded
//! to `L` entries, managed by a pluggable replacement policy
//! (Sections 3.2 and 3.5).
//!
//! The store is the moral equivalent of the paper's Figure 4: a table of
//! `(bcp, tuples)` entries with a hash index `I` on bcp (bcp probes are
//! exact-match, so hashing is the right index shape; `pmv-bench` ablates
//! this against a B-tree).

use std::sync::Arc;

use pmv_cache::{AdmitOutcome, PolicyKind, ReplacementPolicy};
use pmv_storage::{HeapSize, Tuple};

use crate::bcp::BcpKey;
use crate::delta_index::{DeltaKeyIndex, Supported};
use crate::fasthash::FxHashMap;
use crate::view::PmvConfig;

/// Residency decision for a bcp in Operation O3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Residency {
    /// The bcp is resident: its tuples may be cached and served.
    Resident,
    /// The bcp is on probation (2Q's A1): no tuples cached yet.
    Probation,
}

/// One cached result tuple and the epoch it was filled at. Tuples are
/// shared (`Arc`) with the executor output and the query outcome — the
/// store never deep-copies a tuple. The fill epoch lets the epoch-pinned
/// serving path refuse tuples newer than its pinned version (a reader at
/// epoch `e` serves a cached tuple only when `fill_epoch <= e`).
pub type CachedTuple = (Arc<Tuple>, u64);

struct Entry {
    tuples: Vec<CachedTuple>,
    /// Times this bcp produced partial results (popularity ranking
    /// extension).
    hits: u64,
    /// `Some(w)` when this entry held the bcp's *entire* truth at
    /// insert-watermark `w` (a fill or upquery cached every matching
    /// tuple). The entry is still complete only while `w` equals the
    /// store's current [`PmvStore::inserts_seen`] — any later relevant
    /// insert may have added tuples the cache is missing. Maintenance
    /// removals clear it (conservative: a removal may drop a tuple the
    /// base still derives via another support).
    complete: Option<u64>,
}

/// Bounded store of hot query results, keyed by basic condition part.
pub struct PmvStore {
    entries: FxHashMap<BcpKey, Entry>,
    policy: Box<dyn ReplacementPolicy<BcpKey> + Send + Sync>,
    /// Which policy `policy` was built from, kept so a quarantine drain
    /// can rebuild a fresh instance of the same kind.
    policy_kind: PolicyKind,
    f: usize,
    bytes: usize,
    evictions: u64,
    index: Option<DeltaKeyIndex>,
    /// Relevant base-relation inserts observed (monotone watermark).
    /// Completeness stamps compare against this; bumping it lazily
    /// invalidates every complete entry without scanning them.
    inserts_seen: u64,
    /// Drained after a panic mid-mutation (or a maintenance fallback):
    /// serves nothing and caches nothing until quarantine is lifted by
    /// revalidation.
    quarantined: bool,
}

impl PmvStore {
    /// Empty store per the config ("Initially, V_PM is empty").
    pub fn new(config: &PmvConfig) -> Self {
        PmvStore::with_capacity(config, config.l)
    }

    /// Empty store whose entry budget is `l` instead of `config.l`. The
    /// sharded [`crate::concurrent::SharedPmv`] builds one store per shard
    /// with capacity `⌈L/N⌉` so the shards together respect the view's
    /// global `L`.
    pub fn with_capacity(config: &PmvConfig, l: usize) -> Self {
        let l = l.max(1);
        PmvStore {
            entries: FxHashMap::default(),
            policy: config.policy.build(l),
            policy_kind: config.policy,
            f: config.f,
            bytes: 0,
            evictions: 0,
            index: None,
            inserts_seen: 0,
            quarantined: false,
        }
    }

    /// Attach the delta-key maintenance index (must be done while the
    /// store is empty). Subsumes the Section 3.4 maintenance filter: it
    /// answers the same may-affect question *and* yields the supported
    /// view tuples directly.
    pub fn enable_index(&mut self, index: DeltaKeyIndex) {
        debug_assert!(self.entries.is_empty(), "enable the index before use");
        self.index = Some(index);
    }

    /// Whether a delta-key index is attached.
    pub fn index_enabled(&self) -> bool {
        self.index.is_some()
    }

    /// Could deleting `base_tuple` from template relation `rel` affect
    /// any cached tuple? Always `true` when the index is disabled.
    pub fn may_affect(&mut self, rel: usize, base_tuple: &Tuple) -> bool {
        match &mut self.index {
            Some(ix) => ix.may_affect(rel, base_tuple),
            None => true,
        }
    }

    /// Read-only variant of [`Self::may_affect`]: same sound answer, no
    /// `joins_avoided` bookkeeping. Lets the sharded maintenance path peek
    /// at every shard's index under read locks before deciding whether
    /// the ΔR join is needed at all.
    pub fn would_affect(&self, rel: usize, base_tuple: &Tuple) -> bool {
        match &self.index {
            Some(ix) => ix.check(rel, base_tuple),
            None => true,
        }
    }

    /// The cached view tuples a delete of `base_tuple` from relation
    /// `rel` must remove, straight from the delta-key index — the
    /// O(fanout) maintenance path. `None` when no index is attached or
    /// the relation projects no `Ls'` column (caller must run the ΔR
    /// join instead).
    pub fn supported(&self, rel: usize, base_tuple: &Tuple) -> Option<Vec<Supported>> {
        let ix = self.index.as_ref()?;
        if !ix.indexable(rel) {
            return None;
        }
        Some(ix.supported(rel, base_tuple))
    }

    /// Stable hash of `base_tuple`'s delta key for relation `rel` (the
    /// heavy-hitter sketch input), when an index is attached.
    pub fn delta_key_hash(&self, rel: usize, base_tuple: &Tuple) -> Option<u64> {
        self.index.as_ref().map(|ix| ix.base_key_hash(rel, base_tuple))
    }

    /// ΔR joins skipped by the delta-key index so far.
    pub fn joins_avoided(&self) -> u64 {
        self.index.as_ref().map_or(0, DeltaKeyIndex::joins_avoided)
    }

    /// Record one relevant base-relation insert. Bumping the watermark
    /// lazily invalidates every complete-entry stamp; no entry scan.
    pub fn note_insert(&mut self) {
        self.inserts_seen += 1;
    }

    /// Current insert watermark. A completeness claim established at
    /// watermark `w` holds only while `w == inserts_seen()`.
    pub fn inserts_seen(&self) -> u64 {
        self.inserts_seen
    }

    /// Mark `bcp`'s entry as holding the bcp's entire truth, observed at
    /// insert watermark `inserts_at`. No-op (and `false`) when the entry
    /// is absent or the watermark already moved — the caller's fill raced
    /// a relevant insert and completeness cannot be claimed.
    pub fn mark_complete(&mut self, bcp: &BcpKey, inserts_at: u64) -> bool {
        if self.quarantined || inserts_at != self.inserts_seen {
            return false;
        }
        match self.entries.get_mut(bcp) {
            Some(e) => {
                e.complete = Some(inserts_at);
                true
            }
            None => false,
        }
    }

    /// Whether `bcp`'s entry currently holds the bcp's entire truth:
    /// marked complete and no relevant insert has landed since.
    pub fn entry_complete(&self, bcp: &BcpKey) -> bool {
        !self.quarantined
            && self
                .entries
                .get(bcp)
                .is_some_and(|e| e.complete == Some(self.inserts_seen))
    }

    /// All bcps whose entries currently hold their full truth (valid
    /// completeness claims at the current insert watermark). Used to
    /// carry claims into the published epoch-mode shard views.
    pub fn complete_bcps(&self) -> Vec<BcpKey> {
        if self.quarantined {
            return Vec::new();
        }
        self.entries
            .iter()
            .filter(|(_, e)| e.complete == Some(self.inserts_seen))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Whether any entry currently carries a valid completeness claim.
    /// Cheap pre-check: an insert batch only needs to republish a shard's
    /// read view when there are claims to invalidate.
    pub fn any_complete(&self) -> bool {
        !self.quarantined
            && self
                .entries
                .values()
                .any(|e| e.complete == Some(self.inserts_seen))
    }

    /// Max tuples per bcp (`F`).
    pub fn f(&self) -> usize {
        self.f
    }

    /// Max bcp entries (`L`).
    pub fn l(&self) -> usize {
        self.policy.capacity()
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Resident fraction of the policy's capacity in `[0, 1]` — the
    /// `occupancy` telemetry gauge.
    pub fn occupancy(&self) -> f64 {
        self.policy.occupancy()
    }

    /// Whether the store is quarantined (drained, serving nothing).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Drain the store after its contents became untrustworthy (a panic
    /// mid-mutation, or maintenance that could not repair it): every
    /// entry is dropped, the policy and index are rebuilt empty, and the
    /// store stops serving and caching until [`Self::lift_quarantine`].
    /// Removal-only, so it can never cause a stale tuple to be served.
    pub fn quarantine(&mut self) {
        self.entries.clear();
        self.bytes = 0;
        self.policy = self.policy_kind.build(self.policy.capacity());
        if let Some(ix) = &mut self.index {
            ix.clear();
        }
        self.quarantined = true;
    }

    /// Resume serving after revalidation confirmed (or re-established)
    /// consistency.
    pub fn lift_quarantine(&mut self) {
        self.quarantined = false;
    }

    /// Tuples cached for `bcp` (with their fill epochs), if resident.
    /// Does not touch the policy.
    pub fn lookup(&self, bcp: &BcpKey) -> Option<&[CachedTuple]> {
        if self.quarantined {
            return None;
        }
        self.entries.get(bcp).map(|e| e.tuples.as_slice())
    }

    /// Record a query access to `bcp` (Operation O2) and count a hit if it
    /// served results.
    pub fn touch(&mut self, bcp: &BcpKey, served: bool) {
        self.policy.touch(bcp);
        if served {
            if let Some(e) = self.entries.get_mut(bcp) {
                e.hits += 1;
            }
        }
    }

    /// Ask the policy to make `bcp` resident (Operation O3, once per bcp
    /// per query). Evicted entries are purged.
    pub fn admit(&mut self, bcp: &BcpKey) -> Residency {
        if self.quarantined {
            return Residency::Probation;
        }
        match self.policy.admit(bcp.clone()) {
            AdmitOutcome::Resident { evicted } => {
                for victim in evicted {
                    if let Some(e) = self.entries.remove(&victim) {
                        self.bytes -= Self::key_bytes(&victim)
                            + e.tuples
                                .iter()
                                .map(|(t, _)| Self::tuple_bytes(t))
                                .sum::<usize>();
                        self.evictions += 1;
                        if let Some(ix) = &mut self.index {
                            for (t, _) in &e.tuples {
                                ix.remove(t);
                            }
                        }
                    }
                }
                Residency::Resident
            }
            AdmitOutcome::Probation => Residency::Probation,
        }
    }

    /// Store one result tuple under a resident `bcp`. Returns false when
    /// the bcp is not resident or already holds `F` tuples. Convenience
    /// wrapper over [`Self::push_arc`] for single-writer callers that do
    /// not track epochs.
    pub fn push_tuple(&mut self, bcp: &BcpKey, tuple: Tuple) -> bool {
        self.push_arc(bcp, Arc::new(tuple), 0)
    }

    /// Store one shared result tuple under a resident `bcp`, stamped with
    /// the epoch it was computed at. The `Arc` is moved in — no tuple
    /// data is copied. Returns false when the bcp is not resident or
    /// already holds `F` tuples.
    pub fn push_arc(&mut self, bcp: &BcpKey, tuple: Arc<Tuple>, epoch: u64) -> bool {
        if self.quarantined || !self.policy.contains(bcp) {
            return false;
        }
        let entry = self.entries.entry(bcp.clone()).or_insert_with(|| Entry {
            tuples: Vec::with_capacity(self.f.min(8)),
            hits: 0,
            complete: None,
        });
        if entry.tuples.len() >= self.f {
            return false;
        }
        self.bytes += Self::tuple_bytes(&tuple)
            + if entry.tuples.is_empty() {
                Self::key_bytes(bcp)
            } else {
                0
            };
        if let Some(ix) = &mut self.index {
            ix.add(bcp, &tuple);
        }
        entry.tuples.push((tuple, epoch));
        true
    }

    /// Remove one occurrence of `tuple` under `bcp` (PMV maintenance after
    /// a base-relation delete/update). Returns whether a tuple was removed.
    pub fn remove_tuple(&mut self, bcp: &BcpKey, tuple: &Tuple) -> bool {
        let Some(entry) = self.entries.get_mut(bcp) else {
            return false;
        };
        let Some(pos) = entry.tuples.iter().position(|(t, _)| &**t == tuple) else {
            return false;
        };
        entry.tuples.swap_remove(pos);
        // A removal may be conservative (the base may still derive this
        // tuple another way), so the entry can no longer claim to hold
        // the bcp's entire truth.
        entry.complete = None;
        self.bytes -= Self::tuple_bytes(tuple);
        if let Some(ix) = &mut self.index {
            ix.remove(tuple);
        }
        if entry.tuples.is_empty() {
            self.entries.remove(bcp);
            self.bytes -= Self::key_bytes(bcp);
            self.policy.remove(bcp);
        }
        true
    }

    /// Popularity of `bcp`: number of queries it served (ranking
    /// extension; see `ext::ranking`).
    pub fn hit_count(&self, bcp: &BcpKey) -> u64 {
        self.entries.get(bcp).map_or(0, |e| e.hits)
    }

    /// Number of bcp entries currently stored.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Total cached tuples.
    pub fn tuple_count(&self) -> usize {
        self.entries.values().map(|e| e.tuples.len()).sum()
    }

    /// Highest fill epoch of any cached tuple (0 when empty) — the
    /// `staleness` telemetry gauge compares this against the current
    /// database version.
    pub fn max_fill_epoch(&self) -> u64 {
        self.entries
            .values()
            .flat_map(|e| e.tuples.iter().map(|(_, ep)| *ep))
            .max()
            .unwrap_or(0)
    }

    /// Approximate bytes cached (tuples + keys).
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Total entries evicted by the policy so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterate over `(bcp, cached tuples)` (diagnostics/tests).
    pub fn iter(&self) -> impl Iterator<Item = (&BcpKey, &[CachedTuple])> {
        self.entries.iter().map(|(k, e)| (k, e.tuples.as_slice()))
    }

    fn tuple_bytes(t: &Tuple) -> usize {
        std::mem::size_of::<Tuple>() + t.heap_size()
    }

    fn key_bytes(k: &BcpKey) -> usize {
        std::mem::size_of::<BcpKey>() + k.heap_size()
    }

    /// Check structural invariants, returning each violation as a
    /// message. Empty means consistent. Never panics.
    pub fn check(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.entries.len() > self.policy.capacity() {
            violations.push(format!(
                "more entries than L: {} > {}",
                self.entries.len(),
                self.policy.capacity()
            ));
        }
        for (k, e) in &self.entries {
            if e.tuples.is_empty() {
                violations.push(format!("empty entry for {k:?}"));
            }
            if e.tuples.len() > self.f {
                violations.push(format!("entry over F for {k:?}"));
            }
            if !self.policy.contains(k) {
                violations.push(format!("entry {k:?} not resident in policy"));
            }
        }
        let recomputed: usize = self
            .entries
            .iter()
            .map(|(k, e)| {
                Self::key_bytes(k)
                    + e.tuples
                        .iter()
                        .map(|(t, _)| Self::tuple_bytes(t))
                        .sum::<usize>()
            })
            .sum();
        if recomputed != self.bytes {
            violations.push(format!(
                "byte accounting drifted: recomputed {recomputed} != tracked {}",
                self.bytes
            ));
        }
        if let Some(ix) = &self.index {
            let cached: Vec<Tuple> = self
                .entries
                .values()
                .flat_map(|e| e.tuples.iter().map(|(t, _)| (**t).clone()))
                .collect();
            violations.extend(ix.check_against(&cached));
        }
        for (k, e) in &self.entries {
            if let Some(w) = e.complete {
                if w > self.inserts_seen {
                    violations.push(format!(
                        "completeness stamp from the future for {k:?}: {w} > {}",
                        self.inserts_seen
                    ));
                }
            }
        }
        violations
    }

    /// Check structural invariants; panics on violation. Test helper.
    pub fn validate(&self) {
        let violations = self.check();
        assert!(
            violations.is_empty(),
            "store invariants violated: {violations:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcp::BcpDim;
    use pmv_storage::{tuple, Value};

    fn bcp(x: i64) -> BcpKey {
        BcpKey::new(vec![BcpDim::Eq(Value::Int(x))])
    }

    fn cfg(f: usize, l: usize, policy: PolicyKind) -> PmvConfig {
        PmvConfig::new(f, l, policy)
    }

    #[test]
    fn push_respects_f() {
        let mut s = PmvStore::new(&cfg(2, 10, PolicyKind::Clock));
        assert_eq!(s.admit(&bcp(1)), Residency::Resident);
        assert!(s.push_tuple(&bcp(1), tuple![1i64, 1i64]));
        assert!(s.push_tuple(&bcp(1), tuple![1i64, 2i64]));
        assert!(!s.push_tuple(&bcp(1), tuple![1i64, 3i64]));
        assert_eq!(s.lookup(&bcp(1)).unwrap().len(), 2);
        s.validate();
    }

    #[test]
    fn push_requires_residency() {
        let mut s = PmvStore::new(&cfg(2, 10, PolicyKind::TwoQ));
        assert_eq!(s.admit(&bcp(1)), Residency::Probation);
        assert!(!s.push_tuple(&bcp(1), tuple![1i64]));
        assert_eq!(s.entry_count(), 0);
        // Second admission promotes.
        assert_eq!(s.admit(&bcp(1)), Residency::Resident);
        assert!(s.push_tuple(&bcp(1), tuple![1i64]));
        s.validate();
    }

    #[test]
    fn eviction_purges_entry_and_bytes() {
        let mut s = PmvStore::new(&cfg(1, 2, PolicyKind::Clock));
        for i in 0..2i64 {
            s.admit(&bcp(i));
            s.push_tuple(&bcp(i), tuple![i]);
        }
        assert_eq!(s.entry_count(), 2);
        let before = s.byte_size();
        s.admit(&bcp(99)); // evicts one of the two
        assert_eq!(s.entry_count(), 1);
        assert!(s.byte_size() < before);
        assert_eq!(s.evictions(), 1);
        s.validate();
    }

    #[test]
    fn remove_tuple_multiset_semantics() {
        let mut s = PmvStore::new(&cfg(3, 10, PolicyKind::Clock));
        s.admit(&bcp(1));
        s.push_tuple(&bcp(1), tuple![7i64]);
        s.push_tuple(&bcp(1), tuple![7i64]);
        assert!(s.remove_tuple(&bcp(1), &tuple![7i64]));
        assert_eq!(s.lookup(&bcp(1)).unwrap().len(), 1);
        assert!(s.remove_tuple(&bcp(1), &tuple![7i64]));
        // Entry is gone entirely.
        assert!(s.lookup(&bcp(1)).is_none());
        assert!(!s.remove_tuple(&bcp(1), &tuple![7i64]));
        assert_eq!(s.byte_size(), 0);
        s.validate();
    }

    #[test]
    fn removed_entry_frees_policy_slot() {
        let mut s = PmvStore::new(&cfg(1, 1, PolicyKind::Clock));
        s.admit(&bcp(1));
        s.push_tuple(&bcp(1), tuple![1i64]);
        s.remove_tuple(&bcp(1), &tuple![1i64]);
        // New bcp should be admitted without evicting anything.
        s.admit(&bcp(2));
        s.push_tuple(&bcp(2), tuple![2i64]);
        assert_eq!(s.evictions(), 0);
        s.validate();
    }

    #[test]
    fn hits_track_serving() {
        let mut s = PmvStore::new(&cfg(1, 4, PolicyKind::Clock));
        s.admit(&bcp(1));
        s.push_tuple(&bcp(1), tuple![1i64]);
        assert_eq!(s.hit_count(&bcp(1)), 0);
        s.touch(&bcp(1), true);
        s.touch(&bcp(1), true);
        s.touch(&bcp(1), false);
        assert_eq!(s.hit_count(&bcp(1)), 2);
    }

    #[test]
    fn completeness_tracks_inserts_and_removals() {
        let mut s = PmvStore::new(&cfg(4, 10, PolicyKind::Clock));
        s.admit(&bcp(1));
        s.push_tuple(&bcp(1), tuple![1i64]);
        s.push_tuple(&bcp(1), tuple![2i64]);
        assert!(!s.entry_complete(&bcp(1)));
        let w = s.inserts_seen();
        assert!(s.mark_complete(&bcp(1), w));
        assert!(s.entry_complete(&bcp(1)));
        // A relevant insert invalidates every completeness claim.
        s.note_insert();
        assert!(!s.entry_complete(&bcp(1)));
        // Re-marking with the stale watermark must be refused.
        assert!(!s.mark_complete(&bcp(1), w));
        assert!(s.mark_complete(&bcp(1), s.inserts_seen()));
        assert!(s.entry_complete(&bcp(1)));
        // A maintenance removal clears the claim (conservative).
        assert!(s.remove_tuple(&bcp(1), &tuple![1i64]));
        assert!(!s.entry_complete(&bcp(1)));
        // Absent entries can never be marked.
        assert!(!s.mark_complete(&bcp(9), s.inserts_seen()));
        s.validate();
    }

    #[test]
    fn supported_lookup_via_index() {
        use crate::delta_index::DeltaKeyIndex;
        use pmv_query::TemplateBuilder;
        use pmv_storage::{Column, ColumnType, Schema};
        // Single relation r(a, f), select a, cond_eq f — Ls' = (a, f).
        let t = TemplateBuilder::new("t")
            .relation(Schema::new(
                "r",
                vec![
                    Column::new("a", ColumnType::Int),
                    Column::new("f", ColumnType::Int),
                ],
            ))
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap();
        let mut s = PmvStore::new(&cfg(4, 10, PolicyKind::Clock));
        s.enable_index(DeltaKeyIndex::new(&t));
        assert!(s.index_enabled());
        s.admit(&bcp(1));
        s.push_tuple(&bcp(1), tuple![7i64, 1i64]);
        // Deleting base tuple (a=7, f=1) supports the cached view tuple.
        let hit = s.supported(0, &tuple![7i64, 1i64]).unwrap();
        assert_eq!(hit.len(), 1);
        assert_eq!(*hit[0].1, tuple![7i64, 1i64]);
        assert!(s.supported(0, &tuple![8i64, 1i64]).unwrap().is_empty());
        assert!(s.delta_key_hash(0, &tuple![7i64, 1i64]).is_some());
        // Removing the supported tuple empties the index too.
        for (b, tu) in hit {
            assert!(s.remove_tuple(&b, &tu));
        }
        assert!(s.supported(0, &tuple![7i64, 1i64]).unwrap().is_empty());
        s.validate();
    }

    #[test]
    fn refill_after_partial_removal() {
        // The paper's cj < F case: maintenance removed a tuple, a later
        // query refills the entry.
        let mut s = PmvStore::new(&cfg(2, 4, PolicyKind::Clock));
        s.admit(&bcp(1));
        s.push_tuple(&bcp(1), tuple![1i64]);
        s.push_tuple(&bcp(1), tuple![2i64]);
        s.remove_tuple(&bcp(1), &tuple![1i64]);
        assert_eq!(s.admit(&bcp(1)), Residency::Resident);
        assert!(s.push_tuple(&bcp(1), tuple![3i64]));
        assert_eq!(s.lookup(&bcp(1)).unwrap().len(), 2);
        s.validate();
    }
}
