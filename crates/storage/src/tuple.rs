//! Tuples: immutable boxed slices of values.
//!
//! Tuples are compared, hashed, and cloned constantly by the PMV pipeline —
//! the dedup structure `DS` of Operation O3 is a multiset of result tuples
//! (Section 3.3) — so the representation is a `Box<[Value]>` (two words)
//! with cheap (`Arc`) string clones.

use std::fmt;
use std::ops::Index;

use crate::size::HeapSize;
use crate::value::Value;

/// An immutable row of values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// Values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Project this tuple onto the given field indices (in order).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(
            indices
                .iter()
                .map(|&i| self.values[i].clone())
                .collect::<Vec<_>>(),
        )
    }

    /// Concatenate two tuples (used when forming join results).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

impl Tuple {
    fn fmt_inner(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_inner(f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_inner(f)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl HeapSize for Tuple {
    fn heap_size(&self) -> usize {
        self.values.heap_size()
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, "abc", 2.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let t = tuple![1i64, "abc", 2.5f64];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t[1], Value::str("abc"));
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let t = tuple![10i64, 20i64, 30i64];
        let p = t.project(&[2, 0, 0]);
        assert_eq!(p, tuple![30i64, 10i64, 10i64]);
    }

    #[test]
    fn concat_joins_fields() {
        let a = tuple![1i64];
        let b = tuple!["x", 2i64];
        assert_eq!(a.concat(&b), tuple![1i64, "x", 2i64]);
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(tuple![1i64, "a"]);
        assert!(s.contains(&tuple![1i64, "a"]));
        assert!(!s.contains(&tuple![1i64, "b"]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(tuple![1i64, "a"].to_string(), "(1, 'a')");
    }

    #[test]
    fn heap_size_counts_strings_and_slice() {
        let t = tuple![1i64, "abcd"];
        let expected = 2 * std::mem::size_of::<Value>() + 4;
        assert_eq!(t.heap_size(), expected);
    }
}
