//! PMV maintenance under base-relation changes (paper Section 3.4).
//!
//! Demonstrates all three arms:
//!   * inserts require **no** PMV work (the headline advantage),
//!   * deletes evict exactly the affected cached tuples via the ΔR join,
//!   * updates are ignored unless they touch attributes in Ls' or Cjoin.
//!
//! Also contrasts against a traditional materialized view, which must
//! join on *every* change — including inserts.
//!
//! ```bash
//! cargo run --release --example maintenance
//! ```

use pmv::core::TraditionalMv;
use pmv::index::IndexDef;
use pmv::prelude::*;
use pmv::query::Transaction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "orders",
        vec![
            Column::new("okey", ColumnType::Int),
            Column::new("day", ColumnType::Int),
            Column::new("note", ColumnType::Str),
        ],
    ))?;
    db.create_relation(Schema::new(
        "items",
        vec![
            Column::new("okey", ColumnType::Int),
            Column::new("sku", ColumnType::Int),
            Column::new("qty", ColumnType::Int),
        ],
    ))?;
    let mut order_rows = Vec::new();
    for i in 0..2_000i64 {
        order_rows.push(db.relation("orders")?.read().len());
        db.insert("orders", tuple![i, i % 30, "fresh"])?;
        db.insert("items", tuple![i, i % 50, 1 + i % 5])?;
    }
    db.create_index(IndexDef::btree("orders", vec![0]))?;
    db.create_index(IndexDef::btree("orders", vec![1]))?;
    db.create_index(IndexDef::btree("items", vec![0]))?;
    db.create_index(IndexDef::btree("items", vec![1]))?;

    let template = TemplateBuilder::new("orders_by_day_sku")
        .relation(db.schema("orders")?)
        .relation(db.schema("items")?)
        .join("orders", "okey", "items", "okey")?
        .select("orders", "okey")?
        .select("items", "qty")?
        .cond_eq("orders", "day")?
        .cond_eq("items", "sku")?
        .build()?;
    let def = PartialViewDef::all_equality("day_sku_pmv", template.clone())?;
    let mut pmv = Pmv::new(def, PmvConfig::default());
    let pipeline = PmvPipeline::new();
    // The MV baseline materializes the whole join.
    let mut mv = TraditionalMv::materialize(&db, template.clone())?;
    println!(
        "traditional MV holds {} rows ({} bytes); the PMV starts empty",
        mv.len(),
        mv.byte_size()
    );

    // Warm the PMV on the hot cell (day 3, sku 3).
    let q = template.bind(vec![
        Condition::Equality(vec![Value::Int(3)]),
        Condition::Equality(vec![Value::Int(3)]),
    ])?;
    pipeline.run(&db, &mut pmv, &q)?;
    println!(
        "after one query the PMV caches {} tuples",
        pmv.store().tuple_count()
    );

    // --- Insert: free for the PMV, a join for the MV. ---
    let mut txn = Transaction::begin(&mut db);
    txn.insert("orders", tuple![9_001i64, 3i64, "new"])?;
    txn.insert("items", tuple![9_001i64, 3i64, 9i64])?;
    let batches = txn.commit();
    for b in &batches {
        let out = pipeline.maintain(&db, &mut pmv, b)?;
        println!(
            "PMV maintenance for insert into {}: {} inserts ignored, {} joins",
            b.relation(),
            out.inserts_ignored,
            out.deletes_joined + out.updates_joined
        );
        mv.maintain(&db, b)?;
    }
    println!(
        "MV was forced to compute {} joins so far (PMV computed none for inserts)",
        mv.stats().joins_computed
    );

    // The PMV picks the new row up for free on the next query (c_j < F
    // refill), still serving old partial results immediately.
    let out = pipeline.run(&db, &mut pmv, &q)?;
    println!(
        "next query: {} early + {} late results, all exactly once = {}",
        out.partial.len(),
        out.remaining.len(),
        out.ds_leftover == 0
    );

    // --- Delete: the ΔR join evicts exactly the affected cache entries. ---
    let victim_row = db
        .relation("orders")?
        .read()
        .iter()
        .find(|(_, t)| t.get(1) == &Value::Int(3) && t.get(0) == &Value::Int(3))
        .map(|(r, _)| r)
        .expect("day-3 order exists");
    let mut txn = Transaction::begin(&mut db);
    txn.delete("orders", victim_row)?;
    let batches = txn.commit();
    let before = pmv.store().tuple_count();
    for b in &batches {
        let out = pipeline.maintain(&db, &mut pmv, b)?;
        println!(
            "PMV maintenance for delete: {} view tuples evicted (join produced {} rows)",
            out.view_tuples_removed, out.join_rows
        );
        mv.maintain(&db, b)?;
    }
    println!(
        "PMV tuples: {} -> {}; queries never see the deleted data:",
        before,
        pmv.store().tuple_count()
    );
    let out = pipeline.run(&db, &mut pmv, &q)?;
    println!(
        "  re-run: {} early + {} late, consistent = {}",
        out.partial.len(),
        out.remaining.len(),
        out.ds_leftover == 0
    );

    // --- Update: irrelevant attributes are ignored. ---
    let some_row = db
        .relation("orders")?
        .read()
        .iter()
        .find(|(_, t)| t.get(1) == &Value::Int(3))
        .map(|(r, t)| (r, t.clone()))
        .expect("day-3 order exists");
    let mut txn = Transaction::begin(&mut db);
    // `note` appears in neither Ls' nor Cjoin: no maintenance needed.
    let mut vals: Vec<Value> = some_row.1.values().to_vec();
    vals[2] = Value::str("touched");
    txn.update("orders", some_row.0, Tuple::new(vals))?;
    let batches = txn.commit();
    for b in &batches {
        let out = pipeline.maintain(&db, &mut pmv, b)?;
        println!(
            "PMV maintenance for note-only update: {} updates ignored, {} joined",
            out.updates_ignored, out.updates_joined
        );
    }

    println!("\nfinal PMV stats: {:?}", pmv.stats());
    println!("final MV maintenance stats: {:?}", mv.stats());
    Ok(())
}
