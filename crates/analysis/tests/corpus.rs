//! Verifier corpus: one invalid template per diagnostic code
//! PMV001–PMV006 (each must be denied under the default policy), plus a
//! valid suite modelled on the repo's examples and bench templates
//! (each must verify clean).
//!
//! This is the ISSUE 3 acceptance criterion for the template verifier:
//! ≥6 invalid definitions rejected, while every template the repo
//! actually ships keeps registering.

use std::sync::Arc;

use pmv_analysis::{verify_parts, DiagCode, FilterSpec, VerifyOptions};
use pmv_cache::PolicyKind;
use pmv_core::{Discretizer, PmvConfig};
use pmv_query::{Interval, QueryTemplate, TemplateBuilder};
use pmv_storage::{Column, ColumnType, Schema, Value};

fn schema_r() -> Schema {
    Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
            Column::new("s", ColumnType::Str),
        ],
    )
}

fn schema_s() -> Schema {
    Schema::new(
        "s",
        vec![
            Column::new("d", ColumnType::Int),
            Column::new("e", ColumnType::Int),
        ],
    )
}

/// `SELECT r.a FROM r WHERE r.f IN <interval>` — the paper's
/// form-based-UI range template.
fn interval_template() -> Arc<QueryTemplate> {
    TemplateBuilder::new("range_f")
        .relation(schema_r())
        .select("r", "a")
        .unwrap()
        .cond_interval("r", "f")
        .unwrap()
        .build()
        .unwrap()
}

fn verify_default(t: &Arc<QueryTemplate>, d: &[Option<Discretizer>]) -> pmv_analysis::VerifyReport {
    verify_parts(t, d, &PmvConfig::default(), &VerifyOptions::default())
}

// ---------------------------------------------------------------------------
// Invalid corpus — one denial per code
// ---------------------------------------------------------------------------

#[test]
fn invalid_pmv001_interval_without_discretizer() {
    // `PartialViewDef::new` would reject this too; the verifier exists
    // so the mismatch is reported as a typed diagnostic pre-construction.
    let report = verify_default(&interval_template(), &[None]);
    assert!(report.denied(), "{report}");
    assert!(report.has(DiagCode::NonDiscretizablePredicate));
}

#[test]
fn invalid_pmv002_descending_dividers() {
    let d = Discretizer::from_raw(vec![Value::Int(20), Value::Int(10)]);
    let report = verify_default(&interval_template(), &[Some(d)]);
    assert!(report.denied(), "{report}");
    assert!(report.has(DiagCode::OverlappingBasicIntervals));
}

#[test]
fn invalid_pmv002_duplicate_dividers() {
    let d = Discretizer::from_raw(vec![Value::Int(10), Value::Int(10), Value::Int(30)]);
    let report = verify_default(&interval_template(), &[Some(d)]);
    assert!(report.denied(), "{report}");
    assert!(report.has(DiagCode::OverlappingBasicIntervals));
}

#[test]
fn invalid_pmv003_off_domain_divider() {
    // A string divider on the Int column `r.f`: every basic interval
    // boundary comparison is cross-type, so the grid has gaps.
    let d = Discretizer::from_raw(vec![Value::str("x")]);
    let report = verify_default(&interval_template(), &[Some(d)]);
    assert!(report.denied(), "{report}");
    assert!(report.has(DiagCode::GridGapOnDimension));
}

#[test]
fn invalid_pmv004_storage_bound_exceeded() {
    let d = vec![Some(Discretizer::int_grid(0, 100, 10))];
    // L=10_000 × F=4 × At(est.) comfortably exceeds a 1 KiB budget.
    let config = PmvConfig::new(4, 10_000, PolicyKind::Clock);
    let opts = VerifyOptions {
        byte_budget: Some(1024),
        ..Default::default()
    };
    let report = verify_parts(&interval_template(), &d, &config, &opts);
    assert!(report.denied(), "{report}");
    assert!(report.has(DiagCode::StorageBoundExceeded));
}

#[test]
fn invalid_pmv005_unsound_maintenance_filter() {
    let t = interval_template();
    let mut tampered = FilterSpec::for_template(&t);
    // Drop one keyed column from relation 0: deletes matching on that
    // column would slip past the filter, leaving stale view tuples.
    tampered.per_relation[0].0.pop();
    tampered.per_relation[0].1.pop();
    let opts = VerifyOptions {
        filter: Some(tampered),
        ..Default::default()
    };
    let d = vec![Some(Discretizer::int_grid(0, 100, 10))];
    let report = verify_parts(&t, &d, &PmvConfig::default(), &opts);
    assert!(report.denied(), "{report}");
    assert!(report.has(DiagCode::UnsoundMaintFilter));
}

#[test]
fn invalid_pmv006_fixed_pred_pins_condition_attr() {
    // `r.f = 5` in Cjoin while `r.f` is also the interval condition
    // attribute: every basic interval not containing 5 is dead weight.
    let t = TemplateBuilder::new("pinned")
        .relation(schema_r())
        .select("r", "a")
        .unwrap()
        .fixed("r", "f", 5i64)
        .unwrap()
        .cond_interval("r", "f")
        .unwrap()
        .build()
        .unwrap();
    let d = vec![Some(Discretizer::int_grid(0, 100, 10))];
    let report = verify_default(&t, &d);
    assert!(report.denied(), "{report}");
    assert!(report.has(DiagCode::DeadBcp));
}

/// Every code in the protocol is exercised by the corpus above.
#[test]
fn corpus_covers_all_codes() {
    let codes: Vec<&str> = DiagCode::ALL.iter().map(|c| c.code()).collect();
    assert_eq!(
        codes,
        ["PMV001", "PMV002", "PMV003", "PMV004", "PMV005", "PMV006"]
    );
}

// ---------------------------------------------------------------------------
// Valid suite — templates the repo actually ships must verify clean
// ---------------------------------------------------------------------------

fn assert_clean(report: &pmv_analysis::VerifyReport) {
    assert!(!report.denied(), "{report}");
    assert!(report.diagnostics.is_empty(), "{report}");
}

#[test]
fn valid_equality_template() {
    // The manager-test / example shape: equality condition, no
    // discretizer slot filled.
    let t = TemplateBuilder::new("by_f")
        .relation(schema_r())
        .select("r", "a")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .build()
        .unwrap();
    assert_clean(&verify_default(&t, &[None]));
}

#[test]
fn valid_interval_template_with_int_grid() {
    let d = vec![Some(Discretizer::int_grid(0, 100, 64))];
    assert_clean(&verify_default(&interval_template(), &d));
}

#[test]
fn valid_interval_template_with_learned_dividers() {
    // Dividers learned from a workload trace are normalized by
    // construction (the PR 3 `learn_from_trace` satellite).
    let trace = vec![
        Interval::half_open(10i64, 20i64),
        Interval::open(15i64, 40i64),
        Interval::half_open(10i64, 20i64),
    ];
    let d = vec![Some(Discretizer::learn_from_trace(&trace, 8))];
    assert_clean(&verify_default(&interval_template(), &d));
}

#[test]
fn valid_join_template_with_fixed_pred() {
    // Bench-suite shape: two relations, join, a fixed pred on a
    // *non-condition* attribute, equality + interval conditions.
    let t = TemplateBuilder::new("join_rs")
        .relation(schema_r())
        .relation(schema_s())
        .join("r", "a", "s", "d")
        .unwrap()
        .fixed("r", "s", Value::str("live"))
        .unwrap()
        .select("r", "a")
        .unwrap()
        .select("s", "e")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .cond_interval("s", "e")
        .unwrap()
        .build()
        .unwrap();
    let d = vec![None, Some(Discretizer::int_grid(0, 1000, 32))];
    assert_clean(&verify_default(&t, &d));
}

#[test]
fn json_rendering_is_well_formed_for_denials() {
    let report = verify_default(&interval_template(), &[None]);
    let json = report.to_json();
    assert!(json.starts_with("{\"denied\":true"));
    assert!(json.contains("\"code\":\"PMV001\""));
    assert!(json.contains("\"paper_section\":"));
}
