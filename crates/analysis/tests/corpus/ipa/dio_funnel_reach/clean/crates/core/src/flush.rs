// IPA corpus (clean): the durable-crate function reaches the
// filesystem only through the sanctioned `wal::dio` funnel.

fn fx_flush(path: &Path, bytes: &[u8]) -> Result<(), Error> {
    fx_spill(path, bytes)
}
