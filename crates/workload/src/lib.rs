//! Workload substrate for the PMV reproduction.
//!
//! * [`zipf`] — a Zipfian sampler (the paper's Section 4.1 draws bcps
//!   from a Zipfian distribution with parameter α).
//! * [`sim`] — the Section 4.1 simulation study: a stream of queries,
//!   each touching `h` bcps, against a policy-managed PMV; reports hit
//!   probability (Figures 6 and 7).
//! * [`tpcr`] — a TPC-R-style data generator with the paper's Table 1
//!   cardinality ratios (customer : orders : lineitem = 0.15 : 1.5 : 6
//!   million per scale factor; 10 orders/customer, 4 lineitems/order).
//! * [`queries`] — the paper's query templates T1 and T2 plus query
//!   generators for the Section 4.2 experiments.

pub mod queries;
pub mod sim;
pub mod tpcr;
pub mod zipf;

pub use queries::{t1_query, t2_query, template_t1, template_t2};
pub use sim::{run_sim, SimConfig, SimResult};
pub use tpcr::{generate, standard_indexes, TpcrConfig, TpcrStats};
pub use zipf::Zipf;
