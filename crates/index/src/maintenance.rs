//! Index definitions and incremental maintenance from storage deltas.

use pmv_storage::{Delta, DeltaBatch, Tuple};

use crate::key::IndexKey;
use crate::{AnyIndex, BTreeIndex, HashIndex, SecondaryIndex};

/// Shape of index to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexShape {
    /// Ordered B+-tree (supports range scans).
    BTree,
    /// Hash (equality probes only).
    Hash,
}

/// Definition of a secondary index: which relation, which columns, which
/// shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexDef {
    /// Relation the index covers.
    pub relation: String,
    /// Indexed column positions, in key order.
    pub columns: Vec<usize>,
    /// Physical shape.
    pub shape: IndexShape,
}

impl IndexDef {
    /// B+-tree index definition.
    pub fn btree(relation: impl Into<String>, columns: Vec<usize>) -> Self {
        IndexDef {
            relation: relation.into(),
            columns,
            shape: IndexShape::BTree,
        }
    }

    /// Hash index definition.
    pub fn hash(relation: impl Into<String>, columns: Vec<usize>) -> Self {
        IndexDef {
            relation: relation.into(),
            columns,
            shape: IndexShape::Hash,
        }
    }

    /// Instantiate an empty index of this shape.
    pub fn build_empty(&self) -> AnyIndex {
        match self.shape {
            IndexShape::BTree => AnyIndex::BTree(BTreeIndex::new()),
            IndexShape::Hash => AnyIndex::Hash(HashIndex::new()),
        }
    }

    /// Key of `tuple` under this definition.
    pub fn key_of(&self, tuple: &Tuple) -> IndexKey {
        IndexKey::from_tuple(tuple, &self.columns)
    }

    /// Apply one delta to `index`.
    pub fn apply_delta(&self, index: &mut AnyIndex, delta: &Delta) {
        match delta {
            Delta::Insert { row, tuple } => index.insert(self.key_of(tuple), *row),
            Delta::Delete { row, tuple } => {
                let removed = index.remove(&self.key_of(tuple), *row);
                debug_assert!(removed, "delete of unindexed tuple");
            }
            Delta::Update { row, old, new } => {
                let old_key = self.key_of(old);
                let new_key = self.key_of(new);
                if old_key != new_key {
                    let removed = index.remove(&old_key, *row);
                    debug_assert!(removed, "update of unindexed tuple");
                    index.insert(new_key, *row);
                }
            }
        }
    }

    /// Apply a whole batch.
    pub fn apply_batch(&self, index: &mut AnyIndex, batch: &DeltaBatch) {
        debug_assert_eq!(batch.relation(), self.relation);
        for d in batch.deltas() {
            self.apply_delta(index, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::{tuple, RowId};

    #[test]
    fn key_extraction_follows_columns() {
        let def = IndexDef::hash("r", vec![1]);
        let t = tuple![10i64, 20i64];
        assert_eq!(
            def.key_of(&t),
            IndexKey::single(pmv_storage::Value::Int(20))
        );
    }

    #[test]
    fn deltas_maintain_index() {
        let def = IndexDef::btree("r", vec![0]);
        let mut idx = def.build_empty();
        let t1 = tuple![1i64, 100i64];
        let t2 = tuple![2i64, 200i64];

        def.apply_delta(
            &mut idx,
            &Delta::Insert {
                row: RowId(0),
                tuple: t1.clone(),
            },
        );
        def.apply_delta(
            &mut idx,
            &Delta::Insert {
                row: RowId(1),
                tuple: t2.clone(),
            },
        );
        assert_eq!(idx.get(&def.key_of(&t1)), &[RowId(0)]);

        // Update that changes the key moves the posting.
        let t1b = tuple![9i64, 100i64];
        def.apply_delta(
            &mut idx,
            &Delta::Update {
                row: RowId(0),
                old: t1.clone(),
                new: t1b.clone(),
            },
        );
        assert_eq!(idx.get(&def.key_of(&t1)), &[] as &[RowId]);
        assert_eq!(idx.get(&def.key_of(&t1b)), &[RowId(0)]);

        // Update that does not change the key is a no-op on the index.
        let t2b = tuple![2i64, 999i64];
        def.apply_delta(
            &mut idx,
            &Delta::Update {
                row: RowId(1),
                old: t2.clone(),
                new: t2b,
            },
        );
        assert_eq!(idx.get(&def.key_of(&t2)), &[RowId(1)]);

        def.apply_delta(
            &mut idx,
            &Delta::Delete {
                row: RowId(1),
                tuple: tuple![2i64, 999i64],
            },
        );
        assert_eq!(idx.get(&def.key_of(&t2)), &[] as &[RowId]);
    }

    #[test]
    fn batch_applies_in_order() {
        let def = IndexDef::hash("r", vec![0]);
        let mut idx = def.build_empty();
        let mut batch = DeltaBatch::new("r");
        batch.push(Delta::Insert {
            row: RowId(0),
            tuple: tuple![5i64],
        });
        batch.push(Delta::Delete {
            row: RowId(0),
            tuple: tuple![5i64],
        });
        def.apply_batch(&mut idx, &batch);
        assert_eq!(idx.entry_count(), 0);
    }
}
