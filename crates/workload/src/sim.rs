//! The Section 4.1 simulation study.
//!
//! A read-only database, one PMV, queries from one template. Each query's
//! `Cselect` breaks into exactly `h` basic condition parts, drawn iid
//! from a Zipfian distribution over 1M bcps. Every bcp has more than `F`
//! result tuples, so whenever a bcp is admitted its entry is full. The
//! PMV's bcps are managed by CLOCK (with `L = 1.02 × N` entries) or by
//! simplified 2Q (Am = N CLOCK-managed entries + A1 = N/2 FIFO key-only
//! entries) — the 2% difference reflects the storage cost of A1's
//! key-only entries ("the storage requirement of a basic condition part
//! is 4% of that of F query result tuples", so N' = 0.5·N keys cost
//! 0.02·N full entries).
//!
//! The *hit probability* is the fraction of queries for which at least
//! one of the `h` bcps is resident — a "partial hit" notion, unlike
//! classic caching's full hit.

use pmv_cache::{ClockPolicy, PolicyKind, ReplacementPolicy, TwoQPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::zipf::Zipf;

/// Simulation parameters (defaults reproduce the paper's setup).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Total basic condition parts in the query space (paper: 1M).
    pub total_bcps: usize,
    /// The 2Q Am size N. CLOCK gets `L = l_ratio × N` entries for storage
    /// parity.
    pub n: usize,
    /// CLOCK storage-parity factor (paper: 1.02).
    pub l_ratio: f64,
    /// Replacement policy under test.
    pub policy: PolicyKind,
    /// Zipf parameter α.
    pub alpha: f64,
    /// Basic condition parts per query (`h`).
    pub h: usize,
    /// Warm-up queries (paper: 1M).
    pub warmup: usize,
    /// Measured queries (paper: 1M).
    pub measure: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            total_bcps: 1_000_000,
            n: 20_000,
            l_ratio: 1.02,
            policy: PolicyKind::Clock,
            alpha: 1.07,
            h: 2,
            warmup: 1_000_000,
            measure: 1_000_000,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

/// Simulation output.
#[derive(Clone, Copy, Debug)]
pub struct SimResult {
    /// Fraction of measured queries with ≥ 1 resident bcp.
    pub hit_probability: f64,
    /// Resident bcp count at the end.
    pub resident: usize,
    /// Queries measured.
    pub measured: usize,
}

/// Map a policy kind to its simulation instance with storage parity.
fn build_policy(cfg: &SimConfig) -> Box<dyn ReplacementPolicy<u32>> {
    match cfg.policy {
        PolicyKind::Clock => {
            let l = ((cfg.n as f64) * cfg.l_ratio).round() as usize;
            Box::new(ClockPolicy::new(l.max(1)))
        }
        PolicyKind::TwoQ => Box::new(TwoQPolicy::new(cfg.n)),
        other => other.build(cfg.n),
    }
}

/// Run the simulation, mirroring the pipeline's policy interaction: each
/// query touches its (distinct) bcps, counts a hit if any is resident,
/// then admits each bcp once (Operation O3 always has > F tuples
/// available here).
pub fn run_sim(cfg: &SimConfig) -> SimResult {
    let zipf = Zipf::new(cfg.total_bcps, cfg.alpha);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut policy = build_policy(cfg);
    let mut bcps: Vec<u32> = Vec::with_capacity(cfg.h);

    let mut hits = 0usize;
    for round in 0..(cfg.warmup + cfg.measure) {
        bcps.clear();
        for _ in 0..cfg.h {
            bcps.push(zipf.sample(&mut rng) as u32);
        }
        // O2: residency check (the paper's hit definition) + touch.
        let mut hit = false;
        for &b in &bcps {
            if policy.contains(&b) {
                hit = true;
                policy.touch(&b);
            }
        }
        if hit && round >= cfg.warmup {
            hits += 1;
        }
        // O3: admit each distinct bcp once.
        for (i, &b) in bcps.iter().enumerate() {
            if bcps[..i].contains(&b) {
                continue;
            }
            policy.admit(b);
        }
    }
    SimResult {
        hit_probability: hits as f64 / cfg.measure.max(1) as f64,
        resident: policy.resident_count(),
        measured: cfg.measure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down config that still shows the paper's trends but runs in
    /// milliseconds.
    fn small(policy: PolicyKind, alpha: f64, h: usize) -> SimConfig {
        SimConfig {
            total_bcps: 50_000,
            n: 2_000,
            policy,
            alpha,
            h,
            warmup: 30_000,
            measure: 30_000,
            ..Default::default()
        }
    }

    #[test]
    fn hit_probability_increases_with_h() {
        let h1 = run_sim(&small(PolicyKind::Clock, 1.07, 1)).hit_probability;
        let h3 = run_sim(&small(PolicyKind::Clock, 1.07, 3)).hit_probability;
        let h5 = run_sim(&small(PolicyKind::Clock, 1.07, 5)).hit_probability;
        assert!(h1 < h3 && h3 < h5, "{h1} {h3} {h5}");
        assert!(h5 > 0.9, "h=5 should be near 1, got {h5}");
    }

    #[test]
    fn hit_probability_increases_with_alpha() {
        let lo = run_sim(&small(PolicyKind::Clock, 1.01, 2)).hit_probability;
        let hi = run_sim(&small(PolicyKind::Clock, 1.07, 2)).hit_probability;
        assert!(hi > lo, "α=1.07 ({hi}) must beat α=1.01 ({lo})");
    }

    #[test]
    fn two_q_beats_clock() {
        let clock = run_sim(&small(PolicyKind::Clock, 1.07, 2)).hit_probability;
        let two_q = run_sim(&small(PolicyKind::TwoQ, 1.07, 2)).hit_probability;
        assert!(
            two_q > clock,
            "2Q ({two_q}) must beat CLOCK ({clock}) under skew"
        );
    }

    #[test]
    fn hit_probability_increases_with_n() {
        let small_n = run_sim(&SimConfig {
            n: 500,
            ..small(PolicyKind::Clock, 1.07, 2)
        })
        .hit_probability;
        let big_n = run_sim(&SimConfig {
            n: 5_000,
            ..small(PolicyKind::Clock, 1.07, 2)
        })
        .hit_probability;
        assert!(big_n > small_n, "{big_n} vs {small_n}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_sim(&small(PolicyKind::TwoQ, 1.07, 2));
        let b = run_sim(&small(PolicyKind::TwoQ, 1.07, 2));
        assert_eq!(a.hit_probability, b.hit_probability);
        assert_eq!(a.resident, b.resident);
    }

    #[test]
    fn clock_gets_storage_parity_entries() {
        let cfg = small(PolicyKind::Clock, 1.07, 1);
        let r = run_sim(&cfg);
        // After millions of admissions CLOCK must be full at L = 1.02 N.
        assert_eq!(r.resident, (cfg.n as f64 * 1.02).round() as usize);
    }
}
