//! Anomaly-triggered flight recorder.
//!
//! Histograms tell you a p99 got worse; by the time a human looks, the
//! traces that *caused* it have rotated out of the ring. The
//! [`FlightRecorder`] closes that gap: when a pass exceeds a latency
//! threshold, or a breaker/quarantine/degradation event fires, it dumps
//! the trace ring plus a metrics snapshot as one JSON document into a
//! [`SpoolSink`].
//!
//! `pmv-obs` stays dependency-free, so the disk sink lives in `pmv-wal`
//! (`wal::spool::DiskSpool`, built on `wal::dio` so every spool write
//! is fault-injectable); this module owns the trigger policy, the
//! bounded-dump accounting, and the dump document format that
//! `pmv-profile` parses back.
//!
//! Hot-path contract: the serving path asks [`FlightRecorder::armed`]
//! (one relaxed load) and compares the pass latency against
//! [`FlightRecorder::latency_threshold_ns`] (a second relaxed load)
//! only when observability is already enabled — a disabled registry
//! never reaches the recorder at all. The expensive part (snapshotting,
//! JSON rendering, the sink write) runs only on trigger, which is by
//! construction rare and bounded by `max_dumps`.

use crate::hist::HistSnapshot;
use crate::trace::QueryTrace;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Where flight dumps go. Implementations must be safe to call from
/// any serving thread; the recorder serializes nothing — a sink that
/// needs exclusion takes its own lock (dumps are rare by design).
pub trait SpoolSink: Send + Sync {
    /// Persist one dump document; returns where it landed (a path for
    /// disk sinks, a synthetic name for in-memory test sinks).
    fn spool_dump(&self, seq: u64, json: &str) -> io::Result<PathBuf>;
}

/// In-memory sink for tests: retains every dump in order.
#[derive(Debug, Default)]
pub struct MemSink {
    dumps: std::sync::Mutex<Vec<(u64, String)>>,
}

impl MemSink {
    /// Empty sink.
    pub fn new() -> Self {
        MemSink::default()
    }

    /// Every dump received so far, in arrival order.
    pub fn dumps(&self) -> Vec<(u64, String)> {
        self.dumps.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl SpoolSink for MemSink {
    fn spool_dump(&self, seq: u64, json: &str) -> io::Result<PathBuf> {
        self.dumps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((seq, json.to_string()));
        Ok(PathBuf::from(format!("mem:flight-{seq:06}.json")))
    }
}

/// Why a dump fired — rendered into the dump's `reason` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerReason {
    /// A pass exceeded the latency threshold.
    LatencyThreshold,
    /// The circuit breaker tripped.
    BreakerTrip,
    /// A shard was drained into quarantine.
    Quarantine,
    /// A query degraded (O3 did not complete).
    Degraded,
}

impl TriggerReason {
    /// Stable name used in the dump document.
    pub fn as_str(self) -> &'static str {
        match self {
            TriggerReason::LatencyThreshold => "latency_threshold",
            TriggerReason::BreakerTrip => "breaker_trip",
            TriggerReason::Quarantine => "quarantine",
            TriggerReason::Degraded => "degraded",
        }
    }
}

/// Threshold value meaning "latency trigger disarmed".
const DISARMED: u64 = u64::MAX;

/// The flight recorder: trigger policy + bounded dump accounting over a
/// [`SpoolSink`].
pub struct FlightRecorder {
    /// Latency trigger in nanoseconds; [`DISARMED`] when off. Relaxed —
    /// statistics/config, not synchronization.
    threshold_ns: AtomicU64,
    /// Dumps written; never exceeds `max_dumps`.
    dumped: AtomicU64,
    /// Monotonic dump sequence (also counts dumps dropped by the cap).
    seq: AtomicU64,
    max_dumps: u64,
    sink: Box<dyn SpoolSink>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("threshold_ns", &self.threshold_ns)
            .field("dumped", &self.dumped)
            .field("max_dumps", &self.max_dumps)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// Recorder writing at most `max_dumps` dumps into `sink`, with the
    /// latency trigger disarmed (event triggers still fire).
    pub fn new(sink: Box<dyn SpoolSink>, max_dumps: u64) -> Self {
        FlightRecorder {
            threshold_ns: AtomicU64::new(DISARMED),
            dumped: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            max_dumps,
            sink,
        }
    }

    /// Arm (Some) or disarm (None) the latency trigger.
    pub fn set_latency_threshold(&self, threshold: Option<std::time::Duration>) {
        let ns = match threshold {
            Some(d) => (d.as_nanos().min(u64::MAX as u128) as u64).min(DISARMED - 1),
            None => DISARMED,
        };
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Latency trigger in nanoseconds ([`u64::MAX`] when disarmed). One
    /// relaxed load — the entire per-pass cost of an armed-but-quiet
    /// recorder.
    #[inline]
    pub fn latency_threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Whether the dump budget still has room (one relaxed load).
    #[inline]
    pub fn armed(&self) -> bool {
        self.dumped.load(Ordering::Relaxed) < self.max_dumps
    }

    /// Dumps written so far.
    pub fn dumps_written(&self) -> u64 {
        self.dumped.load(Ordering::Relaxed)
    }

    /// Fire a dump: composes the document from the trace tail and a
    /// metrics snapshot, spends one unit of the dump budget, and hands
    /// it to the sink. Returns the sink path, or `None` when the budget
    /// is exhausted (the sequence number still advances, so the dump
    /// stream records how many triggers were dropped) or the sink
    /// failed (spooling is diagnostics — it must never take the serving
    /// path down).
    pub fn trigger(
        &self,
        reason: TriggerReason,
        view: &str,
        total_us: u64,
        traces: &[QueryTrace],
        metrics_json: &str,
    ) -> Option<PathBuf> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // Budget check-and-spend: fetch_update keeps the count exact
        // under concurrent triggers (a plain load+add could overshoot).
        if self
            .dumped
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.max_dumps).then_some(n + 1)
            })
            .is_err()
        {
            return None;
        }
        let json = compose_dump(seq, reason, view, total_us, traces, metrics_json);
        self.sink.spool_dump(seq, &json).ok()
    }
}

/// Render one flight-dump document. Format (all hand-rolled; the
/// serde_json shim has no serializer):
///
/// ```json
/// {"pmv_flight_dump":1,"seq":0,"reason":"latency_threshold",
///  "view":"t1","trigger_total_us":12345,
///  "traces":[{...QueryTrace::to_json...}],
///  "metrics":{...}}
/// ```
///
/// `pmv_flight_dump` is the format-version sentinel `pmv-profile` keys
/// on when parsing spool directories.
pub fn compose_dump(
    seq: u64,
    reason: TriggerReason,
    view: &str,
    total_us: u64,
    traces: &[QueryTrace],
    metrics_json: &str,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512 + traces.len() * 256 + metrics_json.len());
    let _ = write!(
        out,
        "{{\"pmv_flight_dump\":1,\"seq\":{seq},\"reason\":\"{}\",\"view\":\"{}\",\
         \"trigger_total_us\":{total_us},\"traces\":[",
        reason.as_str(),
        crate::trace::esc(view),
    );
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    let _ = write!(out, "],\"metrics\":{metrics_json}}}");
    out
}

/// Render the `metrics` member of a dump from counter pairs and phase
/// snapshots (the same shapes `ViewMetrics` carries) — lets `pmv-core`
/// compose a dump without depending on the export layer's view model.
pub fn metrics_json_from(
    counters: &[(&'static str, u64)],
    phases: &[(&'static str, HistSnapshot)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512);
    out.push_str("{\"counters\":{");
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{value}");
    }
    out.push_str("},\"phases\":{");
    for (i, (phase, snap)) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{phase}\":{}", crate::export::phase_json(snap));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventKind, TraceKind, TraceRecorder};
    use std::sync::Arc;

    fn sample_traces() -> Vec<QueryTrace> {
        let rec = TraceRecorder::new(4);
        {
            let mut s = rec.begin(TraceKind::Query, "t1");
            s.event(EventKind::Decompose { parts: 2, us: 5 });
        }
        rec.tail(4)
    }

    #[test]
    fn trigger_composes_bounded_dumps() {
        let sink = Arc::new(MemSink::new());
        struct Shared(Arc<MemSink>);
        impl SpoolSink for Shared {
            fn spool_dump(&self, seq: u64, json: &str) -> io::Result<PathBuf> {
                self.0.spool_dump(seq, json)
            }
        }
        let fr = FlightRecorder::new(Box::new(Shared(Arc::clone(&sink))), 2);
        assert!(fr.armed());
        let traces = sample_traces();
        let metrics = metrics_json_from(&[("queries", 7)], &[("ttfr", HistSnapshot::empty())]);
        assert!(fr
            .trigger(
                TriggerReason::LatencyThreshold,
                "t1",
                9_000,
                &traces,
                &metrics
            )
            .is_some());
        assert!(fr
            .trigger(TriggerReason::Degraded, "t1", 100, &traces, &metrics)
            .is_some());
        // Budget exhausted: dropped, but the sequence keeps counting.
        assert!(fr
            .trigger(TriggerReason::Quarantine, "t1", 100, &traces, &metrics)
            .is_none());
        assert!(!fr.armed());
        assert_eq!(fr.dumps_written(), 2);

        let dumps = sink.dumps();
        assert_eq!(dumps.len(), 2);
        let (seq0, ref j0) = dumps[0];
        assert_eq!(seq0, 0);
        assert!(j0.starts_with("{\"pmv_flight_dump\":1,\"seq\":0"), "{j0}");
        assert!(j0.contains("\"reason\":\"latency_threshold\""), "{j0}");
        assert!(j0.contains("\"view\":\"t1\""), "{j0}");
        assert!(j0.contains("\"event\":\"decompose\""), "{j0}");
        assert!(j0.contains("\"counters\":{\"queries\":7}"), "{j0}");
        assert_eq!(j0.matches('{').count(), j0.matches('}').count());
        assert_eq!(j0.matches('[').count(), j0.matches(']').count());
    }

    #[test]
    fn latency_threshold_arms_and_disarms() {
        let fr = FlightRecorder::new(Box::new(MemSink::new()), 8);
        assert_eq!(fr.latency_threshold_ns(), u64::MAX);
        fr.set_latency_threshold(Some(std::time::Duration::from_millis(5)));
        assert_eq!(fr.latency_threshold_ns(), 5_000_000);
        fr.set_latency_threshold(None);
        assert_eq!(fr.latency_threshold_ns(), u64::MAX);
    }

    #[test]
    fn concurrent_triggers_respect_the_budget_exactly() {
        let fr = Arc::new(FlightRecorder::new(Box::new(MemSink::new()), 5));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let fr = Arc::clone(&fr);
            handles.push(std::thread::spawn(move || {
                let mut wrote = 0u64;
                for _ in 0..4 {
                    if fr
                        .trigger(TriggerReason::BreakerTrip, "v", 1, &[], "{}")
                        .is_some()
                    {
                        wrote += 1;
                    }
                }
                wrote
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 5);
        assert_eq!(fr.dumps_written(), 5);
    }
}
