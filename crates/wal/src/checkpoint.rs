//! Snapshot checkpoints: a full, RowId-preserving image of the
//! database plus everything the WAL does not carry.
//!
//! The WAL logs DML deltas only; DDL (schemas, index definitions),
//! registered view specs (template SQL, F/L/policy, dividers), and the
//! analyzed-statistics flag live here. A checkpoint is serialized from
//! a *pinned immutable* [`DbSnapshot`] — writers are never blocked —
//! into a temp file, fsynced, and atomically renamed into place, so a
//! crash mid-checkpoint leaves either the old checkpoint or the new
//! one, never a half-written hybrid.
//!
//! **RowId preservation.** Logged deltas name their victims by
//! [`RowId`], so recovery must rebuild the exact slot layout the log
//! was written against — an equal multiset of tuples is not enough.
//! Rows are therefore stored as `[rowid, [values…]]` pairs and loaded
//! with [`Database::apply_delta_exact`], which reconstructs interior
//! holes as free slots (trailing holes are immaterial: the log after
//! this checkpoint can only reference slots it re-creates).

use std::path::Path;

use pmv_index::{IndexDef, IndexShape};
use pmv_query::snapshot::{value_from_json, value_to_json};
use pmv_query::{Database, DbSnapshot};
use pmv_storage::{Column, ColumnType, Delta, RowId, Schema, Tuple, Value};
use serde_json::{Map as JsonMap, Value as Json};

use crate::dio;
use crate::{WalError, WalResult};
use pmv_faultinject::Site;

/// Checkpoint document format version.
pub const FORMAT_VERSION: u32 = 1;

/// A registered view's re-creation recipe, persisted alongside the
/// data. The WAL layer treats this as opaque configuration: the CLI (or
/// any other host) records what it needs to re-register the view after
/// recovery — template SQL, PMV shape, and the learned dividers per
/// condition slot (`None` for equality slots).
#[derive(Clone, Debug, PartialEq)]
pub struct ViewSpec {
    /// Template name (registration key).
    pub name: String,
    /// Template SQL text, re-parsed against the recovered catalog.
    pub sql: String,
    /// PMV F parameter (results per bcp).
    pub f: usize,
    /// PMV L parameter (cache capacity in bcps).
    pub l: usize,
    /// Replacement policy name (`clock`, `lru`, …).
    pub policy: String,
    /// Shard count (0 = implementation default).
    pub shards: usize,
    /// Divider points per condition slot; `None` for equality slots.
    pub dividers: Vec<Option<Vec<Value>>>,
}

/// Everything a checkpoint stores beyond the data pages.
#[derive(Clone, Debug, Default)]
pub struct CheckpointMeta {
    /// All commits with `lsn <= lsn` are reflected in the snapshot;
    /// recovery replays strictly greater LSNs.
    pub lsn: u64,
    /// The snapshot's database version (epoch), for diagnostics.
    pub epoch: u64,
    /// Whether `analyze` had been run (statistics are recomputed on
    /// load rather than serialized — they are derived state).
    pub analyzed: bool,
    /// Registered views to re-create after recovery.
    pub views: Vec<ViewSpec>,
}

fn err(msg: impl Into<String>) -> WalError {
    WalError::Checkpoint(msg.into())
}

fn ty_to_str(t: ColumnType) -> &'static str {
    match t {
        ColumnType::Int => "int",
        ColumnType::Double => "double",
        ColumnType::Str => "str",
    }
}

fn ty_from_str(s: &str) -> WalResult<ColumnType> {
    match s {
        "int" => Ok(ColumnType::Int),
        "double" => Ok(ColumnType::Double),
        "str" => Ok(ColumnType::Str),
        other => Err(err(format!("unknown column type '{other}'"))),
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    let mut m = JsonMap::new();
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Json::Object(m)
}

fn get<'a>(o: &'a JsonMap, key: &str, ctx: &str) -> WalResult<&'a Json> {
    o.get(key)
        .ok_or_else(|| err(format!("checkpoint {ctx} missing field '{key}'")))
}

fn get_str(o: &JsonMap, key: &str, ctx: &str) -> WalResult<String> {
    get(o, key, ctx)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| err(format!("checkpoint {ctx} field '{key}' must be a string")))
}

fn get_u64(o: &JsonMap, key: &str, ctx: &str) -> WalResult<u64> {
    get(o, key, ctx)?
        .as_u64()
        .ok_or_else(|| err(format!("checkpoint {ctx} field '{key}' must be an integer")))
}

fn get_arr<'a>(o: &'a JsonMap, key: &str, ctx: &str) -> WalResult<&'a Vec<Json>> {
    get(o, key, ctx)?
        .as_array()
        .ok_or_else(|| err(format!("checkpoint {ctx} field '{key}' must be an array")))
}

fn as_obj<'a>(j: &'a Json, ctx: &str) -> WalResult<&'a JsonMap> {
    j.as_object()
        .ok_or_else(|| err(format!("checkpoint {ctx} must be an object")))
}

/// Serialize a checkpoint document to JSON.
pub fn to_json(snap: &DbSnapshot, meta: &CheckpointMeta) -> WalResult<Json> {
    use pmv_query::DataView;
    let mut rel_docs = Vec::new();
    for name in snap.relation_names() {
        let rel = snap
            .relation_version(&name)
            .map_err(|e| err(format!("snapshot lost relation '{name}': {e}")))?;
        let columns: Vec<Json> = rel
            .schema()
            .columns()
            .iter()
            .map(|c| {
                obj(vec![
                    ("name", Json::from(c.name.clone())),
                    ("ty", Json::from(ty_to_str(c.ty))),
                ])
            })
            .collect();
        let rows: Vec<Json> = rel
            .iter()
            .map(|(row, t)| {
                Json::Array(vec![
                    Json::from(row.0 as i64),
                    Json::Array(t.values().iter().map(value_to_json).collect()),
                ])
            })
            .collect();
        rel_docs.push(obj(vec![
            ("name", Json::from(name)),
            ("columns", Json::Array(columns)),
            ("rows", Json::Array(rows)),
        ]));
    }
    let idx_docs: Vec<Json> = snap
        .index_defs()
        .iter()
        .map(|def| {
            obj(vec![
                ("relation", Json::from(def.relation.clone())),
                (
                    "columns",
                    Json::Array(def.columns.iter().map(|&c| Json::from(c)).collect()),
                ),
                (
                    "shape",
                    Json::from(match def.shape {
                        IndexShape::BTree => "btree",
                        IndexShape::Hash => "hash",
                    }),
                ),
            ])
        })
        .collect();
    let view_docs: Vec<Json> = meta
        .views
        .iter()
        .map(|v| {
            let dividers: Vec<Json> = v
                .dividers
                .iter()
                .map(|d| match d {
                    None => Json::Null,
                    Some(vals) => Json::Array(vals.iter().map(value_to_json).collect()),
                })
                .collect();
            obj(vec![
                ("name", Json::from(v.name.clone())),
                ("sql", Json::from(v.sql.clone())),
                ("f", Json::from(v.f)),
                ("l", Json::from(v.l)),
                ("policy", Json::from(v.policy.clone())),
                ("shards", Json::from(v.shards)),
                ("dividers", Json::Array(dividers)),
            ])
        })
        .collect();
    Ok(obj(vec![
        ("format_version", Json::from(FORMAT_VERSION as i64)),
        ("lsn", Json::from(meta.lsn)),
        ("epoch", Json::from(meta.epoch)),
        ("analyzed", Json::from(meta.analyzed)),
        ("relations", Json::Array(rel_docs)),
        ("indexes", Json::Array(idx_docs)),
        ("views", Json::Array(view_docs)),
    ]))
}

/// Write a checkpoint atomically: serialize into `<final>.tmp` (under
/// [`Site::CkptWrite`]), fsync, rename into place (under
/// [`Site::CkptRename`]), fsync the directory.
pub fn save(snap: &DbSnapshot, meta: &CheckpointMeta, final_path: &Path) -> WalResult<()> {
    let doc = to_json(snap, meta)?;
    let text = serde_json::to_string(&doc).map_err(|e| err(format!("serialize: {e}")))?;
    let tmp = final_path.with_extension("json.tmp");
    let mut file = dio::create(&tmp)?;
    dio::write_all(&mut file, Site::CkptWrite, text.as_bytes())?;
    dio::fsync(&file, Site::CkptWrite)?;
    drop(file);
    dio::rename(&tmp, final_path)?;
    if let Some(dir) = final_path.parent() {
        dio::fsync_dir(dir)?;
    }
    Ok(())
}

/// Parse a checkpoint document into a fresh [`Database`] (RowId layout
/// preserved, indexes rebuilt, statistics recomputed when `analyzed`)
/// plus its metadata.
pub fn load(path: &Path) -> WalResult<(Database, CheckpointMeta)> {
    let text = std::fs::read_to_string(path)?;
    let doc = serde_json::from_str(&text).map_err(|e| err(format!("parse: {e}")))?;
    let doc = as_obj(&doc, "document")?;
    let version = get_u64(doc, "format_version", "document")?;
    if version != FORMAT_VERSION as u64 {
        return Err(err(format!(
            "unsupported checkpoint format {version} (expected {FORMAT_VERSION})"
        )));
    }
    let mut meta = CheckpointMeta {
        lsn: get_u64(doc, "lsn", "document")?,
        epoch: get_u64(doc, "epoch", "document")?,
        analyzed: get(doc, "analyzed", "document")?.as_bool().unwrap_or(false),
        views: Vec::new(),
    };
    let mut db = Database::new();
    for rel in get_arr(doc, "relations", "document")? {
        let rel = as_obj(rel, "relation")?;
        let name = get_str(rel, "name", "relation")?;
        let columns = get_arr(rel, "columns", "relation")?
            .iter()
            .map(|c| {
                let c = as_obj(c, "column")?;
                Ok(Column::new(
                    &get_str(c, "name", "column")?,
                    ty_from_str(&get_str(c, "ty", "column")?)?,
                ))
            })
            .collect::<WalResult<Vec<_>>>()?;
        db.create_relation(Schema::new(name.clone(), columns))
            .map_err(|e| err(format!("create relation '{name}': {e}")))?;
        for row in get_arr(rel, "rows", "relation")? {
            let pair = row
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| err("row must be a [rowid, values] pair"))?;
            let rowid = pair[0]
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| err("rowid must be a u32"))?;
            let cells = pair[1]
                .as_array()
                .ok_or_else(|| err("row values must be an array"))?;
            let tuple = Tuple::new(
                cells
                    .iter()
                    .map(|v| value_from_json(v).map_err(|e| err(format!("value: {e}"))))
                    .collect::<WalResult<Vec<_>>>()?,
            );
            db.apply_delta_exact(
                &name,
                &Delta::Insert {
                    row: RowId(rowid),
                    tuple,
                },
            )
            .map_err(|e| err(format!("restore row {rowid} of '{name}': {e}")))?;
        }
    }
    for idx in get_arr(doc, "indexes", "document")? {
        let idx = as_obj(idx, "index")?;
        let relation = get_str(idx, "relation", "index")?;
        let columns = get_arr(idx, "columns", "index")?
            .iter()
            .map(|c| {
                c.as_u64()
                    .map(|v| v as usize)
                    .ok_or_else(|| err("index column must be an integer"))
            })
            .collect::<WalResult<Vec<_>>>()?;
        let def = match get_str(idx, "shape", "index")?.as_str() {
            "btree" => IndexDef::btree(relation, columns),
            "hash" => IndexDef::hash(relation, columns),
            other => return Err(err(format!("unknown index shape '{other}'"))),
        };
        db.create_index(def)
            .map_err(|e| err(format!("rebuild index: {e}")))?;
    }
    for view in get_arr(doc, "views", "document")? {
        let v = as_obj(view, "view")?;
        let dividers = get_arr(v, "dividers", "view")?
            .iter()
            .map(|d| match d {
                Json::Null => Ok(None),
                Json::Array(vals) => Ok(Some(
                    vals.iter()
                        .map(|x| value_from_json(x).map_err(|e| err(format!("divider: {e}"))))
                        .collect::<WalResult<Vec<_>>>()?,
                )),
                _ => Err(err("divider entry must be null or an array")),
            })
            .collect::<WalResult<Vec<_>>>()?;
        meta.views.push(ViewSpec {
            name: get_str(v, "name", "view")?,
            sql: get_str(v, "sql", "view")?,
            f: get_u64(v, "f", "view")? as usize,
            l: get_u64(v, "l", "view")? as usize,
            policy: get_str(v, "policy", "view")?,
            shards: get_u64(v, "shards", "view")? as usize,
            dividers,
        });
    }
    if meta.analyzed {
        db.analyze()
            .map_err(|e| err(format!("recompute statistics: {e}")))?;
    }
    Ok((db, meta))
}
