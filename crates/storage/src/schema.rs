//! Relation schemas: named, typed columns.

use crate::error::StorageError;
use crate::value::Value;

/// Static type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer (also dates-as-days and money-as-cents).
    Int,
    /// IEEE-754 double.
    Double,
    /// UTF-8 string.
    Str,
}

impl ColumnType {
    /// Whether `v` inhabits this type. `Null` inhabits every type.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Double, Value::Double(_))
                | (ColumnType::Str, Value::Str(_))
        )
    }
}

/// A named, typed column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within its schema.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Build a column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// Schema of one relation: its name and ordered columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    name: String,
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema. Panics if column names repeat (a programming error
    /// in schema construction, not a runtime condition).
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        let name = name.into();
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|p| p.name == c.name),
                "duplicate column '{}' in schema '{}'",
                c.name,
                name
            );
        }
        Schema { name, columns }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column.
    pub fn column_index(&self, column: &str) -> Result<usize, StorageError> {
        self.columns
            .iter()
            .position(|c| c.name == column)
            .ok_or_else(|| StorageError::UnknownColumn {
                relation: self.name.clone(),
                column: column.to_string(),
            })
    }

    /// Column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Validate that `values` matches this schema in arity and types.
    pub fn check(&self, values: &[Value]) -> Result<(), StorageError> {
        if values.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch {
                relation: self.name.clone(),
                detail: format!(
                    "expected {} values, got {}",
                    self.columns.len(),
                    values.len()
                ),
            });
        }
        for (c, v) in self.columns.iter().zip(values) {
            if !c.ty.admits(v) {
                return Err(StorageError::SchemaMismatch {
                    relation: self.name.clone(),
                    detail: format!(
                        "value {v} does not inhabit column '{}' ({:?})",
                        c.name, c.ty
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(
            "orders",
            vec![
                Column::new("orderkey", ColumnType::Int),
                Column::new("comment", ColumnType::Str),
                Column::new("total", ColumnType::Double),
            ],
        )
    }

    #[test]
    fn column_lookup() {
        let s = sample();
        assert_eq!(s.column_index("comment").unwrap(), 1);
        assert!(matches!(
            s.column_index("nope"),
            Err(StorageError::UnknownColumn { .. })
        ));
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(0).name, "orderkey");
    }

    #[test]
    fn check_accepts_wellformed_tuple() {
        let s = sample();
        s.check(&[Value::Int(1), Value::str("ok"), Value::Double(9.5)])
            .unwrap();
    }

    #[test]
    fn check_accepts_null_in_any_column() {
        let s = sample();
        s.check(&[Value::Null, Value::Null, Value::Null]).unwrap();
    }

    #[test]
    fn check_rejects_wrong_arity() {
        let s = sample();
        assert!(s.check(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn check_rejects_wrong_type() {
        let s = sample();
        assert!(s
            .check(&[Value::str("bad"), Value::str("ok"), Value::Double(0.0)])
            .is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("a", ColumnType::Int),
            ],
        );
    }

    #[test]
    fn admits_matrix() {
        assert!(ColumnType::Int.admits(&Value::Int(1)));
        assert!(!ColumnType::Int.admits(&Value::str("x")));
        assert!(ColumnType::Str.admits(&Value::Null));
        assert!(ColumnType::Double.admits(&Value::Double(1.0)));
        assert!(!ColumnType::Double.admits(&Value::Int(1)));
    }
}
