//! Property test: the static verifier's verdict agrees with runtime
//! behaviour (ISSUE 3 satellite).
//!
//! For randomly generated divider lists (arbitrary order, duplicates
//! allowed — the raw material `Discretizer::from_raw` accepts
//! unchecked):
//!
//! - a **clean** verdict means the definition registers, serves interval
//!   queries through O1→O2→O3 without error, and passes the sharded
//!   store's `debug_validate` invariant check;
//! - a **denied** verdict means `PmvManager::register` rejects the
//!   definition *before* any store is built.
//!
//! Together these pin the verifier to the contract DESIGN.md §12 claims
//! for it: deny-by-default is not advisory, and clean is not vacuous.

use pmv_analysis::{verify_parts, VerifyOptions};
use pmv_cache::PolicyKind;
use pmv_core::{Discretizer, PartialViewDef, PmvConfig, PmvManager, SharedPmv};
use pmv_index::IndexDef;
use pmv_query::{Condition, Database, Interval, QueryTemplate, TemplateBuilder};
use pmv_storage::{tuple, Column, ColumnType, Schema, Value};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;
use std::sync::Arc;

fn setup_db() -> Database {
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    for i in 0..120i64 {
        db.insert("r", tuple![i, i % 40 - 20]).unwrap();
    }
    db.create_index(IndexDef::btree("r", vec![1])).unwrap();
    db
}

fn interval_template(db: &Database) -> Arc<QueryTemplate> {
    TemplateBuilder::new("range_f")
        .relation(db.schema("r").unwrap())
        .select("r", "a")
        .unwrap()
        .cond_interval("r", "f")
        .unwrap()
        .build()
        .unwrap()
}

/// One generated scenario: verify, then confirm the runtime does what
/// the verdict promised.
fn check_agreement(raw: Vec<i64>, lo: i64, width: i64) -> Result<(), TestCaseError> {
    let db = setup_db();
    let t = interval_template(&db);
    let dividers: Vec<Value> = raw.into_iter().map(Value::Int).collect();
    let d = Discretizer::from_raw(dividers);
    let config = PmvConfig::new(2, 16, PolicyKind::Clock);

    let report = verify_parts(&t, &[Some(d.clone())], &config, &VerifyOptions::default());
    let def = PartialViewDef::new("v", t.clone(), vec![Some(d)]).unwrap();

    let mut m = PmvManager::new();
    let res = m.register(def.clone(), config.clone());

    if report.denied() {
        prop_assert!(
            res.is_err(),
            "verifier denied ({}) but register accepted",
            report.codes().join(",")
        );
        prop_assert_eq!(m.view_count(), 0, "denied def must not leave a view behind");
        return Ok(());
    }

    prop_assert!(res.is_ok(), "verifier clean but register rejected: {res:?}");
    let q = t
        .bind(vec![Condition::Intervals(vec![Interval::half_open(
            lo,
            lo + width,
        )])])
        .unwrap();
    // O1 decompose → O2 probe → O3 fill, twice so the second pass also
    // exercises the warm path.
    for _ in 0..2 {
        let out = m.run(&db, &q);
        prop_assert!(out.is_ok(), "clean def errored at runtime: {out:?}");
    }

    // Same definition through the sharded store, then invariant check.
    let shared = SharedPmv::with_shards(def, config, 4);
    let out = shared.run(&db, &q);
    prop_assert!(out.is_ok(), "clean def errored in SharedPmv: {out:?}");
    shared.debug_validate();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw (unsorted, duplicate-prone) divider lists: mostly denied by
    /// PMV002, occasionally clean when the draw happens to be sorted.
    #[test]
    fn raw_dividers_verdict_agrees_with_runtime(
        raw in prop_vec(-30i64..30, 1..7),
        lo in -40i64..40,
        width in 1i64..30,
    ) {
        check_agreement(raw, lo, width)?;
    }

    /// Normalized divider lists: must always be clean and must always
    /// work end to end.
    #[test]
    fn normalized_dividers_always_clean(
        raw in prop_vec(-30i64..30, 1..7),
        lo in -40i64..40,
        width in 1i64..30,
    ) {
        let mut sorted = raw;
        sorted.sort_unstable();
        sorted.dedup();
        let db = setup_db();
        let t = interval_template(&db);
        let d = Discretizer::from_raw(sorted.iter().copied().map(Value::Int).collect());
        prop_assert!(d.is_normalized());
        let report = verify_parts(
            &t,
            &[Some(d)],
            &PmvConfig::default(),
            &VerifyOptions::default(),
        );
        prop_assert!(!report.denied(), "normalized dividers denied: {report}");
        check_agreement(sorted, lo, width)?;
    }
}
