//! Secondary index substrate.
//!
//! The paper's experiments "built an index on each selection/join
//! attribute" (Section 4.2), and the PMV itself carries "an index I on bcp"
//! which is a multi-attribute index when the template has more than one
//! selection condition (Section 3.2). This crate provides both index shapes
//! from scratch:
//!
//! * [`BTreeIndex`] — a B+-tree over composite keys with leaf-linked range
//!   scans, used for interval-form conditions and join attributes.
//! * [`HashIndex`] — an equality-probe index used for equality-form
//!   conditions and the PMV's bcp index.
//!
//! Both map an [`IndexKey`] (one or more [`pmv_storage::Value`]s) to a
//! posting list of [`pmv_storage::RowId`]s, and both are maintained
//! incrementally from storage deltas.

pub mod btree;
pub mod hash;
pub mod key;
pub mod maintenance;

pub use btree::BTreeIndex;
pub use hash::HashIndex;
pub use key::IndexKey;
pub use maintenance::{IndexDef, IndexShape};

use pmv_storage::RowId;
use std::ops::Bound;

/// Errors from index operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A range scan was requested on an index shape that has no key
    /// order (a hash index). The caller should fall back to a heap scan.
    RangeOnHashIndex,
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::RangeOnHashIndex => {
                write!(f, "range scan requested on a hash index")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// Common interface of all secondary indexes.
pub trait SecondaryIndex {
    /// Add `row` to the posting list of `key`.
    fn insert(&mut self, key: IndexKey, row: RowId);

    /// Remove `row` from the posting list of `key`. Returns whether the
    /// (key, row) pair was present.
    fn remove(&mut self, key: &IndexKey, row: RowId) -> bool;

    /// Rows matching `key` exactly.
    fn get(&self, key: &IndexKey) -> &[RowId];

    /// Number of distinct keys.
    fn key_count(&self) -> usize;

    /// Total number of (key, row) postings.
    fn entry_count(&self) -> usize;
}

/// An index of either shape, chosen per the access pattern it must serve.
///
/// `Clone` supports the copy-on-write snapshot layer: `Database` hands
/// indexes out behind `Arc` and maintenance clones-on-write via
/// `Arc::make_mut` only when a pinned snapshot still holds the old
/// version.
#[derive(Clone)]
pub enum AnyIndex {
    /// Ordered index with range scans.
    BTree(BTreeIndex),
    /// Equality-only hash index.
    Hash(HashIndex),
}

impl AnyIndex {
    /// Range scan over keys in `(lo, hi)`; only ordered indexes support
    /// it. A hash index returns [`IndexError::RangeOnHashIndex`] so the
    /// executor can recover with a heap scan instead of aborting the
    /// query — the planner normally routes around this via
    /// [`Self::supports_range`], but a stale plan (index rebuilt with a
    /// different shape) must degrade gracefully, not panic.
    pub fn range(
        &self,
        lo: Bound<&IndexKey>,
        hi: Bound<&IndexKey>,
    ) -> Result<Vec<(IndexKey, Vec<RowId>)>, IndexError> {
        match self {
            AnyIndex::BTree(b) => Ok(b.range(lo, hi)),
            AnyIndex::Hash(_) => Err(IndexError::RangeOnHashIndex),
        }
    }

    /// Whether this index supports ordered range scans.
    pub fn supports_range(&self) -> bool {
        matches!(self, AnyIndex::BTree(_))
    }

    /// Equality probe by borrowed key components — the zero-copy twin of
    /// [`SecondaryIndex::get`]. The executor's inner join loop probes
    /// with values still owned by the bound tuple, so no `IndexKey` (and
    /// no `Value` clone) is materialized per probe.
    pub fn probe(&self, parts: &[pmv_storage::Value]) -> &[RowId] {
        // Same soft fault site as `get`: both are the executor probe path.
        pmv_faultinject::fire_soft(pmv_faultinject::Site::IndexProbe);
        match self {
            AnyIndex::BTree(b) => b.get_by_parts(parts),
            AnyIndex::Hash(h) => h.get_by_parts(parts),
        }
    }
}

impl SecondaryIndex for AnyIndex {
    fn insert(&mut self, key: IndexKey, row: RowId) {
        match self {
            AnyIndex::BTree(b) => b.insert(key, row),
            AnyIndex::Hash(h) => h.insert(key, row),
        }
    }

    fn remove(&mut self, key: &IndexKey, row: RowId) -> bool {
        match self {
            AnyIndex::BTree(b) => b.remove(key, row),
            AnyIndex::Hash(h) => h.remove(key, row),
        }
    }

    fn get(&self, key: &IndexKey) -> &[RowId] {
        // Equality-probe path used by the executor and the PMV's bcp
        // index; soft site because `&[RowId]` has no error channel.
        pmv_faultinject::fire_soft(pmv_faultinject::Site::IndexProbe);
        match self {
            AnyIndex::BTree(b) => b.get(key),
            AnyIndex::Hash(h) => h.get(key),
        }
    }

    fn key_count(&self) -> usize {
        match self {
            AnyIndex::BTree(b) => b.key_count(),
            AnyIndex::Hash(h) => h.key_count(),
        }
    }

    fn entry_count(&self) -> usize {
        match self {
            AnyIndex::BTree(b) => b.entry_count(),
            AnyIndex::Hash(h) => h.entry_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::Value;

    #[test]
    fn any_index_dispatches() {
        let mut idx = AnyIndex::Hash(HashIndex::new());
        idx.insert(IndexKey::single(Value::Int(1)), RowId(0));
        assert_eq!(idx.get(&IndexKey::single(Value::Int(1))), &[RowId(0)]);
        assert!(!idx.supports_range());

        let mut idx = AnyIndex::BTree(BTreeIndex::new());
        idx.insert(IndexKey::single(Value::Int(1)), RowId(0));
        assert!(idx.supports_range());
        assert_eq!(idx.key_count(), 1);
        assert_eq!(idx.entry_count(), 1);
    }

    #[test]
    fn hash_range_returns_typed_error() {
        let idx = AnyIndex::Hash(HashIndex::new());
        let err = idx.range(Bound::Unbounded, Bound::Unbounded).unwrap_err();
        assert_eq!(err, IndexError::RangeOnHashIndex);
        assert_eq!(err.to_string(), "range scan requested on a hash index");
    }

    #[test]
    fn btree_range_still_scans() {
        let mut idx = AnyIndex::BTree(BTreeIndex::new());
        for i in 0..5i64 {
            idx.insert(IndexKey::single(Value::Int(i)), RowId(i as u32));
        }
        let lo = IndexKey::single(Value::Int(1));
        let hi = IndexKey::single(Value::Int(3));
        let hits = idx
            .range(Bound::Included(&lo), Bound::Included(&hi))
            .unwrap();
        assert_eq!(hits.len(), 3);
    }
}
