//! Database snapshots: save/load the full catalog (schemas + tuples +
//! index definitions) to a self-describing JSON document.
//!
//! Intended for persisting generated workloads between runs (a TPC-R
//! generation at scale 0.2 takes longer than loading it back) and for
//! shipping small repro cases. Indexes are *rebuilt* on load rather than
//! serialized — they are derived state.

use std::io::{BufReader, BufWriter, Read, Write};

use pmv_index::{IndexDef, IndexShape};
use pmv_storage::{Column, ColumnType, Schema, Tuple, Value};
use serde::{Deserialize, Serialize};

use crate::engine::Database;
use crate::{QueryError, Result};

/// Serialization mirror of [`Value`] (avoids exposing `Arc<str>` to
/// serde).
#[derive(Serialize, Deserialize)]
enum SerValue {
    #[serde(rename = "n")]
    Null,
    #[serde(rename = "i")]
    Int(i64),
    #[serde(rename = "d")]
    Double(f64),
    #[serde(rename = "s")]
    Str(String),
}

impl From<&Value> for SerValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Null => SerValue::Null,
            Value::Int(i) => SerValue::Int(*i),
            Value::Double(d) => SerValue::Double(*d),
            Value::Str(s) => SerValue::Str(s.to_string()),
        }
    }
}

impl From<SerValue> for Value {
    fn from(v: SerValue) -> Self {
        match v {
            SerValue::Null => Value::Null,
            SerValue::Int(i) => Value::Int(i),
            SerValue::Double(d) => Value::Double(d),
            SerValue::Str(s) => Value::str(&s),
        }
    }
}

#[derive(Serialize, Deserialize)]
struct SerColumn {
    name: String,
    ty: String,
}

#[derive(Serialize, Deserialize)]
struct SerRelation {
    name: String,
    columns: Vec<SerColumn>,
    rows: Vec<Vec<SerValue>>,
}

#[derive(Serialize, Deserialize)]
struct SerIndex {
    relation: String,
    columns: Vec<usize>,
    shape: String,
}

/// The on-disk document.
#[derive(Serialize, Deserialize)]
struct SerSnapshot {
    format_version: u32,
    relations: Vec<SerRelation>,
    indexes: Vec<SerIndex>,
}

const FORMAT_VERSION: u32 = 1;

fn ty_to_str(t: ColumnType) -> &'static str {
    match t {
        ColumnType::Int => "int",
        ColumnType::Double => "double",
        ColumnType::Str => "str",
    }
}

fn ty_from_str(s: &str) -> Result<ColumnType> {
    match s {
        "int" => Ok(ColumnType::Int),
        "double" => Ok(ColumnType::Double),
        "str" => Ok(ColumnType::Str),
        other => Err(QueryError::Template(format!(
            "unknown column type '{other}'"
        ))),
    }
}

/// Serialize the named relations of `db` (schemas, live tuples, and
/// their index definitions) into a writer as JSON.
pub fn save<W: Write>(db: &Database, relations: &[&str], out: W) -> Result<()> {
    let mut doc = SerSnapshot {
        format_version: FORMAT_VERSION,
        relations: Vec::with_capacity(relations.len()),
        indexes: Vec::new(),
    };
    for &name in relations {
        let schema = db.schema(name)?;
        let columns = schema
            .columns()
            .iter()
            .map(|c| SerColumn {
                name: c.name.clone(),
                ty: ty_to_str(c.ty).to_string(),
            })
            .collect();
        let mut rows = Vec::new();
        db.with_relation(name, |rel| {
            for (_, t) in rel.iter() {
                rows.push(t.values().iter().map(SerValue::from).collect());
            }
        })?;
        doc.relations.push(SerRelation {
            name: name.to_string(),
            columns,
            rows,
        });
        for def in db.index_defs(name) {
            doc.indexes.push(SerIndex {
                relation: def.relation.clone(),
                columns: def.columns.clone(),
                shape: match def.shape {
                    IndexShape::BTree => "btree".to_string(),
                    IndexShape::Hash => "hash".to_string(),
                },
            });
        }
    }
    let writer = BufWriter::new(out);
    serde_json::to_writer(writer, &doc)
        .map_err(|e| QueryError::Template(format!("snapshot serialization failed: {e}")))
}

/// Load a snapshot into a fresh [`Database`], rebuilding all indexes.
pub fn load<R: Read>(input: R) -> Result<Database> {
    let reader = BufReader::new(input);
    let doc: SerSnapshot = serde_json::from_reader(reader)
        .map_err(|e| QueryError::Template(format!("snapshot parse failed: {e}")))?;
    if doc.format_version != FORMAT_VERSION {
        return Err(QueryError::Template(format!(
            "unsupported snapshot format {} (expected {FORMAT_VERSION})",
            doc.format_version
        )));
    }
    let mut db = Database::new();
    for rel in doc.relations {
        let columns = rel
            .columns
            .iter()
            .map(|c| Ok(Column::new(&c.name, ty_from_str(&c.ty)?)))
            .collect::<Result<Vec<_>>>()?;
        db.create_relation(Schema::new(rel.name.clone(), columns))?;
        db.load(
            &rel.name,
            rel.rows
                .into_iter()
                .map(|r| Tuple::new(r.into_iter().map(Value::from).collect::<Vec<_>>())),
        )?;
    }
    for idx in doc.indexes {
        let def = match idx.shape.as_str() {
            "btree" => IndexDef::btree(idx.relation, idx.columns),
            "hash" => IndexDef::hash(idx.relation, idx.columns),
            other => {
                return Err(QueryError::Template(format!(
                    "unknown index shape '{other}'"
                )))
            }
        };
        db.create_index(def)?;
    }
    Ok(db)
}

/// Save to a file path.
pub fn save_to_path(db: &Database, relations: &[&str], path: &std::path::Path) -> Result<()> {
    let file = std::fs::File::create(path)
        .map_err(|e| QueryError::Template(format!("cannot create {}: {e}", path.display())))?;
    save(db, relations, file)
}

/// Load from a file path.
pub fn load_from_path(path: &std::path::Path) -> Result<Database> {
    let file = std::fs::File::open(path)
        .map_err(|e| QueryError::Template(format!("cannot open {}: {e}", path.display())))?;
    load(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_index::SecondaryIndex;
    use pmv_storage::tuple;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("name", ColumnType::Str),
                Column::new("score", ColumnType::Double),
            ],
        ))
        .unwrap();
        db.load(
            "r",
            vec![
                tuple![1i64, "alpha", 1.5f64],
                tuple![2i64, "beta", -0.25f64],
                Tuple::new(vec![Value::Int(3), Value::Null, Value::Double(0.0)]),
            ],
        )
        .unwrap();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        db.create_index(IndexDef::hash("r", vec![1])).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_tuples_and_indexes() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &["r"], &mut buf).unwrap();
        let restored = load(buf.as_slice()).unwrap();
        assert_eq!(restored.len("r").unwrap(), 3);
        // Content equality (as multisets).
        let collect = |d: &Database| {
            let mut rows = Vec::new();
            d.with_relation("r", |rel| {
                for (_, t) in rel.iter() {
                    rows.push(t.clone());
                }
            })
            .unwrap();
            rows.sort();
            rows
        };
        assert_eq!(collect(&db), collect(&restored));
        // Indexes rebuilt and usable.
        let idx = restored.index_on("r", &[0]).unwrap();
        assert_eq!(
            idx.get(&pmv_index::IndexKey::single(Value::Int(2))).len(),
            1
        );
        assert!(restored.index_on("r", &[1]).is_some());
    }

    #[test]
    fn null_and_special_doubles_survive() {
        let db = sample_db();
        let mut buf = Vec::new();
        save(&db, &["r"], &mut buf).unwrap();
        let restored = load(buf.as_slice()).unwrap();
        let mut has_null = false;
        restored
            .with_relation("r", |rel| {
                for (_, t) in rel.iter() {
                    if t.get(1).is_null() {
                        has_null = true;
                    }
                }
            })
            .unwrap();
        assert!(has_null, "NULL must survive the roundtrip");
    }

    #[test]
    fn bad_documents_are_rejected() {
        assert!(load("not json".as_bytes()).is_err());
        let wrong_version = r#"{"format_version":99,"relations":[],"indexes":[]}"#;
        assert!(load(wrong_version.as_bytes()).is_err());
        let bad_type = r#"{"format_version":1,"relations":[{"name":"r","columns":[{"name":"a","ty":"blob"}],"rows":[]}],"indexes":[]}"#;
        assert!(load(bad_type.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let db = sample_db();
        let path = std::env::temp_dir().join("pmv_snapshot_test.json");
        save_to_path(&db, &["r"], &path).unwrap();
        let restored = load_from_path(&path).unwrap();
        assert_eq!(restored.len("r").unwrap(), 3);
        std::fs::remove_file(&path).ok();
    }
}
