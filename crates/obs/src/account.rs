//! Per-template workload accounting — the advisor's future input.
//!
//! The paper's view-selection problem (and the multi-query-optimization
//! line of work it builds on) needs *observed* per-template statistics:
//! how often each template is asked, how often the cache answers (O2
//! hit / partial / miss), how fast first results arrive, what O3 scans,
//! and what maintenance costs to keep the template's view fresh.
//! [`AccountTable`] is that table: one [`TemplateAccount`] per template
//! id, registered once (cold path, behind an `RwLock<HashMap>`) and
//! thereafter recorded into lock-free.
//!
//! Every atomic here is statistics, not synchronization — relaxed
//! `fetch_add`s exactly like `pmv_core::stats::AtomicPmvStats`: no
//! reader derives a happens-before edge from them, a snapshot taken
//! while writers are active may mix adjacent updates, and totals are
//! exact once writers quiesce. [`AccountSnapshot::merge`] is plain
//! field-wise addition (histograms merge bucket-wise), so per-thread
//! recording folds to the same result as serial recording — the
//! property the concurrent-merge proptest pins.
//!
//! The recording path is *not* gated here: callers gate on
//! `ObsRegistry::enabled()` so the disabled serving path stays a single
//! relaxed atomic load, the same contract as `ObsRegistry::record`.

use crate::hist::{HistSnapshot, LatencyHistogram};
use crate::sketch::SpaceSaving;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// How O2 answered one query, classified the way the paper counts
/// cache efficacy: a `Hit` means a probed bcp was resident (the paper's
/// hit probability numerator), `Partial` means tuples were served
/// without a resident bcp (probationary / partially filled cache), and
/// `Miss` means the cache contributed nothing before O3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum O2Outcome {
    /// A probed bcp was resident; partials served from the view.
    Hit,
    /// Tuples served without a full bcp hit.
    Partial,
    /// Nothing served from the cache.
    Miss,
}

/// Lock-free accounting cell for one template: counters and latency
/// histograms bumped on the serving path, a maintenance-cost pair
/// bumped by the maintenance path, and a bytes-resident gauge refreshed
/// at export time (sizing a store is too heavy for the hot path).
#[derive(Debug, Default)]
pub struct TemplateAccount {
    queries: AtomicU64,
    o2_hit: AtomicU64,
    o2_partial: AtomicU64,
    o2_miss: AtomicU64,
    o3_rows_scanned: AtomicU64,
    maint_join_ns: AtomicU64,
    maint_join_rows: AtomicU64,
    bytes_resident: AtomicU64,
    ttfr: LatencyHistogram,
    full: LatencyHistogram,
    /// Heavy-hitter sketch over maintenance delta keys — the
    /// heavy/light partitioner's frequency source. Mutex, not atomics:
    /// it is fed only from the maintenance path (already serialized
    /// under the view's exclusive maintenance lock), so the lock is
    /// uncontended in practice.
    delta_keys: Mutex<SpaceSaving>,
}

impl TemplateAccount {
    /// Fresh zeroed account.
    pub fn new() -> Self {
        TemplateAccount::default()
    }

    /// Record one served query: O2 outcome, the TTFR and full-latency
    /// points, and how many tuples O3 examined. Wait-free (relaxed
    /// `fetch_add`s only).
    #[inline]
    pub fn record_query(&self, outcome: O2Outcome, ttfr: Duration, full: Duration, o3_rows: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        match outcome {
            O2Outcome::Hit => &self.o2_hit,
            O2Outcome::Partial => &self.o2_partial,
            O2Outcome::Miss => &self.o2_miss,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.o3_rows_scanned.fetch_add(o3_rows, Ordering::Relaxed);
        self.ttfr.record(ttfr);
        self.full.record(full);
    }

    /// Record one maintenance join on this template's view: the ΔR ⋈ R
    /// cost in wall time and rows produced.
    #[inline]
    pub fn record_maintenance(&self, join: Duration, join_rows: u64) {
        self.maint_join_ns.fetch_add(
            join.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        self.maint_join_rows.fetch_add(join_rows, Ordering::Relaxed);
    }

    /// Refresh the bytes-resident gauge (export-time, not per query).
    pub fn set_bytes_resident(&self, bytes: u64) {
        self.bytes_resident.store(bytes, Ordering::Relaxed);
    }

    /// Feed one maintenance delta key (pre-hashed) into the
    /// heavy-hitter sketch, returning its estimated frequency after the
    /// update. The heavy/light partitioner compares the return value
    /// against its threshold to route the delta.
    pub fn note_delta_key(&self, key: u64) -> u64 {
        self.delta_keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .note(key)
    }

    /// Estimated frequency of a delta key without recording it.
    pub fn delta_key_estimate(&self, key: u64) -> u64 {
        self.delta_keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .estimate(key)
    }

    /// Delta keys at or above `threshold`, heaviest first.
    pub fn heavy_delta_keys(&self, threshold: u64) -> Vec<(u64, u64)> {
        self.delta_keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .heavy(threshold)
    }

    /// Point-in-time plain copy (may mix adjacent updates while writers
    /// are active; exact once they quiesce).
    pub fn snapshot(&self) -> AccountSnapshot {
        AccountSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            o2_hit: self.o2_hit.load(Ordering::Relaxed),
            o2_partial: self.o2_partial.load(Ordering::Relaxed),
            o2_miss: self.o2_miss.load(Ordering::Relaxed),
            o3_rows_scanned: self.o3_rows_scanned.load(Ordering::Relaxed),
            maint_join_ns: self.maint_join_ns.load(Ordering::Relaxed),
            maint_join_rows: self.maint_join_rows.load(Ordering::Relaxed),
            bytes_resident: self.bytes_resident.load(Ordering::Relaxed),
            ttfr: self.ttfr.snapshot(),
            full: self.full.snapshot(),
        }
    }

    /// Zero every series (bench warm-up resets).
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.o2_hit.store(0, Ordering::Relaxed);
        self.o2_partial.store(0, Ordering::Relaxed);
        self.o2_miss.store(0, Ordering::Relaxed);
        self.o3_rows_scanned.store(0, Ordering::Relaxed);
        self.maint_join_ns.store(0, Ordering::Relaxed);
        self.maint_join_rows.store(0, Ordering::Relaxed);
        self.bytes_resident.store(0, Ordering::Relaxed);
        self.ttfr.reset();
        self.full.reset();
        self.delta_keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// Plain mergeable image of a [`TemplateAccount`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccountSnapshot {
    /// Queries recorded against this template.
    pub queries: u64,
    /// Queries whose probed bcp was resident.
    pub o2_hit: u64,
    /// Queries served partial tuples without a resident bcp.
    pub o2_partial: u64,
    /// Queries the cache contributed nothing to.
    pub o2_miss: u64,
    /// Cumulative tuples examined by O3 executions.
    pub o3_rows_scanned: u64,
    /// Cumulative ΔR ⋈ R maintenance join wall time, nanoseconds.
    pub maint_join_ns: u64,
    /// Cumulative maintenance join output rows.
    pub maint_join_rows: u64,
    /// Bytes resident in the template's view store (gauge; `max` on
    /// merge since per-thread images observe the same store).
    pub bytes_resident: u64,
    /// Time-to-first-result distribution.
    pub ttfr: HistSnapshot,
    /// Full-result latency distribution.
    pub full: HistSnapshot,
}

impl AccountSnapshot {
    /// Fold another snapshot into this one. Counter addition and
    /// bucket-wise histogram merge are exactly associative and
    /// commutative, so N per-thread images fold to the serial oracle.
    pub fn merge(&mut self, other: &AccountSnapshot) {
        self.queries += other.queries;
        self.o2_hit += other.o2_hit;
        self.o2_partial += other.o2_partial;
        self.o2_miss += other.o2_miss;
        self.o3_rows_scanned += other.o3_rows_scanned;
        self.maint_join_ns = self.maint_join_ns.saturating_add(other.maint_join_ns);
        self.maint_join_rows += other.maint_join_rows;
        self.bytes_resident = self.bytes_resident.max(other.bytes_resident);
        self.ttfr.merge(&other.ttfr);
        self.full.merge(&other.full);
    }

    /// O2 hit rate in `[0, 1]` (0 when no queries).
    pub fn hit_rate(&self) -> f64 {
        match self.queries {
            0 => 0.0,
            n => self.o2_hit as f64 / n as f64,
        }
    }

    /// Scalar cost score used to rank templates in the profile report:
    /// total serving wall time plus maintenance join time, nanoseconds.
    /// "Where did the machine's time go, per template" — the quantity
    /// the advisor trades off against benefit.
    pub fn cost_score_ns(&self) -> u64 {
        self.full.sum_ns().saturating_add(self.maint_join_ns)
    }

    /// Hand-rolled JSON object (the serde_json shim has no serializer).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queries\":{},\"o2_hit\":{},\"o2_partial\":{},\"o2_miss\":{},\
             \"hit_rate\":{:.4},\"o3_rows_scanned\":{},\"maint_join_us\":{},\
             \"maint_join_rows\":{},\"bytes_resident\":{},\
             \"ttfr\":{},\"full\":{}}}",
            self.queries,
            self.o2_hit,
            self.o2_partial,
            self.o2_miss,
            self.hit_rate(),
            self.o3_rows_scanned,
            self.maint_join_ns / 1_000,
            self.maint_join_rows,
            self.bytes_resident,
            crate::export::phase_json(&self.ttfr),
            crate::export::phase_json(&self.full),
        )
    }

    /// Counter pairs for `ViewMetrics`-style export.
    pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("acct_queries", self.queries),
            ("acct_o2_hit", self.o2_hit),
            ("acct_o2_partial", self.o2_partial),
            ("acct_o2_miss", self.o2_miss),
            ("acct_o3_rows_scanned", self.o3_rows_scanned),
            ("acct_maint_join_us", self.maint_join_ns / 1_000),
            ("acct_maint_join_rows", self.maint_join_rows),
        ]
    }
}

/// The per-template table: template id → [`TemplateAccount`].
/// Registration is the cold path (template creation); recording goes
/// through the returned `Arc` and never touches the map again.
#[derive(Debug, Default)]
pub struct AccountTable {
    map: RwLock<HashMap<Arc<str>, Arc<TemplateAccount>>>,
}

impl AccountTable {
    /// Empty table.
    pub fn new() -> Self {
        AccountTable::default()
    }

    /// Account for `template`, creating it on first sight. Idempotent:
    /// every caller registering the same id gets the same cell, so
    /// concurrent registration never splits a template's statistics.
    pub fn register(&self, template: &Arc<str>) -> Arc<TemplateAccount> {
        if let Some(acct) = self
            .map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(template)
        {
            return Arc::clone(acct);
        }
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(Arc::clone(template))
                .or_insert_with(|| Arc::new(TemplateAccount::new())),
        )
    }

    /// Look up without creating.
    pub fn get(&self, template: &str) -> Option<Arc<TemplateAccount>> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(template)
            .map(Arc::clone)
    }

    /// Registered template ids, sorted.
    pub fn templates(&self) -> Vec<Arc<str>> {
        let mut names: Vec<Arc<str>> = self
            .map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Snapshot every account, sorted by template id.
    pub fn snapshot_all(&self) -> Vec<(Arc<str>, AccountSnapshot)> {
        let map = self.map.read().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<(Arc<str>, AccountSnapshot)> = map
            .iter()
            .map(|(name, acct)| (Arc::clone(name), acct.snapshot()))
            .collect();
        drop(map);
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// The whole table as one JSON object keyed by template id.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, snap)) in self.snapshot_all().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                crate::trace::esc(name),
                snap.to_json()
            ));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_recording_accumulates() {
        let table = AccountTable::new();
        let t: Arc<str> = Arc::from("t1");
        let a = table.register(&t);
        let b = table.register(&t);
        assert!(Arc::ptr_eq(&a, &b));
        a.record_query(
            O2Outcome::Hit,
            Duration::from_micros(80),
            Duration::from_micros(900),
            42,
        );
        b.record_query(
            O2Outcome::Miss,
            Duration::from_micros(500),
            Duration::from_micros(2_000),
            100,
        );
        a.record_maintenance(Duration::from_micros(30), 7);
        a.set_bytes_resident(4_096);
        let s = table.get("t1").unwrap().snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.o2_hit, 1);
        assert_eq!(s.o2_miss, 1);
        assert_eq!(s.o3_rows_scanned, 142);
        assert_eq!(s.maint_join_rows, 7);
        assert_eq!(s.bytes_resident, 4_096);
        assert_eq!(s.ttfr.count(), 2);
        assert_eq!(s.hit_rate(), 0.5);
        assert!(table.get("absent").is_none());
    }

    #[test]
    fn snapshot_all_is_sorted_and_json_balanced() {
        let table = AccountTable::new();
        for name in ["zeta", "alpha", "mid"] {
            table.register(&Arc::from(name));
        }
        let rows = table.snapshot_all();
        let names: Vec<&str> = rows.iter().map(|(n, _)| &**n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        let j = table.to_json();
        assert!(j.contains("\"alpha\":{"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn delta_key_sketch_feeds_and_resets() {
        let acct = TemplateAccount::new();
        assert_eq!(acct.note_delta_key(42), 1);
        assert_eq!(acct.note_delta_key(42), 2);
        assert_eq!(acct.note_delta_key(7), 1);
        assert_eq!(acct.delta_key_estimate(42), 2);
        let heavy = acct.heavy_delta_keys(2);
        assert_eq!(heavy, vec![(42, 2)]);
        acct.reset();
        assert_eq!(acct.delta_key_estimate(42), 0);
    }

    #[test]
    fn merge_of_thread_snapshots_matches_serial() {
        let a = TemplateAccount::new();
        let b = TemplateAccount::new();
        let serial = TemplateAccount::new();
        for (acct, us) in [(&a, 100u64), (&b, 300)] {
            acct.record_query(
                O2Outcome::Partial,
                Duration::from_micros(us),
                Duration::from_micros(us * 4),
                us,
            );
            serial.record_query(
                O2Outcome::Partial,
                Duration::from_micros(us),
                Duration::from_micros(us * 4),
                us,
            );
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, serial.snapshot());
    }
}
