//! Tabular experiment reports.
//!
//! Every experiment binary prints the same rows/series the paper reports,
//! as an aligned text table plus a JSON line per row (for downstream
//! plotting).

/// One row of an experiment: an x-value plus named series values.
#[derive(Clone, Debug)]
pub struct Row {
    /// X-axis label (e.g. `h=3`, `N=20000`, `p=40%`).
    pub x: String,
    /// (series name, value) pairs.
    pub values: Vec<(String, f64)>,
}

/// A whole experiment's output.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `figure6`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column header for the x-axis.
    pub x_label: String,
    /// Rows in x order.
    pub rows: Vec<Row>,
}

impl ExperimentReport {
    /// New empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
    ) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, x: impl Into<String>, values: Vec<(String, f64)>) {
        self.rows.push(Row {
            x: x.into(),
            values,
        });
    }

    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        if self.rows.is_empty() {
            out.push_str("(no rows)\n");
            return out;
        }
        let series: Vec<&str> = self.rows[0]
            .values
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows
                .iter()
                .map(|r| r.x.len())
                .chain([self.x_label.len()])
                .max()
                .unwrap_or(4),
        );
        for (i, s) in series.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|r| format_value(r.values[i].1).len())
                .chain([s.len()])
                .max()
                .unwrap_or(8);
            widths.push(w);
        }
        // Header.
        out.push_str(&format!("{:<w$}", self.x_label, w = widths[0]));
        for (i, s) in series.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", s, w = widths[i + 1]));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:<w$}", r.x, w = widths[0]));
            for (i, (_, v)) in r.values.iter().enumerate() {
                out.push_str(&format!("  {:>w$}", format_value(*v), w = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }

    /// Render as one JSON object per row (JSON Lines).
    pub fn to_jsonl(&self) -> String {
        self.rows
            .iter()
            .map(|r| {
                let mut obj = serde_json::Map::new();
                obj.insert("experiment".into(), self.id.clone().into());
                obj.insert(self.x_label.clone(), r.x.clone().into());
                for (name, v) in &r.values {
                    obj.insert(
                        name.clone(),
                        serde_json::Number::from_f64(*v)
                            .map(serde_json::Value::Number)
                            .unwrap_or(serde_json::Value::Null),
                    );
                }
                serde_json::Value::Object(obj).to_string()
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Print table to stdout and JSONL to stdout (marked), the standard
    /// finish of every experiment binary.
    pub fn print(&self) {
        println!("{}", self.to_table());
        println!("--- jsonl ---");
        println!("{}", self.to_jsonl());
    }
}

/// Compact numeric formatting: integers plainly, small values in
/// scientific notation, others with up to 4 significant decimals.
fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut r = ExperimentReport::new("fig6", "Hit probability", "h");
        r.push("1", vec![("CLOCK".into(), 0.8312), ("2Q".into(), 0.8761)]);
        r.push("2", vec![("CLOCK".into(), 0.9514), ("2Q".into(), 0.97)]);
        let t = r.to_table();
        assert!(t.contains("fig6"));
        assert!(t.contains("CLOCK"));
        assert!(t.contains("0.8312"));
    }

    #[test]
    fn jsonl_has_one_object_per_row() {
        let mut r = ExperimentReport::new("fig7", "t", "N");
        r.push("10000", vec![("hit".into(), 0.9)]);
        r.push("20000", vec![("hit".into(), 0.95)]);
        let j = r.to_jsonl();
        assert_eq!(j.lines().count(), 2);
        let v: serde_json::Value = serde_json::from_str(j.lines().next().unwrap()).unwrap();
        assert_eq!(v["experiment"], "fig7");
        assert_eq!(v["hit"], 0.9);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(5.0), "5");
        assert_eq!(format_value(0.00001), "1.000e-5");
        assert_eq!(format_value(0.25), "0.2500");
    }
}
