//! Figure 6 — hit probability, "number of bcps" experiment.
//!
//! N = 20K fixed; h swept 1..=5; CLOCK vs simplified 2Q; α ∈ {1.07
//! (high skew: ~10% of bcps draw 90% of accesses), 1.01 (moderate skew:
//! ~21% draw 90%)}. 1M bcps, 1M warm-up queries, 1M measured queries.
//!
//! Paper's reading: hit probability approaches 100% quickly as h grows;
//! larger α ⇒ higher hit probability; 2Q > CLOCK throughout.
//!
//! `--quick` scales everything down ~20× for a smoke run.

use pmv_bench::tpcr_harness::arg_flag;
use pmv_bench::ExperimentReport;
use pmv_cache::PolicyKind;
use pmv_workload::{run_sim, SimConfig};

fn main() {
    let quick = arg_flag("--quick");
    let (total, n, warm, measure) = if quick {
        (50_000, 1_000, 50_000, 50_000)
    } else {
        (1_000_000, 20_000, 1_000_000, 1_000_000)
    };

    let mut report = ExperimentReport::new(
        "figure6",
        "Hit probability vs h (number of bcps experiment)",
        "h",
    );
    for h in 1..=5usize {
        let mut values = Vec::new();
        for (policy, alpha) in [
            (PolicyKind::TwoQ, 1.07),
            (PolicyKind::Clock, 1.07),
            (PolicyKind::TwoQ, 1.01),
            (PolicyKind::Clock, 1.01),
        ] {
            let cfg = SimConfig {
                total_bcps: total,
                n,
                policy,
                alpha,
                h,
                warmup: warm,
                measure,
                ..Default::default()
            };
            let r = run_sim(&cfg);
            values.push((
                format!("{} alpha={alpha}", policy.name()),
                r.hit_probability,
            ));
            eprintln!(
                "h={h} {} alpha={alpha}: hit={:.4}",
                policy.name(),
                r.hit_probability
            );
        }
        report.push(h.to_string(), values);
    }
    report.print();
}
