//! Property tests for the `Value` total order and tuple operations —
//! every PMV structure (B-trees, bcp keys, DS) relies on `Ord`/`Eq`/
//! `Hash` agreeing.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use pmv_storage::{Tuple, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Includes NaN/±0 via special values.
        prop_oneof![
            any::<f64>(),
            Just(f64::NAN),
            Just(-0.0),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY)
        ]
        .prop_map(Value::Double),
        "[a-z]{0,8}".prop_map(|s| Value::str(&s)),
    ]
}

fn hash_of(v: &impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn ord_is_total_and_consistent(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering::*;
        // Antisymmetry.
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => {
                prop_assert_eq!(b.cmp(&a), Equal);
                prop_assert_eq!(&a, &b);
            }
        }
        // Transitivity (one representative pattern; sort() below covers
        // the rest via the stdlib's internal checks).
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Eq ⇔ Ordering::Equal.
        prop_assert_eq!(a == b, a.cmp(&b) == Equal);
    }

    #[test]
    fn eq_implies_same_hash(a in value_strategy(), b in value_strategy()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn sorting_values_never_panics(mut vs in proptest::collection::vec(value_strategy(), 0..50)) {
        // A broken Ord makes sort_unstable panic ("comparison method
        // violates its contract") on adversarial inputs.
        vs.sort_unstable();
        for w in vs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn tuple_project_concat_roundtrip(
        vals in proptest::collection::vec(value_strategy(), 1..8),
        extra in proptest::collection::vec(value_strategy(), 0..4),
    ) {
        let t = Tuple::new(vals.clone());
        let u = Tuple::new(extra.clone());
        let joined = t.concat(&u);
        prop_assert_eq!(joined.arity(), vals.len() + extra.len());
        // Projecting the original positions recovers t.
        let positions: Vec<usize> = (0..vals.len()).collect();
        prop_assert_eq!(joined.project(&positions), t);
        // Identity projection.
        let all: Vec<usize> = (0..joined.arity()).collect();
        prop_assert_eq!(&joined.project(&all), &joined);
    }

    #[test]
    fn tuple_hash_agrees_with_eq(
        vals in proptest::collection::vec(value_strategy(), 0..6)
    ) {
        let a = Tuple::new(vals.clone());
        let b = Tuple::new(vals);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(hash_of(&a), hash_of(&b));
    }
}
