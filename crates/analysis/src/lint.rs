//! `pmv-lint` — repo-specific concurrency lint rules the compiler can't
//! express, run over `crates/**` source text.
//!
//! The rules encode the locking contract that DESIGN.md §10–§12 argue
//! correctness from:
//!
//! | rule | contract |
//! |------|----------|
//! | `write_guard_across_exec` | a shard `RwLockWriteGuard` is never held across a call into `query::exec` (executor work under a shard X-lock blocks the shard and inverts the DB→shard lock order) |
//! | `lock_in_catch_unwind` | no lock acquisition inside a `catch_unwind` closure — guards are acquired *outside* so the quarantine handler can still reach the store after a panic |
//! | `lock_order` | DB guard before shard guard, never the reverse |
//! | `relaxed_outside_stats` | `Ordering::Relaxed` only in designated statistics modules (`stats.rs`, anywhere in the `obs` crate, or a file whose docs declare the "statistics, not synchronization" contract) |
//! | `lock_in_pin_region` | no blocking lock acquisition (`.read()`/`.write()`/`.lock()`) inside an epoch-pinned region — the scope of a `let … = ….pin()` binding or the body of a `run_pinned` function. The epoch serving path promises "no lock waited on between pin and answer"; best-effort `try_write()` is allowed |
//! | `raw_fs_write` | in `crates/{core,storage,wal}/src`, `pmv_wal::dio` is the *only* module allowed raw `std::fs` write access (`File::create`, `fs::write`, `fs::rename`, …). Everything else must route through `dio` so fault injection and the crash kill-point matrix see every durable write. Test modules (`#[cfg(test)]` and below) are exempt |
//!
//! ## Escape hatch
//!
//! A finding can be suppressed with a comment on the same line or the
//! line directly above:
//!
//! ```text
//! // pmv::allow(write_guard_across_exec): <reason>
//! ```
//!
//! Escapes are counted and reported; CI treats a non-empty allow list
//! for shipped-enabled rules as a review flag (the repo itself carries
//! zero entries — real violations get fixed, per ISSUE 3).
//!
//! ## Implementation notes
//!
//! The workspace is fully offline, so there is no `syn`: the pass works
//! on *masked* source text (comments and string literals blanked out,
//! newlines preserved) with brace-depth tracking for guard scopes. That
//! is deliberately coarse — the rules are tripwires for reviewers, not a
//! type system — and each heuristic is documented inline.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Severity of a lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Reported; fails the run only under `--deny-warnings` (CI mode).
    Warning,
    /// Always fails the run.
    Error,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Warning => "warning",
            Level::Error => "error",
        })
    }
}

/// The shipped-enabled rules.
pub const RULES: [(&str, Level); 6] = [
    ("write_guard_across_exec", Level::Error),
    ("lock_in_catch_unwind", Level::Error),
    ("lock_order", Level::Error),
    ("relaxed_outside_stats", Level::Warning),
    ("lock_in_pin_region", Level::Error),
    ("raw_fs_write", Level::Error),
];

/// One lint hit.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule identifier (see [`RULES`]).
    pub rule: &'static str,
    /// Severity the rule ships at.
    pub level: Level,
    /// File the hit is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Explanation with the offending snippet context.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [pmv::{}] {}:{}: {}",
            self.level,
            self.rule,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// A used `pmv::allow(...)` escape entry.
#[derive(Clone, Debug)]
pub struct AllowUse {
    /// Rule the escape suppressed.
    pub rule: String,
    /// File containing the escape.
    pub file: PathBuf,
    /// 1-based line of the suppressed finding.
    pub line: usize,
}

/// Outcome of linting a tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings.
    pub findings: Vec<Finding>,
    /// Escape-hatch entries that actually suppressed a finding.
    pub allows_used: Vec<AllowUse>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the run fails: any error, or any warning when
    /// `deny_warnings` is set.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.findings
            .iter()
            .any(|f| f.level == Level::Error || deny_warnings)
            && !self.findings.is_empty()
    }
}

/// Lint every `.rs` file under `root` (skipping `target/`).
pub fn lint_tree(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    for file in files {
        let source = fs::read_to_string(&file)?;
        report.files_scanned += 1;
        lint_source(&file, &source, &mut report);
    }
    Ok(report)
}

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one file's source text into `report`.
pub fn lint_source(file: &Path, source: &str, report: &mut LintReport) {
    let masked = mask_comments_and_strings(source);
    let lines: Vec<&str> = source.lines().collect();
    let line_of = line_index(&masked);

    let mut raw = Vec::new();
    rule_write_guard_across_exec(&masked, &line_of, &mut raw);
    rule_lock_in_catch_unwind(&masked, &line_of, &mut raw);
    rule_lock_order(&masked, &line_of, &mut raw);
    rule_relaxed_outside_stats(file, source, &masked, &line_of, &mut raw);
    rule_lock_in_pin_region(&masked, &line_of, &mut raw);
    rule_raw_fs_write(file, &masked, &line_of, &mut raw);

    for (rule, level, line, message) in raw {
        if let Some(allow_line) = allow_covers(&lines, rule, line) {
            report.allows_used.push(AllowUse {
                rule: rule.to_string(),
                file: file.to_path_buf(),
                line: allow_line,
            });
        } else {
            report.findings.push(Finding {
                rule,
                level,
                file: file.to_path_buf(),
                line,
                message,
            });
        }
    }
}

pub(crate) type RawFinding = (&'static str, Level, usize, String);

/// Whether a `pmv::allow(rule)` escape covers a finding on `line`
/// (1-based): same line, or anywhere in the contiguous `//` comment
/// block directly above it (so a multi-line justification can carry the
/// marker on its first line). Returns the escape's line.
pub(crate) fn allow_covers(lines: &[&str], rule: &str, line: usize) -> Option<usize> {
    let needle = format!("pmv::allow({rule})");
    if let Some(text) = lines.get(line.saturating_sub(1)) {
        if text.contains(&needle) {
            return Some(line);
        }
    }
    let mut candidate = line.saturating_sub(1);
    while candidate >= 1 {
        let Some(text) = lines.get(candidate - 1) else {
            break;
        };
        if text.contains(&needle) {
            return Some(candidate);
        }
        // Keep walking only while still inside a comment block.
        if !text.trim_start().starts_with("//") {
            break;
        }
        candidate -= 1;
    }
    None
}

/// Replace comment and string-literal *contents* with spaces, keeping
/// newlines and overall length, so byte offsets and brace depths in the
/// masked text line up with the original.
pub fn mask_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let push_masked = |out: &mut Vec<u8>, b: u8| {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    };
    while i < bytes.len() {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                push_masked(&mut out, bytes[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (Rust block comments nest).
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    push_masked(&mut out, bytes[i]);
                    push_masked(&mut out, bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    push_masked(&mut out, bytes[i]);
                    push_masked(&mut out, bytes[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    push_masked(&mut out, bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (and br variants).
        if (b == b'r' || b == b'b') && !prev_is_ident(bytes, i) {
            let mut j = i;
            if bytes[j] == b'b' && j + 1 < bytes.len() && bytes[j + 1] == b'r' {
                j += 1;
            }
            if bytes[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0;
                while k < bytes.len() && bytes[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == b'"' {
                    // Copy the opener verbatim-masked, then scan to the
                    // matching `"###` closer.
                    for &b in &bytes[i..=k] {
                        push_masked(&mut out, b);
                    }
                    i = k + 1;
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let mut h = 0;
                            while h < hashes && i + 1 + h < bytes.len() && bytes[i + 1 + h] == b'#'
                            {
                                h += 1;
                            }
                            if h == hashes {
                                for _ in 0..=hashes {
                                    push_masked(&mut out, b'"');
                                    i += 1;
                                }
                                break 'raw;
                            }
                        }
                        push_masked(&mut out, bytes[i]);
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Normal string literal.
        if b == b'"' {
            push_masked(&mut out, b);
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    push_masked(&mut out, bytes[i]);
                    push_masked(&mut out, bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'"' {
                    push_masked(&mut out, bytes[i]);
                    i += 1;
                    break;
                } else {
                    push_masked(&mut out, bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a literal; 'a (no
        // closing quote within the escape window) is a lifetime or loop
        // label. The literal's payload may be '"', '{' or '}', so it
        // must be masked or downstream brace/string lexing derails.
        if b == b'\'' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                // Escaped char literal: '\n', '\'', '\\', '\x7f',
                // '\u{2764}'. The byte AFTER the backslash is consumed
                // as part of the escape pair — without that, '\'' and
                // '\\' mis-lex (the escaped quote/backslash is taken as
                // the closer or an opener) and a stray ' swallows the
                // code that follows.
                out.push(b);
                push_masked(&mut out, bytes[i + 1]);
                i += 2;
                if i < bytes.len() {
                    push_masked(&mut out, bytes[i]);
                    i += 1;
                }
                while i < bytes.len() && bytes[i] != b'\'' {
                    push_masked(&mut out, bytes[i]);
                    i += 1;
                }
                if i < bytes.len() {
                    out.push(b'\'');
                    i += 1;
                }
                continue;
            }
            if i + 2 < bytes.len() && bytes[i + 1] != b'\'' && bytes[i + 2] == b'\'' {
                // Simple char literal 'x' (the payload may be any byte,
                // including '"' / '{' / '}'). A lifetime such as 'a in
                // `Foo<'a>` never has a quote two bytes ahead, so this
                // window test disambiguates the two.
                out.push(b);
                push_masked(&mut out, bytes[i + 1]);
                out.push(b'\'');
                i += 3;
                continue;
            }
            // Lifetime / loop label: fall through as-is.
        }
        out.push(b);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

pub(crate) fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// For each byte offset, the 1-based line number.
pub(crate) fn line_index(text: &str) -> Vec<usize> {
    let mut line = 1;
    text.bytes()
        .map(|b| {
            let l = line;
            if b == b'\n' {
                line += 1;
            }
            l
        })
        .collect()
}

pub(crate) fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        out.push(start + pos);
        start += pos + needle.len();
    }
    out
}

/// The statement containing byte `pos`: backwards to the previous `;`,
/// `{` or `}`, forwards to the next `;` or `{`.
pub(crate) fn statement_around(masked: &str, pos: usize) -> (usize, &str) {
    let bytes = masked.as_bytes();
    let mut start = pos;
    while start > 0 && !matches!(bytes[start - 1], b';' | b'{' | b'}') {
        start -= 1;
    }
    let mut end = pos;
    while end < bytes.len() && !matches!(bytes[end], b';' | b'{') {
        end += 1;
    }
    (start, &masked[start..end.min(masked.len())])
}

/// Extract the bound variable of a `let [mut] name = …` statement.
pub(crate) fn let_binding_name(stmt: &str) -> Option<&str> {
    let after_let = stmt.find("let ").map(|p| &stmt[p + 4..])?;
    let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let);
    let end = after_mut
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(after_mut.len());
    let name = &after_mut[..end];
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Byte offset where the scope opened at `from` ends: brace depth from
/// `from` drops below zero, or `drop(var)` releases the guard early.
pub(crate) fn guard_scope_end(masked: &str, from: usize, var: Option<&str>) -> usize {
    let bytes = masked.as_bytes();
    let drop_pat = var.map(|v| format!("drop({v})"));
    let mut depth: i64 = 0;
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ => {}
        }
        if let Some(p) = &drop_pat {
            if masked[i..].starts_with(p.as_str()) {
                return i;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// Executor entry points a shard guard must not be held across. The
/// targeted-upquery refill (`upquery_fill`) and the fixed-tuple delta
/// join (`join_fixed`) are executor work like any other: a keyed
/// refill still scans base relations under the db read lock.
pub(crate) const EXEC_CALLS: [&str; 8] = [
    "execute(",
    "execute_bounded(",
    "execute_bounded_arc(",
    "execute_scan(",
    "join_from(",
    "join_fixed(",
    "run_plain(",
    "upquery_fill(",
];

/// Shard write-guard bindings: a `let` statement that both mentions
/// `shard` and acquires `.write()`.
pub(crate) fn shard_guard_bindings<'a>(
    masked: &'a str,
    acquire: &str,
) -> impl Iterator<Item = (usize, usize, Option<&'a str>)> + 'a {
    let mut out = Vec::new();
    for pos in find_all(masked, acquire) {
        let (stmt_start, stmt) = statement_around(masked, pos);
        if !stmt.contains("let ") || !stmt.contains("shard") {
            continue;
        }
        let var = let_binding_name(stmt);
        // Guards consumed inside the same expression (e.g.
        // `shard.write().quarantine()` or closure-local `s.read().x()`)
        // are released at the statement's end; only named bindings hold.
        if var.is_none() {
            continue;
        }
        let _ = stmt_start;
        out.push((pos, guard_scope_end(masked, pos + acquire.len(), var), var));
    }
    out.into_iter()
}

fn rule_write_guard_across_exec(masked: &str, line_of: &[usize], out: &mut Vec<RawFinding>) {
    for (pos, scope_end, var) in shard_guard_bindings(masked, ".write()") {
        let span = &masked[pos..scope_end];
        for call in EXEC_CALLS {
            for hit in find_all(span, call) {
                // Require a call, not a definition (`fn execute(`).
                let before = &span[..hit];
                if before.trim_end().ends_with("fn") {
                    continue;
                }
                let at = pos + hit;
                out.push((
                    "write_guard_across_exec",
                    Level::Error,
                    line_of[at],
                    format!(
                        "`{}` called while shard write guard `{}` (line {}) is live — \
                         executor work under a shard X-lock; compute first, lock second",
                        call.trim_end_matches('('),
                        var.unwrap_or("_"),
                        line_of[pos]
                    ),
                ));
            }
        }
    }
}

fn rule_lock_in_catch_unwind(masked: &str, line_of: &[usize], out: &mut Vec<RawFinding>) {
    for pos in find_all(masked, "catch_unwind") {
        // Span: balanced parens of the catch_unwind(...) call.
        let Some(open_rel) = masked[pos..].find('(') else {
            continue;
        };
        let open = pos + open_rel;
        let bytes = masked.as_bytes();
        let mut depth = 0i64;
        let mut end = open;
        for (i, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let span = &masked[open..end];
        for acquire in [".read()", ".write()", ".lock()"] {
            for hit in find_all(span, acquire) {
                let at = open + hit;
                out.push((
                    "lock_in_catch_unwind",
                    Level::Error,
                    line_of[at],
                    format!(
                        "lock acquisition `{acquire}` inside the `catch_unwind` closure \
                         starting on line {} — acquire the guard outside so the quarantine \
                         handler can reach the store after a panic",
                        line_of[pos]
                    ),
                ));
            }
        }
    }
}

fn rule_lock_order(masked: &str, line_of: &[usize], out: &mut Vec<RawFinding>) {
    // DB guard before shard guard, never the reverse: flag DB lock
    // acquisitions while a shard guard binding is live.
    for acquire in [".write()", ".read()"] {
        for (pos, scope_end, var) in shard_guard_bindings(masked, acquire) {
            let span = &masked[pos..scope_end];
            for db_acquire in ["db.read()", "db.write()"] {
                for hit in find_all(span, db_acquire) {
                    // `db` must be a standalone receiver (`db.read()`,
                    // `self.db.read()`), not a suffix of another ident.
                    let at = pos + hit;
                    if at > 0 && prev_is_ident(masked.as_bytes(), at) {
                        continue;
                    }
                    out.push((
                        "lock_order",
                        Level::Error,
                        line_of[at],
                        format!(
                            "`{db_acquire}` while shard guard `{}` (line {}) is live — \
                             lock order is DB guard first, then shard guard, never the \
                             reverse",
                            var.unwrap_or("_"),
                            line_of[pos]
                        ),
                    ));
                }
            }
        }
    }
}

/// Blocking lock acquisitions forbidden inside an epoch-pinned region.
/// `.try_write()` / `.try_read()` deliberately do not match (`_` before
/// `write`): best-effort, non-blocking write-backs are the sanctioned
/// pattern on the pinned path.
pub(crate) const BLOCKING_ACQUIRES: [&str; 3] = [".read()", ".write()", ".lock()"];

fn rule_lock_in_pin_region(masked: &str, line_of: &[usize], out: &mut Vec<RawFinding>) {
    // Region form 1: the scope of a `let pin = ….pin()` binding. The
    // pinned snapshot promises lock-free serving for as long as the
    // query holds it.
    for pos in find_all(masked, ".pin()") {
        let (_, stmt) = statement_around(masked, pos);
        if !stmt.contains("let ") {
            continue;
        }
        let Some(var) = let_binding_name(stmt) else {
            continue;
        };
        let scope_end = guard_scope_end(masked, pos + ".pin()".len(), Some(var));
        flag_blocking(masked, pos, scope_end, line_of, out, &|at_line| {
            format!(
                "blocking lock acquisition while epoch pin `{var}` (line {at_line}) is live — \
                 the pinned serving path must not wait on any lock; use the published \
                 read views / `try_write` write-backs instead"
            )
        });
    }
    // Region form 2: the body of any `fn run_pinned…` — the epoch
    // serving path itself, which must stay wait-free end to end.
    for pos in find_all(masked, "fn run_pinned") {
        let Some(open_rel) = masked[pos..].find('{') else {
            continue;
        };
        let open = pos + open_rel;
        let body_end = guard_scope_end(masked, open + 1, None);
        flag_blocking(masked, open, body_end, line_of, out, &|at_line| {
            format!(
                "blocking lock acquisition inside `run_pinned` (line {at_line}) — the epoch \
                 serving path must not wait on any lock; use the published read views / \
                 `try_write` write-backs instead"
            )
        });
    }
}

fn flag_blocking(
    masked: &str,
    start: usize,
    end: usize,
    line_of: &[usize],
    out: &mut Vec<RawFinding>,
    message: &dyn Fn(usize) -> String,
) {
    let span = &masked[start..end.min(masked.len())];
    for acquire in BLOCKING_ACQUIRES {
        for hit in find_all(span, acquire) {
            let at = start + hit;
            out.push((
                "lock_in_pin_region",
                Level::Error,
                line_of[at],
                message(line_of[start]),
            ));
        }
    }
}

/// Filesystem APIs that mutate durable state. Read-side APIs
/// (`fs::read`, `File::open`, `read_dir`, `metadata`) are deliberately
/// absent — the contract covers *writes*, which must be observable by
/// fault injection.
pub(crate) const FS_WRITE_APIS: [&str; 9] = [
    "File::create(",
    "OpenOptions::new(",
    "File::options(",
    "fs::write(",
    "fs::rename(",
    "fs::remove_file(",
    "fs::remove_dir_all(",
    "fs::create_dir",
    "fs::copy(",
];

/// Crates whose production sources must route durable writes through
/// `pmv_wal::dio`: the commit path (`core`), the heap/index substrate
/// (`storage`), and the durability engine itself (`wal`).
pub(crate) const DURABLE_CRATES: [&str; 3] = ["core", "storage", "wal"];

fn rule_raw_fs_write(file: &Path, masked: &str, line_of: &[usize], out: &mut Vec<RawFinding>) {
    let comps: Vec<String> = file
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let in_scope = comps
        .windows(3)
        .any(|w| w[0] == "crates" && DURABLE_CRATES.contains(&w[1].as_str()) && w[2] == "src");
    if !in_scope {
        return;
    }
    // The one sanctioned module: every write funnels through it so a
    // `FaultPlan` can fail or crash any site the kill-point matrix
    // names.
    if comps
        .windows(3)
        .any(|w| w[0] == "wal" && w[1] == "src" && w[2] == "dio.rs")
    {
        return;
    }
    // Unit tests embedded in src files (scratch dirs, damage helpers)
    // are not production write paths: exempt everything from the first
    // `#[cfg(test)]` on. Masking keeps the attribute visible (it is
    // neither a comment nor a string).
    let test_start = masked.find("#[cfg(test)]").unwrap_or(masked.len());
    for api in FS_WRITE_APIS {
        for pos in find_all(masked, api) {
            if pos >= test_start {
                continue;
            }
            out.push((
                "raw_fs_write",
                Level::Error,
                line_of[pos],
                format!(
                    "raw filesystem write `{}` outside `pmv_wal::dio` — route it through \
                     the dio layer so fault injection and the crash kill-point matrix \
                     cover this write",
                    api.trim_end_matches('('),
                ),
            ));
        }
    }
}

/// Marker phrase a module must carry to use relaxed atomics: it declares
/// the counters are statistics with no synchronization role.
pub const RELAXED_MARKER: &str = "statistics, not synchronization";

fn rule_relaxed_outside_stats(
    file: &Path,
    source: &str,
    masked: &str,
    line_of: &[usize],
    out: &mut Vec<RawFinding>,
) {
    let name = file.file_name().map(|n| n.to_string_lossy().into_owned());
    if name.as_deref() == Some("stats.rs") {
        return;
    }
    // The whole obs crate is a designated statistics module: lock-free
    // histograms, trace ids, and the enabled switch are all counters or
    // flags with no synchronization role (its module docs carry the
    // marker too; the path allowlist keeps that contract even if a new
    // obs file forgets the phrase).
    if file.components().any(|c| c.as_os_str() == "obs") {
        return;
    }
    // The marker must appear in the original text (it lives in doc
    // comments, which masking blanks out).
    if source.contains(RELAXED_MARKER) {
        return;
    }
    for pos in find_all(masked, "Ordering::Relaxed") {
        out.push((
            "relaxed_outside_stats",
            Level::Warning,
            line_of[pos],
            format!(
                "`Ordering::Relaxed` outside a designated statistics module — move the \
                 counter to stats.rs, use Acquire/Release, or document the module with \
                 \"{RELAXED_MARKER}\""
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> LintReport {
        let mut report = LintReport::default();
        lint_source(Path::new("test.rs"), src, &mut report);
        report
    }

    #[test]
    fn masking_preserves_offsets() {
        let src = "let a = \"x{y}\"; // {brace}\nlet b = 1;\n";
        let masked = mask_comments_and_strings(src);
        assert_eq!(masked.len(), src.len());
        assert!(!masked.contains("{y}"));
        assert!(!masked.contains("{brace}"));
        assert!(masked.contains("let b = 1;"));
    }

    #[test]
    fn flags_write_guard_across_exec() {
        let src = r#"
fn bad(db: &Database) {
    let mut store = self.shards[si].write();
    let (rows, _) = execute(db, &q).unwrap();
    store.insert(rows);
}
"#;
        let report = lint_str(src);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "write_guard_across_exec");
    }

    #[test]
    fn guard_scope_ends_at_block_or_drop() {
        let src = r#"
fn good(db: &Database) {
    {
        let mut store = self.shards[si].write();
        store.insert(1);
    }
    let (rows, _) = execute(db, &q).unwrap();
    let mut store = self.shards[si].write();
    drop(store);
    let (more, _) = execute_bounded(db, &q, budget).unwrap();
}
"#;
        let report = lint_str(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn flags_lock_inside_catch_unwind() {
        let src = r#"
fn bad(&self) {
    let r = catch_unwind(AssertUnwindSafe(|| {
        let mut store = self.shards[si].write();
        store.insert(1);
    }));
}
"#;
        let report = lint_str(src);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "lock_in_catch_unwind"));
    }

    #[test]
    fn guard_outside_catch_unwind_is_clean() {
        let src = r#"
fn good(&self) {
    let mut store = self.shards[si].write();
    let r = catch_unwind(AssertUnwindSafe(|| {
        probe_parts(&mut store, &q);
    }));
    if r.is_err() {
        store.quarantine();
    }
}
"#;
        let report = lint_str(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn flags_db_lock_under_shard_guard() {
        let src = r#"
fn bad(&self) {
    let store = self.shards[si].read();
    let guard = self.db.read();
}
"#;
        let report = lint_str(src);
        assert!(report.findings.iter().any(|f| f.rule == "lock_order"));
        // Correct order: DB first, then shard.
        let src = r#"
fn good(&self) {
    let guard = self.db.read();
    let store = self.shards[si].read();
}
"#;
        let report = lint_str(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn flags_relaxed_outside_stats_and_accepts_marker() {
        let src = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n";
        let report = lint_str(src);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "relaxed_outside_stats"));
        let src = format!("//! counters are {RELAXED_MARKER}.\n{src}");
        let report = lint_str(&src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn relaxed_allowed_anywhere_in_obs_crate() {
        let src = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n";
        let mut report = LintReport::default();
        lint_source(Path::new("crates/obs/src/hist.rs"), src, &mut report);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        // A directory merely *containing* "obs" in its name is not the
        // obs crate.
        let mut report = LintReport::default();
        lint_source(Path::new("crates/observer/src/x.rs"), src, &mut report);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "relaxed_outside_stats"));
    }

    #[test]
    fn allow_escape_suppresses_and_is_counted() {
        let src = r#"
fn special(db: &Database) {
    let mut store = self.shards[si].write();
    // pmv::allow(write_guard_across_exec): measured, see DESIGN.md
    let (rows, _) = execute(db, &q).unwrap();
}
"#;
        let report = lint_str(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.allows_used.len(), 1);
        assert_eq!(report.allows_used[0].rule, "write_guard_across_exec");
    }

    #[test]
    fn flags_blocking_lock_in_pin_scope() {
        let src = r#"
fn bad(&self) {
    let snap = self.published.pin();
    let guard = self.db.read();
}
"#;
        let report = lint_str(src);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == "lock_in_pin_region"),
            "{:?}",
            report.findings
        );
        // Dropping the pin ends the region.
        let src = r#"
fn good(&self) {
    let snap = self.published.pin();
    serve(&snap);
    drop(snap);
    let guard = self.db.read();
}
"#;
        let report = lint_str(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn flags_blocking_lock_in_run_pinned_but_allows_try_write() {
        let src = r#"
fn run_pinned(&self, view: &V) {
    let sv = inner.views[si].load();
    let Some(mut store) = inner.shards[si].try_write() else {
        return;
    };
    store.touch(&bcp, true);
}
"#;
        let report = lint_str(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        let src = r#"
fn run_pinned(&self, view: &V) {
    let mut store = inner.shards[si].write();
    store.touch(&bcp, true);
}
"#;
        let report = lint_str(src);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == "lock_in_pin_region"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn flags_raw_fs_write_outside_dio() {
        let src = "fn save(p: &Path) { std::fs::write(p, b\"x\").unwrap(); }\n";
        let mut report = LintReport::default();
        lint_source(Path::new("crates/core/src/epoch.rs"), src, &mut report);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "raw_fs_write");
        // The dio module is the sanctioned funnel.
        let mut report = LintReport::default();
        lint_source(Path::new("crates/wal/src/dio.rs"), src, &mut report);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        // Crates outside the durable set are unconstrained (the CLI
        // reads scripts, benches write JSON, …).
        let mut report = LintReport::default();
        lint_source(Path::new("crates/cli/src/main.rs"), src, &mut report);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn raw_fs_write_exempts_test_modules_and_reads() {
        let src = "fn load(p: &Path) -> Vec<u8> { std::fs::read(p).unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn scratch(p: &Path) { std::fs::remove_dir_all(p).ok(); }\n\
                   }\n";
        let mut report = LintReport::default();
        lint_source(Path::new("crates/wal/src/lib.rs"), src, &mut report);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        // The same write *above* the test module is a finding.
        let src =
            "fn save(p: &Path) { std::fs::remove_dir_all(p).ok(); }\n#[cfg(test)]\nmod tests {}\n";
        let mut report = LintReport::default();
        lint_source(Path::new("crates/wal/src/lib.rs"), src, &mut report);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    }

    #[test]
    fn string_and_comment_content_is_ignored() {
        let src = r#"
fn good() {
    // let g = shards[0].write(); execute(db, &q);
    let msg = "shards[0].write() then execute(db)";
}
"#;
        let report = lint_str(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }
}
