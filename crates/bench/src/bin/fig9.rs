//! Figure 9 — overhead of our techniques, "combination factor"
//! experiment.
//!
//! F = 3 and s fixed; the combination factor h swept 1..=10 (h basic
//! condition parts per query, exactly one PMV-resident).
//!
//! Paper's reading: overhead grows with h (more condition parts to
//! generate and probe), and T2 > T1 at every h.

use pmv_bench::tpcr_harness::{arg_flag, arg_value, build_db, measure_cell, CellConfig, Template};
use pmv_bench::ExperimentReport;

fn main() {
    let scale: f64 = if arg_flag("--paper") {
        1.0
    } else {
        arg_value("--scale")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.05)
    };
    let runs: usize = arg_value("--runs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if arg_flag("--quick") { 5 } else { 30 });

    eprintln!("building TPC-R database at s={scale}…");
    let db = build_db(scale, 0xc0ffee);

    let mut report = ExperimentReport::new(
        "figure9",
        format!("PMV overhead (s) vs combination factor h; F=3, s={scale}"),
        "h",
    );
    for h in 1..=10usize {
        let mut values = Vec::new();
        for (template, name) in [(Template::T1, "T1"), (Template::T2, "T2")] {
            // h = e × f(× g): sweep via e = h with single-value other
            // dimensions, so h matches exactly for every value.
            let cell = CellConfig {
                template,
                e: h,
                f_disjuncts: 1,
                g: 1,
                f_cap: 3,
                entries: 20_000,
                runs,
                seed: 11 + h as u64,
            };
            let s = measure_cell(&db, &cell);
            values.push((name.to_string(), s.overhead.as_secs_f64()));
            values.push((format!("{name} probe"), s.probe.as_secs_f64()));
            eprintln!("h={h} {name}: overhead={:?} exec={:?}", s.overhead, s.exec);
        }
        report.push(h.to_string(), values);
    }
    report.print();
}
