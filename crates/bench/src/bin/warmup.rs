//! Warm-up sensitivity check. The paper notes: "We also tested other
//! numbers of 'warm up' queries. The results were similar and thus
//! omitted." We don't omit: sweep the warm-up length and show the
//! measured hit probability is insensitive once the PMV has filled.

use pmv_bench::tpcr_harness::arg_flag;
use pmv_bench::ExperimentReport;
use pmv_cache::PolicyKind;
use pmv_workload::{run_sim, SimConfig};

fn main() {
    let quick = arg_flag("--quick");
    let (total, n, measure) = if quick {
        (50_000usize, 1_000usize, 50_000usize)
    } else {
        (1_000_000, 20_000, 1_000_000)
    };
    let warmups: Vec<usize> = if quick {
        vec![10_000, 25_000, 50_000, 100_000]
    } else {
        vec![250_000, 500_000, 1_000_000, 2_000_000]
    };

    let mut report = ExperimentReport::new(
        "warmup",
        "Hit probability vs warm-up length (alpha=1.07, h=2, N as fig6)",
        "warmup",
    );
    for w in warmups {
        let mut values = Vec::new();
        for policy in [PolicyKind::Clock, PolicyKind::TwoQ] {
            let r = run_sim(&SimConfig {
                total_bcps: total,
                n,
                policy,
                alpha: 1.07,
                h: 2,
                warmup: w,
                measure,
                ..Default::default()
            });
            values.push((policy.name().to_string(), r.hit_probability));
            eprintln!("warmup={w} {}: {:.4}", policy.name(), r.hit_probability);
        }
        report.push(w.to_string(), values);
    }
    report.print();
    println!();
    println!(
        "paper: \"We also tested other numbers of warm up queries. The results were similar.\""
    );
}
