// A raw write in a non-durable crate: legal on its own, but not
// reachable from crates/{core,storage,wal} production code.

pub fn fx_spill(path: &Path, bytes: &[u8]) -> Result<(), Error> {
    fs::write(path, bytes)
}
