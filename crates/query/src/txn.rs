//! Transactions: grouped DML with undo, producing the per-relation
//! [`DeltaBatch`]es that drive PMV maintenance (the paper's transaction T
//! in Section 4.3 inserts `p·|ΔR|` tuples and deletes `(1-p)·|ΔR|` tuples
//! in one unit).

use std::collections::HashMap;

use pmv_storage::{Delta, DeltaBatch, RowId, Tuple};

use crate::engine::Database;
use crate::Result;

/// A transaction over a mutable database.
///
/// Note on undo: aborting re-inserts deleted tuples, which may assign new
/// row ids (heap slots are reused in LIFO order, so a plain
/// delete-then-abort usually restores the same slot, but this is not
/// guaranteed). Logical content is always restored exactly.
pub struct Transaction<'a> {
    db: &'a mut Database,
    applied: Vec<(String, Delta)>,
}

impl<'a> Transaction<'a> {
    /// Begin a transaction.
    pub fn begin(db: &'a mut Database) -> Self {
        Transaction {
            db,
            applied: Vec::new(),
        }
    }

    /// Insert a tuple.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<RowId> {
        let delta = self.db.insert(relation, tuple)?;
        let row = delta.row();
        self.applied.push((relation.to_string(), delta));
        Ok(row)
    }

    /// Delete the tuple at `row`, returning it.
    pub fn delete(&mut self, relation: &str, row: RowId) -> Result<Tuple> {
        let delta = self.db.delete(relation, row)?;
        let Delta::Delete { ref tuple, .. } = delta else {
            unreachable!("Database::delete returns Delta::Delete")
        };
        let t = tuple.clone();
        self.applied.push((relation.to_string(), delta));
        Ok(t)
    }

    /// Replace the tuple at `row`.
    pub fn update(&mut self, relation: &str, row: RowId, new: Tuple) -> Result<Tuple> {
        let delta = self.db.update(relation, row, new)?;
        let Delta::Update { ref old, .. } = delta else {
            unreachable!("Database::update returns Delta::Update")
        };
        let t = old.clone();
        self.applied.push((relation.to_string(), delta));
        Ok(t)
    }

    /// Read through the transaction (sees own writes, trivially, since
    /// changes are applied eagerly).
    pub fn get(&self, relation: &str, row: RowId) -> Result<Tuple> {
        self.db.get(relation, row)
    }

    /// Commit: keep all changes, return per-relation delta batches in the
    /// order relations were first touched.
    pub fn commit(self) -> Vec<DeltaBatch> {
        let mut order: Vec<String> = Vec::new();
        let mut batches: HashMap<String, DeltaBatch> = HashMap::new();
        for (rel, delta) in self.applied {
            if !batches.contains_key(&rel) {
                order.push(rel.clone());
                batches.insert(rel.clone(), DeltaBatch::new(rel.clone()));
            }
            batches.get_mut(&rel).expect("just inserted").push(delta);
        }
        order
            .into_iter()
            .map(|rel| batches.remove(&rel).expect("present"))
            .collect()
    }

    /// Abort: undo all changes in reverse order.
    pub fn abort(self) -> Result<()> {
        for (rel, delta) in self.applied.into_iter().rev() {
            match delta {
                Delta::Insert { row, .. } => {
                    self.db.delete(&rel, row)?;
                }
                Delta::Delete { tuple, .. } => {
                    self.db.insert(&rel, tuple)?;
                }
                Delta::Update { row, old, .. } => {
                    self.db.update(&rel, row, old)?;
                }
            }
        }
        Ok(())
    }

    /// Number of changes applied so far.
    pub fn change_count(&self) -> usize {
        self.applied.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_index::IndexDef;
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.create_index(IndexDef::hash("r", vec![0])).unwrap();
        db
    }

    #[test]
    fn commit_groups_deltas_by_relation() {
        let mut db = db();
        let mut txn = Transaction::begin(&mut db);
        let row = txn.insert("r", tuple![1i64, 10i64]).unwrap();
        txn.update("r", row, tuple![1i64, 11i64]).unwrap();
        let batches = txn.commit();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].relation(), "r");
        assert_eq!(batches[0].len(), 2);
        assert_eq!(db.len("r").unwrap(), 1);
    }

    #[test]
    fn abort_restores_content_and_indexes() {
        let mut db = db();
        let kept = match db.insert("r", tuple![7i64, 70i64]).unwrap() {
            Delta::Insert { row, .. } => row,
            _ => unreachable!(),
        };
        let mut txn = Transaction::begin(&mut db);
        txn.insert("r", tuple![1i64, 10i64]).unwrap();
        txn.delete("r", kept).unwrap();
        txn.abort().unwrap();
        assert_eq!(db.len("r").unwrap(), 1);
        // The kept tuple is back and indexed.
        let idx = db.index_on("r", &[0]).unwrap();
        use pmv_index::SecondaryIndex;
        assert_eq!(
            idx.get(&pmv_index::IndexKey::single(Value::Int(7))).len(),
            1
        );
        assert_eq!(
            idx.get(&pmv_index::IndexKey::single(Value::Int(1))).len(),
            0
        );
    }

    #[test]
    fn abort_undoes_updates() {
        let mut db = db();
        let row = match db.insert("r", tuple![5i64, 50i64]).unwrap() {
            Delta::Insert { row, .. } => row,
            _ => unreachable!(),
        };
        let mut txn = Transaction::begin(&mut db);
        txn.update("r", row, tuple![5i64, 99i64]).unwrap();
        txn.update("r", row, tuple![6i64, 99i64]).unwrap();
        txn.abort().unwrap();
        assert_eq!(db.get("r", row).unwrap(), tuple![5i64, 50i64]);
    }

    #[test]
    fn mixed_insert_delete_transaction() {
        let mut db = db();
        // Pre-populate.
        let mut rows = Vec::new();
        for i in 0..5i64 {
            match db.insert("r", tuple![i, i * 10]).unwrap() {
                Delta::Insert { row, .. } => rows.push(row),
                _ => unreachable!(),
            }
        }
        // The Section 4.3 transaction shape: p inserts, (1-p) deletes.
        let mut txn = Transaction::begin(&mut db);
        txn.insert("r", tuple![100i64, 1i64]).unwrap();
        txn.insert("r", tuple![101i64, 1i64]).unwrap();
        txn.delete("r", rows[0]).unwrap();
        assert_eq!(txn.change_count(), 3);
        let batches = txn.commit();
        assert_eq!(batches[0].inserted_tuples().count(), 2);
        assert_eq!(batches[0].deleted_tuples().count(), 1);
        assert_eq!(db.len("r").unwrap(), 6);
    }
}
