// IPA corpus (clean): the query runs *before* the shard write guard is
// taken — compute first, lock second. No rule should fire.

struct Fx;

impl Fx {
    fn fill_precomputed(&self, db: &Db, q: &Query) {
        let rows = fx_run_query(db, q);
        let mut store = self.shards[0].write();
        store.extend(rows);
    }
}

fn fx_run_query(db: &Db, q: &Query) -> Vec<Row> {
    execute(db, q).unwrap()
}
