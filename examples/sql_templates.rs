//! Defining PMV templates from SQL strings.
//!
//! The parser accepts the paper's template class directly: equi-joins
//! and fixed predicates in the WHERE clause, `col = ?` for
//! equality-form slots, `col BETWEEN ?` for interval-form slots.
//!
//! ```bash
//! cargo run --release --example sql_templates
//! ```

use pmv::core::Discretizer;
use pmv::index::IndexDef;
use pmv::prelude::*;
use pmv::query::{parse_template, Interval};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "products",
        vec![
            Column::new("pid", ColumnType::Int),
            Column::new("category", ColumnType::Int),
            Column::new("price", ColumnType::Int),
        ],
    ))?;
    db.create_relation(Schema::new(
        "reviews",
        vec![
            Column::new("pid", ColumnType::Int),
            Column::new("stars", ColumnType::Int),
            Column::new("verified", ColumnType::Str),
        ],
    ))?;
    for pid in 0..3_000i64 {
        db.insert("products", tuple![pid, pid % 12, (pid * 17) % 500])?;
        for r in 0..2 {
            db.insert(
                "reviews",
                tuple![
                    pid,
                    1 + (pid + r) % 5,
                    if (pid + r) % 3 == 0 { "yes" } else { "no" }
                ],
            )?;
        }
    }
    db.create_index(IndexDef::btree("products", vec![0]))?;
    db.create_index(IndexDef::btree("products", vec![1]))?;
    db.create_index(IndexDef::btree("products", vec![2]))?;
    db.create_index(IndexDef::btree("reviews", vec![0]))?;

    // The template, straight from SQL. `?` slots become the PMV's
    // parameterized conditions.
    let template = parse_template(
        "verified_by_category_price",
        "SELECT products.pid, reviews.stars
         FROM products, reviews
         WHERE products.pid = reviews.pid
           AND reviews.verified = 'yes'     -- fixed predicate
           AND products.category = ?        -- equality-form slot
           AND products.price BETWEEN ?     -- interval-form slot",
        &db,
    )?;
    println!(
        "parsed template '{}': {} relations, {} joins, {} fixed preds, {} condition slots",
        template.name(),
        template.relations().len(),
        template.joins().len(),
        template.fixed_preds().len(),
        template.cond_count()
    );

    // Price bands as dividing values (a form UI's from/to list).
    let bands = Discretizer::new(vec![
        Value::Int(100),
        Value::Int(200),
        Value::Int(300),
        Value::Int(400),
    ]);
    let def = PartialViewDef::new("sql_pmv", template.clone(), vec![None, Some(bands)])?;
    let mut pmv = Pmv::new(def, PmvConfig::default());
    let pipeline = PmvPipeline::new();

    let q = template.bind(vec![
        Condition::Equality(vec![Value::Int(3)]),
        Condition::Intervals(vec![Interval::half_open(100i64, 300i64)]),
    ])?;
    // The executor's plan, EXPLAIN-style.
    println!("\nplan:\n{}", pmv::query::explain(&db, &q));

    pipeline.run(&db, &mut pmv, &q)?; // warm
    let out = pipeline.run(&db, &mut pmv, &q)?;
    println!(
        "warm run: {} rows immediately ({:?}), {} after execution ({:?})",
        out.partial.len(),
        out.timings.o2,
        out.remaining.len(),
        out.timings.exec
    );
    assert_eq!(out.ds_leftover, 0);
    Ok(())
}
