//! A PMV advisor: decide *which templates deserve a PMV* and how to
//! configure it, from an observed workload.
//!
//! Section 2.2 recounts how automatic MV selection tools pick views from
//! query traces but cannot afford "a MV for each frequently used query
//! template". PMVs are cheap enough that the selection problem becomes
//! easy: watch the trace, give every frequently-used template a PMV,
//! split the memory budget by query share, and learn each interval
//! condition's dividing values from the trace's endpoints
//! ([`Discretizer::learn_from_trace`]).

use std::collections::HashMap;
use std::sync::Arc;

use pmv_cache::PolicyKind;
use pmv_query::{CondForm, Condition, Interval, QueryInstance, QueryTemplate};

use crate::bcp::Discretizer;
use crate::view::{PartialViewDef, PmvConfig};
use crate::Result;

/// Advisor tuning.
#[derive(Clone, Debug)]
pub struct AdvisorConfig {
    /// Minimum observed queries before a template earns a PMV.
    pub min_queries: u64,
    /// Total byte budget split across recommended PMVs.
    pub byte_budget: usize,
    /// `F` for recommended PMVs.
    pub f: usize,
    /// Assumed average result-tuple size (`At`) for sizing `L` from the
    /// paper's bound `UB ≤ L·F·At`.
    pub assumed_tuple_bytes: usize,
    /// Cap on learned dividing values per interval condition.
    pub max_dividers: usize,
    /// Replacement policy for recommended PMVs.
    pub policy: PolicyKind,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            min_queries: 10,
            byte_budget: 16 << 20, // 16 MiB: "the memory can hold many PMVs"
            f: 2,
            assumed_tuple_bytes: 50, // the paper's At example
            max_dividers: 256,
            policy: PolicyKind::Clock,
        }
    }
}

/// Per-template observations.
struct TemplateTrace {
    template: Arc<QueryTemplate>,
    queries: u64,
    condition_parts: u64,
    /// Observed intervals per interval-form condition index.
    interval_traces: HashMap<usize, Vec<Interval>>,
}

/// Observes a workload and recommends PMV definitions.
#[derive(Default)]
pub struct PmvAdvisor {
    traces: HashMap<usize, TemplateTrace>,
}

/// One recommendation: a ready-to-instantiate definition and config.
pub struct Recommendation {
    /// The PMV definition (with learned discretizers).
    pub def: PartialViewDef,
    /// Suggested tuning (entry budget `L` from the byte-budget share).
    pub config: PmvConfig,
    /// Queries observed for this template.
    pub queries: u64,
    /// Mean combination factor h observed.
    pub mean_h: f64,
}

impl PmvAdvisor {
    /// Empty advisor.
    pub fn new() -> Self {
        PmvAdvisor::default()
    }

    /// Record one query of the workload.
    pub fn observe(&mut self, q: &QueryInstance) {
        let key = Arc::as_ptr(q.template()) as usize;
        let entry = self.traces.entry(key).or_insert_with(|| TemplateTrace {
            template: Arc::clone(q.template()),
            queries: 0,
            condition_parts: 0,
            interval_traces: HashMap::new(),
        });
        entry.queries += 1;
        entry.condition_parts += q.combination_factor() as u64;
        for (i, c) in q.conds().iter().enumerate() {
            if let Condition::Intervals(ivs) = c {
                entry
                    .interval_traces
                    .entry(i)
                    .or_default()
                    .extend(ivs.iter().cloned());
            }
        }
    }

    /// Total queries observed.
    pub fn observed_queries(&self) -> u64 {
        self.traces.values().map(|t| t.queries).sum()
    }

    /// Recommend PMVs for every template above the frequency threshold,
    /// most-queried first.
    pub fn recommend(&self, cfg: &AdvisorConfig) -> Result<Vec<Recommendation>> {
        let mut eligible: Vec<&TemplateTrace> = self
            .traces
            .values()
            .filter(|t| t.queries >= cfg.min_queries)
            .collect();
        eligible.sort_by_key(|t| std::cmp::Reverse(t.queries));
        let total_queries: u64 = eligible.iter().map(|t| t.queries).sum();
        if total_queries == 0 {
            return Ok(Vec::new());
        }

        let mut out = Vec::with_capacity(eligible.len());
        for t in eligible {
            // Budget share proportional to query frequency.
            let share = (cfg.byte_budget as f64 * t.queries as f64 / total_queries as f64) as usize;
            let config = PmvConfig::with_byte_budget(
                cfg.f,
                share.max(cfg.f * cfg.assumed_tuple_bytes),
                cfg.assumed_tuple_bytes,
                cfg.policy,
            );
            // Discretizers: learned per interval-form condition.
            let mut discretizers = Vec::with_capacity(t.template.cond_count());
            for (i, ct) in t.template.cond_templates().iter().enumerate() {
                match ct.form {
                    CondForm::Equality => discretizers.push(None),
                    CondForm::Interval => {
                        let trace = t.interval_traces.get(&i).map(Vec::as_slice).unwrap_or(&[]);
                        if trace.is_empty() {
                            // No observations: a single divider at an
                            // arbitrary origin keeps the definition valid.
                            discretizers
                                .push(Some(Discretizer::new(vec![pmv_storage::Value::Int(0)])));
                        } else {
                            discretizers
                                .push(Some(Discretizer::learn_from_trace(trace, cfg.max_dividers)));
                        }
                    }
                }
            }
            let def = PartialViewDef::new(
                format!("auto_{}", t.template.name()),
                Arc::clone(&t.template),
                discretizers,
            )?;
            out.push(Recommendation {
                def,
                config,
                queries: t.queries,
                mean_h: t.condition_parts as f64 / t.queries as f64,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_query::{Database, TemplateBuilder};
    use pmv_storage::{Column, ColumnType, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
                Column::new("g", ColumnType::Int),
            ],
        ))
        .unwrap();
        db
    }

    fn hot_template(db: &Database) -> Arc<QueryTemplate> {
        TemplateBuilder::new("hot")
            .relation(db.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .cond_interval("r", "g")
            .unwrap()
            .build()
            .unwrap()
    }

    fn cold_template(db: &Database) -> Arc<QueryTemplate> {
        TemplateBuilder::new("cold")
            .relation(db.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn frequency_threshold_filters_templates() {
        let db = db();
        let hot = hot_template(&db);
        let cold = cold_template(&db);
        let mut advisor = PmvAdvisor::new();
        for i in 0..20i64 {
            let q = hot
                .bind(vec![
                    Condition::Equality(vec![Value::Int(i % 3)]),
                    Condition::Intervals(vec![Interval::half_open(0i64, 10i64)]),
                ])
                .unwrap();
            advisor.observe(&q);
        }
        for _ in 0..3 {
            let q = cold
                .bind(vec![Condition::Equality(vec![Value::Int(1)])])
                .unwrap();
            advisor.observe(&q);
        }
        assert_eq!(advisor.observed_queries(), 23);
        let recs = advisor.recommend(&AdvisorConfig::default()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].def.template().name(), "hot");
        assert_eq!(recs[0].queries, 20);
    }

    #[test]
    fn learned_discretizer_covers_trace_endpoints() {
        let db = db();
        let hot = hot_template(&db);
        let mut advisor = PmvAdvisor::new();
        for _ in 0..15 {
            let q = hot
                .bind(vec![
                    Condition::Equality(vec![Value::Int(1)]),
                    Condition::Intervals(vec![Interval::half_open(100i64, 200i64)]),
                ])
                .unwrap();
            advisor.observe(&q);
        }
        let recs = advisor.recommend(&AdvisorConfig::default()).unwrap();
        let disc = recs[0].def.discretizer(1).unwrap();
        assert_eq!(disc.dividers(), &[Value::Int(100), Value::Int(200)]);
        // With aligned dividers the hot query decomposes into one basic
        // part (h = 1): maximally cacheable.
        assert!((recs[0].mean_h - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_split_is_proportional() {
        let db = db();
        let a = hot_template(&db);
        let b = cold_template(&db);
        let mut advisor = PmvAdvisor::new();
        for _ in 0..30 {
            advisor.observe(
                &a.bind(vec![
                    Condition::Equality(vec![Value::Int(1)]),
                    Condition::Intervals(vec![Interval::half_open(0i64, 1i64)]),
                ])
                .unwrap(),
            );
        }
        for _ in 0..10 {
            advisor.observe(
                &b.bind(vec![Condition::Equality(vec![Value::Int(1)])])
                    .unwrap(),
            );
        }
        let cfg = AdvisorConfig {
            min_queries: 5,
            byte_budget: 4_000_000,
            ..Default::default()
        };
        let recs = advisor.recommend(&cfg).unwrap();
        assert_eq!(recs.len(), 2);
        // 3:1 query ratio ⇒ ~3:1 entry-budget ratio.
        let ratio = recs[0].config.l as f64 / recs[1].config.l as f64;
        assert!((2.5..=3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn empty_advisor_recommends_nothing() {
        let advisor = PmvAdvisor::new();
        assert!(advisor
            .recommend(&AdvisorConfig::default())
            .unwrap()
            .is_empty());
    }
}
