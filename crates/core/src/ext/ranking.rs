//! Popularity ranking of result tuples (paper conclusion: "our techniques
//! can be extended to address other problems, such as ranking query
//! result tuples according to their popularity").
//!
//! The PMV store counts, per bcp, how many queries it served (its *hit
//! count*). Result tuples can then be ranked by their containing bcp's
//! popularity, putting the hottest results first.

use pmv_storage::Tuple;

use crate::pipeline::{Pmv, QueryOutcome};

/// Rank an outcome's full result set by descending bcp popularity.
/// Returns `(user tuple, popularity)` pairs; ties keep their original
/// (partial-first) order.
pub fn rank_by_popularity(pmv: &Pmv, outcome: &QueryOutcome) -> Vec<(Tuple, u64)> {
    let template = pmv.def().template();
    let mut ranked: Vec<(Tuple, u64)> = outcome
        .partial_expanded
        .iter()
        .chain(&outcome.remaining_expanded)
        .map(|t| {
            let bcp = pmv.def().bcp_of_tuple(t);
            (template.user_tuple(t), pmv.store().hit_count(&bcp))
        })
        .collect();
    ranked.sort_by_key(|r| std::cmp::Reverse(r.1));
    ranked
}
