//! The big correctness property of the whole system: for arbitrary data,
//! arbitrary queries, arbitrary interleaved maintenance, the PMV pipeline
//! returns exactly the plain executor's result multiset — each tuple
//! exactly once — and never serves a stale tuple (DS ends empty).

mod common;

use common::{eqt_fixture, eqt_query, oracle};
use pmv::cache::PolicyKind;
use pmv::prelude::*;
use pmv::query::Transaction;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Step {
    Query { fs: Vec<i64>, gs: Vec<i64> },
    Insert { a: i64, c: i64, f: i64 },
    DeleteNth(usize),
    UpdateNth { nth: usize, new_f: i64 },
}

fn values(range: std::ops::Range<i64>) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::btree_set(range, 1..3).prop_map(|s| s.into_iter().collect())
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (values(0..7), values(0..5)).prop_map(|(fs, gs)| Step::Query { fs, gs }),
        1 => (0i64..1000, 0i64..30, 0i64..7).prop_map(|(a, c, f)| Step::Insert { a, c, f }),
        1 => (0usize..1000).prop_map(Step::DeleteNth),
        1 => (0usize..1000, 0i64..7).prop_map(|(nth, new_f)| Step::UpdateNth { nth, new_f }),
    ]
}

fn policies() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Clock),
        Just(PolicyKind::TwoQ),
        Just(PolicyKind::Lru),
        Just(PolicyKind::LruK),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn pipeline_exactly_once_under_maintenance(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        f_cap in 1usize..4,
        l in 2usize..12,
        policy in policies(),
    ) {
        let fx = eqt_fixture(60);
        let mut db = fx.db;
        let template = fx.template;
        let def = PartialViewDef::all_equality("prop_pmv", template.clone()).unwrap();
        let mut pmv = Pmv::new(def, PmvConfig::new(f_cap, l, policy));
        let pipeline = PmvPipeline::new();

        for step in steps {
            match step {
                Step::Query { fs, gs } => {
                    let q = eqt_query(&template, &fs, &gs);
                    let expect = oracle(&db, &q);
                    let out = pipeline.run(&db, &mut pmv, &q).unwrap();
                    let mut got = out.all_results();
                    got.sort();
                    prop_assert_eq!(got, expect, "pipeline diverged from oracle");
                    prop_assert_eq!(out.ds_leftover, 0, "stale tuple served");
                    pmv.store().validate();
                }
                Step::Insert { a, c, f } => {
                    let mut txn = Transaction::begin(&mut db);
                    txn.insert("r", pmv::storage::Tuple::new(vec![
                        Value::Int(a), Value::Int(c), Value::Int(f),
                    ])).unwrap();
                    for b in txn.commit() {
                        pipeline.maintain(&db, &mut pmv, &b).unwrap();
                    }
                }
                Step::DeleteNth(nth) => {
                    let victim = nth_live_row(&db, nth);
                    if let Some(row) = victim {
                        let mut txn = Transaction::begin(&mut db);
                        txn.delete("r", row).unwrap();
                        for b in txn.commit() {
                            pipeline.maintain(&db, &mut pmv, &b).unwrap();
                        }
                    }
                }
                Step::UpdateNth { nth, new_f } => {
                    let victim = nth_live_row(&db, nth);
                    if let Some(row) = victim {
                        let old = db.get("r", row).unwrap();
                        let mut vals: Vec<Value> = old.values().to_vec();
                        vals[2] = Value::Int(new_f);
                        let mut txn = Transaction::begin(&mut db);
                        txn.update("r", row, pmv::storage::Tuple::new(vals)).unwrap();
                        for b in txn.commit() {
                            pipeline.maintain(&db, &mut pmv, &b).unwrap();
                        }
                    }
                }
            }
        }
    }

    /// Cached tuples are always genuine current results of their bcp's
    /// query (no false positives survive maintenance).
    #[test]
    fn cached_tuples_are_always_true_results(
        steps in proptest::collection::vec(step_strategy(), 1..30),
    ) {
        let fx = eqt_fixture(40);
        let mut db = fx.db;
        let template = fx.template;
        let def = PartialViewDef::all_equality("prop_pmv2", template.clone()).unwrap();
        let mut pmv = Pmv::new(def, PmvConfig::new(3, 16, PolicyKind::Clock));
        let pipeline = PmvPipeline::new();

        for step in steps {
            match step {
                Step::Query { fs, gs } => {
                    let q = eqt_query(&template, &fs, &gs);
                    pipeline.run(&db, &mut pmv, &q).unwrap();
                }
                Step::Insert { a, c, f } => {
                    let mut txn = Transaction::begin(&mut db);
                    txn.insert("r", pmv::storage::Tuple::new(vec![
                        Value::Int(a), Value::Int(c), Value::Int(f),
                    ])).unwrap();
                    for b in txn.commit() {
                        pipeline.maintain(&db, &mut pmv, &b).unwrap();
                    }
                }
                Step::DeleteNth(nth) => {
                    if let Some(row) = nth_live_row(&db, nth) {
                        let mut txn = Transaction::begin(&mut db);
                        txn.delete("r", row).unwrap();
                        for b in txn.commit() {
                            pipeline.maintain(&db, &mut pmv, &b).unwrap();
                        }
                    }
                }
                Step::UpdateNth { nth, new_f } => {
                    if let Some(row) = nth_live_row(&db, nth) {
                        let old = db.get("r", row).unwrap();
                        let mut vals: Vec<Value> = old.values().to_vec();
                        vals[2] = Value::Int(new_f);
                        let mut txn = Transaction::begin(&mut db);
                        txn.update("r", row, pmv::storage::Tuple::new(vals)).unwrap();
                        for b in txn.commit() {
                            pipeline.maintain(&db, &mut pmv, &b).unwrap();
                        }
                    }
                }
            }
            // Revalidation must find nothing to remove: all cached tuples
            // are current truth.
            let removed = pmv.revalidate(&db).unwrap();
            prop_assert_eq!(removed, 0, "maintenance left a stale tuple behind");
        }
    }
}

/// The `nth` live row of relation r (mod live count), or None when empty.
fn nth_live_row(db: &Database, nth: usize) -> Option<pmv::storage::RowId> {
    let handle = db.relation("r").unwrap();
    let guard = handle.read();
    let live: Vec<_> = guard.iter().map(|(r, _)| r).collect();
    if live.is_empty() {
        None
    } else {
        Some(live[nth % live.len()])
    }
}
