//! Property tests: the from-scratch B+-tree against a `BTreeMap` model,
//! and the hash index against a `HashMap` model.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use pmv::index::{BTreeIndex, HashIndex, IndexKey, SecondaryIndex};
use pmv::storage::{RowId, Value};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(i64, u32),
    Remove(i64, u32),
    Get(i64),
    Range(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-50i64..50, 0u32..20).prop_map(|(k, r)| Op::Insert(k, r)),
        (-50i64..50, 0u32..20).prop_map(|(k, r)| Op::Remove(k, r)),
        (-50i64..50).prop_map(Op::Get),
        (-60i64..60, -60i64..60).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

fn key(k: i64) -> IndexKey {
    IndexKey::single(Value::Int(k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut tree = BTreeIndex::with_order(4); // tiny order: many splits
        let mut model: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, r) => {
                    tree.insert(key(k), RowId(r));
                    model.entry(k).or_default().push(r);
                }
                Op::Remove(k, r) => {
                    let in_model = model.get(&k).is_some_and(|v| v.contains(&r));
                    let removed = tree.remove(&key(k), RowId(r));
                    prop_assert_eq!(removed, in_model);
                    if in_model {
                        let v = model.get_mut(&k).unwrap();
                        let pos = v.iter().position(|&x| x == r).unwrap();
                        v.swap_remove(pos);
                        if v.is_empty() {
                            model.remove(&k);
                        }
                    }
                }
                Op::Get(k) => {
                    let mut got: Vec<u32> = tree.get(&key(k)).iter().map(|r| r.0).collect();
                    let mut want = model.get(&k).cloned().unwrap_or_default();
                    got.sort_unstable();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                Op::Range(lo, hi) => {
                    let got: Vec<i64> = tree
                        .range(Bound::Included(&key(lo)), Bound::Excluded(&key(hi)))
                        .into_iter()
                        .map(|(k, _)| k.parts()[0].as_int().unwrap())
                        .collect();
                    let want: Vec<i64> = model.range(lo..hi).map(|(&k, _)| k).collect();
                    prop_assert_eq!(got, want);
                }
            }
            tree.validate();
            prop_assert_eq!(tree.key_count(), model.len());
            prop_assert_eq!(
                tree.entry_count(),
                model.values().map(Vec::len).sum::<usize>()
            );
        }
    }

    #[test]
    fn hash_matches_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut idx = HashIndex::new();
        let mut model: HashMap<i64, Vec<u32>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, r) => {
                    idx.insert(key(k), RowId(r));
                    model.entry(k).or_default().push(r);
                }
                Op::Remove(k, r) => {
                    let in_model = model.get(&k).is_some_and(|v| v.contains(&r));
                    prop_assert_eq!(idx.remove(&key(k), RowId(r)), in_model);
                    if in_model {
                        let v = model.get_mut(&k).unwrap();
                        let pos = v.iter().position(|&x| x == r).unwrap();
                        v.swap_remove(pos);
                        if v.is_empty() {
                            model.remove(&k);
                        }
                    }
                }
                Op::Get(k) => {
                    let mut got: Vec<u32> = idx.get(&key(k)).iter().map(|r| r.0).collect();
                    let mut want = model.get(&k).cloned().unwrap_or_default();
                    got.sort_unstable();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                Op::Range(..) => {} // hash indexes do not range-scan
            }
            prop_assert_eq!(idx.key_count(), model.len());
        }
    }

    #[test]
    fn btree_iteration_is_sorted(keys in proptest::collection::vec(-1000i64..1000, 0..400)) {
        let mut tree = BTreeIndex::with_order(4);
        for (i, k) in keys.iter().enumerate() {
            tree.insert(key(*k), RowId(i as u32));
        }
        let in_order: Vec<i64> = tree
            .keys_in_order()
            .iter()
            .map(|k| k.parts()[0].as_int().unwrap())
            .collect();
        let mut expect: Vec<i64> = keys.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(in_order, expect);
    }

    #[test]
    fn composite_key_order_is_lexicographic(
        pairs in proptest::collection::vec((-20i64..20, -20i64..20), 0..200)
    ) {
        let mut tree = BTreeIndex::with_order(4);
        for (i, (a, b)) in pairs.iter().enumerate() {
            tree.insert(
                IndexKey::new(vec![Value::Int(*a), Value::Int(*b)]),
                RowId(i as u32),
            );
        }
        let got: Vec<(i64, i64)> = tree
            .keys_in_order()
            .iter()
            .map(|k| {
                (
                    k.parts()[0].as_int().unwrap(),
                    k.parts()[1].as_int().unwrap(),
                )
            })
            .collect();
        let mut expect = pairs.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(got, expect);
    }
}
