//! Concurrent PMV probe throughput: thread count × shard count sweep.
//!
//! The sharded `SharedPmv` replaces the old whole-PMV mutex with one
//! `RwLock`ed store per bcp-hash shard, so O2 probes for *different* bcps
//! proceed in parallel. This experiment measures exactly that: a warmed
//! PMV over `B` disjoint bcps is probed by `t` threads, each owning a
//! disjoint slice of the bcp space (thread `i` queries bcps `i, i+t, …`),
//! and reports end-to-end queries/second for every (threads × shards)
//! combination plus the speedup over the single-thread run at the same
//! shard count.
//!
//! With the obs registry enabled (the default) each cell also reports
//! the time-to-first-result (query start → O2 partials returned) and
//! full-query latency percentiles from the lock-free phase histograms —
//! the paper's "immediate partial results" claim (Figs. 8/9) made
//! measurable. A final section runs one cell with observability off and
//! on to bound the instrumentation overhead.
//!
//! Expected shape: with 1 shard every probe serializes on the single
//! shard lock and speedup stays near 1×; with shards ≥ threads the
//! disjoint bcps hash across different shards and throughput scales with
//! the thread count until execution cost dominates. (On a single-core
//! host every configuration serializes on the CPU and speedups hover
//! around 1× regardless of shard count — run on a multi-core machine to
//! see the shard effect.)
//!
//! # Oversubscription and tail latencies
//!
//! The sweep is a **closed loop**: each thread issues its next query the
//! moment the previous one returns. When `threads` exceeds the host's
//! cores, a thread is routinely preempted *mid-query* and its full-query
//! latency absorbs one or more scheduler timeslices — the 4.1 ms
//! `full_p99_us` outliers previously committed at 2×4/2×16 (and 11.5 ms
//! at 8×16) sit almost exactly on the kernel's ~4 ms CFS slice, and the
//! measured phase of this sweep performs **zero commits**, so a
//! writer-lock convoy is ruled out: they are a harness pacing artifact
//! of running more closed-loop threads than cores, not a serving-path
//! defect. The JSON therefore records the host `cores` and flags each
//! cell `oversubscribed` (`threads > cores`); `bench_regression` holds
//! tail-latency bounds only for cells the host could actually schedule
//! concurrently.
//!
//! `--quick` scales the workload down ~10× for a smoke run.
//! `--snapshot-mode={locked,epoch}` selects the serving path: `locked`
//! takes the database read lock per query ([`SharedPmv::run`]); `epoch`
//! (the default) pins the published snapshot and serves wait-free
//! ([`EpochDb::query`] → `run_pinned`). The chosen mode is recorded in
//! the JSON so regression diffs compare like with like.
//! `--json [path]` additionally writes the machine-readable series to
//! `BENCH_pmv.json` (or `path`) for CI artifacts and regression diffs.
//! `--faults <spec>` installs a `pmv-faultinject` plan for the measured
//! phase (e.g. `seed=42;exec-start:panic@0.05`), turning the
//! `degraded_query_rate` / `quarantine_events` series non-zero so the
//! degradation overhead can be compared against the clean run.
//! `--durability` appends a commit-throughput comparison — the same
//! single-insert commit stream through an in-memory `EpochDb` and
//! through one opened on a data directory (WAL append + fsync per
//! combine round, durable-before-visible) — plus recovery time at
//! several WAL lengths. The serving-path sweep above is unaffected:
//! without `--data-dir` the durability hook is `None` and costs nothing.

use std::fmt::Write as _;
use std::time::Instant;

use pmv_bench::tpcr_harness::{arg_flag, arg_value};
use pmv_bench::ExperimentReport;
use pmv_cache::PolicyKind;
use pmv_core::{EpochDb, ObsRegistry, PartialViewDef, Phase, PmvConfig, SharedPmv};
use pmv_index::IndexDef;
use pmv_query::{Condition, Database, QueryTemplate, TemplateBuilder, Transaction};
use pmv_storage::{tuple, Column, ColumnType, Schema, Value};
use std::sync::Arc;

/// One measured (threads × shards) cell.
struct CellResult {
    threads: usize,
    shards: usize,
    /// True when `threads` exceeds the host's cores: full-query tail
    /// latencies then include scheduler preemption (module docs) and
    /// must not gate regressions.
    oversubscribed: bool,
    qps: f64,
    speedup: f64,
    ttfr_p50_us: u128,
    ttfr_p99_us: u128,
    full_p50_us: u128,
    full_p99_us: u128,
    degraded_query_rate: f64,
    quarantine_events: u64,
}

fn main() {
    let quick = arg_flag("--quick");
    let (rows, bcps, per_thread) = if quick {
        (2_000i64, 32i64, 300usize)
    } else {
        (20_000i64, 64i64, 2_000usize)
    };
    let json_path = arg_flag("--json").then(|| {
        arg_value("--json")
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| "BENCH_pmv.json".to_string())
    });
    let mode = arg_value("--snapshot-mode").unwrap_or_else(|| "epoch".to_string());
    let epoch_mode = match mode.as_str() {
        "epoch" => true,
        "locked" => false,
        other => {
            eprintln!("bad --snapshot-mode '{other}': expected 'locked' or 'epoch'");
            std::process::exit(2);
        }
    };
    let faulty = arg_value("--faults").map(|spec| {
        let plan = pmv_faultinject::FaultPlan::parse(&spec).unwrap_or_else(|e| {
            eprintln!("bad --faults spec: {e}");
            std::process::exit(2);
        });
        eprintln!("fault injection active: {spec}");
        pmv_faultinject::install(std::sync::Arc::new(plan))
    });

    if faulty.is_some() {
        // Injected panics are caught by the serving path; keep the
        // default hook from spamming a backtrace for each one.
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with(pmv_faultinject::PANIC_PREFIX))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with(pmv_faultinject::PANIC_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    }

    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    for i in 0..rows {
        db.insert("r", tuple![i, i % bcps]).unwrap();
    }
    db.create_index(IndexDef::btree("r", vec![1])).unwrap();
    let template = TemplateBuilder::new("by_f")
        .relation(db.schema("r").unwrap())
        .select("r", "a")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .build()
        .unwrap();

    // The database never changes during the sweep, so one EpochDb serves
    // every cell: locked mode takes its read lock per query, epoch mode
    // pins its published snapshot.
    let edb = EpochDb::new(db);

    let thread_counts = [1usize, 2, 4, 8];
    let shard_counts = [1usize, 4, 16];
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    eprintln!("snapshot mode: {mode} (host cores: {cores})");
    let mut report = ExperimentReport::new(
        "concurrent_scaling",
        "O2 probe throughput + latency percentiles, threads x shards, disjoint bcps",
        "threads",
    );
    let mut cells: Vec<CellResult> = Vec::new();
    let mut baselines = vec![0.0f64; shard_counts.len()];
    for &threads in &thread_counts {
        let mut values = Vec::new();
        for (si, &shards) in shard_counts.iter().enumerate() {
            let (shared, qps) = run_cell(
                &edb, &template, bcps, threads, shards, per_thread, true, epoch_mode,
            );
            let stats = shared.stats();
            assert_eq!(stats.queries as usize, threads * per_thread);
            if threads == 1 {
                baselines[si] = qps;
            }
            let speedup = qps / baselines[si];
            let ttfr = shared.obs().snapshot(Phase::ttfr);
            let full = shared.obs().snapshot(Phase::full);
            assert_eq!(
                ttfr.count() as usize,
                threads * per_thread,
                "every query must record a time-to-first-result sample"
            );
            let cell = CellResult {
                threads,
                shards,
                oversubscribed: threads > cores,
                qps,
                speedup,
                ttfr_p50_us: ttfr.quantile(0.5).as_micros(),
                ttfr_p99_us: ttfr.quantile(0.99).as_micros(),
                full_p50_us: full.quantile(0.5).as_micros(),
                full_p99_us: full.quantile(0.99).as_micros(),
                degraded_query_rate: stats.degraded_query_rate(),
                quarantine_events: stats.quarantine_events,
            };
            eprintln!(
                "threads={threads} shards={shards}: {qps:.0} q/s ({speedup:.2}x), \
                 ttfr p50/p99 {}/{} µs, full p50/p99 {}/{} µs, hit rate {:.3}",
                cell.ttfr_p50_us,
                cell.ttfr_p99_us,
                cell.full_p50_us,
                cell.full_p99_us,
                stats.bcp_hit_queries as f64 / stats.queries as f64
            );
            values.push((format!("shards={shards} q/s"), qps));
            values.push((format!("shards={shards} speedup"), speedup));
            values.push((
                format!("shards={shards} ttfr_p50_us"),
                cell.ttfr_p50_us as f64,
            ));
            values.push((
                format!("shards={shards} ttfr_p99_us"),
                cell.ttfr_p99_us as f64,
            ));
            values.push((
                format!("shards={shards} degraded_query_rate"),
                cell.degraded_query_rate,
            ));
            values.push((
                format!("shards={shards} quarantine_events"),
                cell.quarantine_events as f64,
            ));
            cells.push(cell);
        }
        report.push(threads.to_string(), values);
    }

    // Observability overhead: the same cell with the registry off and
    // on (best of 3 each to damp scheduler noise). The disabled path
    // differs from uninstrumented code by one relaxed load per record
    // site; the enabled-vs-disabled delta therefore upper-bounds the
    // cost of leaving observability off.
    let (ov_threads, ov_shards) = (*thread_counts.last().unwrap(), 16);
    let mut qps_off = 0.0f64;
    let mut qps_on = 0.0f64;
    for _ in 0..3 {
        let (_, q) = run_cell(
            &edb, &template, bcps, ov_threads, ov_shards, per_thread, false, epoch_mode,
        );
        qps_off = qps_off.max(q);
        let (_, q) = run_cell(
            &edb, &template, bcps, ov_threads, ov_shards, per_thread, true, epoch_mode,
        );
        qps_on = qps_on.max(q);
    }
    let overhead_pct = (1.0 - qps_on / qps_off) * 100.0;
    eprintln!(
        "obs overhead (threads={ov_threads} shards={ov_shards}): \
         disabled {qps_off:.0} q/s, enabled {qps_on:.0} q/s, \
         enabling costs {overhead_pct:.1}% (<5% required when disabled)"
    );
    report.print();
    // Separate report: its rows have different columns than the sweep.
    let mut obs_report = ExperimentReport::new(
        "concurrent_scaling_obs_overhead",
        "observability cost, same cell with the registry off vs on",
        "mode",
    );
    obs_report.push(
        format!("threads={ov_threads} shards={ov_shards}"),
        vec![
            ("qps_obs_disabled".to_string(), qps_off),
            ("qps_obs_enabled".to_string(), qps_on),
            ("obs_overhead_pct".to_string(), overhead_pct),
        ],
    );
    obs_report.print();

    let durability = arg_flag("--durability").then(|| {
        let d = measure_durability(quick);
        eprintln!(
            "durability ({} single-insert commits): in-memory {:.0} commits/s, \
             WAL+fsync {:.0} commits/s ({:.1}x overhead), {} WAL byte(s)",
            d.commits,
            d.mem_cps,
            d.wal_cps,
            d.mem_cps / d.wal_cps,
            d.wal_bytes
        );
        let mut dur_report = ExperimentReport::new(
            "durability_overhead",
            "commit throughput with and without WAL fsync; recovery time vs WAL length",
            "wal_records",
        );
        for &(records, ms) in &d.recovery {
            eprintln!("recovery: {records} WAL record(s) replayed in {ms:.2} ms");
            dur_report.push(
                records.to_string(),
                vec![
                    ("recovery_ms".to_string(), ms),
                    ("mem_commits_per_sec".to_string(), d.mem_cps),
                    ("wal_commits_per_sec".to_string(), d.wal_cps),
                ],
            );
        }
        dur_report.print();
        d
    });

    if let Some(path) = json_path {
        let json = cells_to_json(
            quick,
            &mode,
            cores,
            &cells,
            ov_threads,
            ov_shards,
            qps_off,
            qps_on,
            durability.as_ref(),
        );
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path} ({} cells)", cells.len());
    }
}

/// Serve one query on the selected path: `epoch` pins the published
/// snapshot (wait-free), `locked` holds the database read lock.
fn serve(
    edb: &EpochDb,
    shared: &SharedPmv,
    q: &pmv_query::QueryInstance,
    epoch_mode: bool,
) -> pmv_core::QueryOutcome {
    if epoch_mode {
        edb.query(shared, q).unwrap()
    } else {
        let guard = edb.read();
        shared.run(&guard, q).unwrap()
    }
}

/// Build, warm, and measure one (threads × shards) configuration.
/// Returns the shared PMV (for stats/histograms) and queries/second.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    edb: &EpochDb,
    template: &Arc<QueryTemplate>,
    bcps: i64,
    threads: usize,
    shards: usize,
    per_thread: usize,
    obs_enabled: bool,
    epoch_mode: bool,
) -> (SharedPmv, f64) {
    let def = PartialViewDef::all_equality("bench_pmv", template.clone()).unwrap();
    let config = PmvConfig::new(8, (bcps as usize) * 2, PolicyKind::Clock);
    let shared = SharedPmv::with_shards(def, config, shards);
    shared.set_obs_enabled(obs_enabled);
    // Warm every bcp: the first run fills it, the second serves
    // partials, so the measured phase is all O2 hits.
    for f in 0..bcps {
        let q = template
            .bind(vec![Condition::Equality(vec![Value::Int(f)])])
            .unwrap();
        serve(edb, &shared, &q, epoch_mode);
        serve(edb, &shared, &q, epoch_mode);
    }
    shared.reset_stats();
    shared.obs().reset();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let shared = shared.clone();
            let template = template.clone();
            scope.spawn(move || {
                // Disjoint slice of the bcp space per thread.
                let mut f = t as i64 % bcps;
                for _ in 0..per_thread {
                    let q = template
                        .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                        .unwrap();
                    let out = serve(edb, &shared, &q, epoch_mode);
                    assert_eq!(out.ds_leftover, 0);
                    f = (f + threads as i64) % bcps;
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let qps = (threads * per_thread) as f64 / secs;
    (shared, qps)
}

/// Commit-throughput and recovery-time numbers for the `--durability`
/// section.
struct DurabilityResult {
    /// Single-insert commits in each measured stream.
    commits: usize,
    /// Commits/second through an in-memory `EpochDb` (no WAL).
    mem_cps: f64,
    /// Commits/second with a WAL append + fsync per combine round.
    wal_cps: f64,
    /// Bytes in the active WAL segment after the measured stream.
    wal_bytes: u64,
    /// `(wal_records, recovery_ms)`: cold-open time as the replayed
    /// tail grows.
    recovery: Vec<(u64, f64)>,
}

/// Measure commit throughput with and without the durability engine,
/// then recovery time at several WAL lengths. Single-threaded on
/// purpose: one committer means one WAL record + fsync per commit, the
/// worst case for fsync amortization (group commit batches concurrent
/// writers into one record).
fn measure_durability(quick: bool) -> DurabilityResult {
    let commits = if quick { 300usize } else { 2_000 };

    let setup = |db: &mut Database| {
        db.create_relation(Schema::new(
            "d",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
    };
    let run_commits = |edb: &EpochDb, n: usize| {
        let start = Instant::now();
        for i in 0..n {
            let v = i as i64;
            edb.commit(&[], move |db| {
                let mut txn = Transaction::begin(db);
                txn.insert("d", tuple![v, v % 16])?;
                Ok(((), txn.commit()))
            })
            .unwrap();
        }
        start.elapsed().as_secs_f64()
    };

    // In-memory baseline: same commit path, no durability engine.
    let mut db = Database::new();
    setup(&mut db);
    let edb = EpochDb::new(db);
    let mem_cps = commits as f64 / run_commits(&edb, commits);

    // Durable: WAL append + fsync before every publish.
    let scratch = std::env::temp_dir().join("pmv_bench_durability");
    let _ = std::fs::remove_dir_all(&scratch);
    let open = |name: &str| {
        let dir = scratch.join(name);
        let (edb, _) = EpochDb::open_durable(&dir, Arc::new(ObsRegistry::new())).unwrap();
        edb.with_write(|db| setup(db));
        // Checkpoint the catalog so recovery can replay DML records.
        edb.checkpoint(Vec::new()).unwrap();
        edb
    };
    let edb = open("throughput");
    let wal_cps = commits as f64 / run_commits(&edb, commits);
    let wal_bytes = edb
        .durability()
        .expect("opened durable")
        .active_segment_bytes();
    drop(edb);

    // Recovery time vs WAL length: fresh dir per length, cold reopen.
    let mut recovery = Vec::new();
    for records in [commits / 10, commits / 2, commits] {
        let name = format!("recovery_{records}");
        let edb = open(&name);
        run_commits(&edb, records);
        drop(edb);
        let start = Instant::now();
        let (edb, _) =
            EpochDb::open_durable(&scratch.join(&name), Arc::new(ObsRegistry::new())).unwrap();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            edb.durability().unwrap().recovery_info().replayed_records,
            records as u64
        );
        recovery.push((records as u64, ms));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    DurabilityResult {
        commits,
        mem_cps,
        wal_cps,
        wal_bytes,
        recovery,
    }
}

/// Hand-rolled `BENCH_pmv.json`: the percentile series per cell plus the
/// observability-overhead comparison and (when measured) the durability
/// section.
#[allow(clippy::too_many_arguments)]
fn cells_to_json(
    quick: bool,
    mode: &str,
    cores: usize,
    cells: &[CellResult],
    ov_threads: usize,
    ov_shards: usize,
    qps_off: f64,
    qps_on: f64,
    durability: Option<&DurabilityResult>,
) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\n  \"bench\": \"concurrent_scaling\",\n  \"quick\": {quick},\n  \
         \"snapshot_mode\": \"{mode}\",\n  \"cores\": {cores},\n  \"series\": ["
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"threads\": {}, \"shards\": {}, \"oversubscribed\": {}, \"qps\": {:.0}, \
             \"speedup\": {:.3}, \
             \"ttfr_p50_us\": {}, \"ttfr_p99_us\": {}, \"full_p50_us\": {}, \
             \"full_p99_us\": {}, \"degraded_query_rate\": {:.4}, \"quarantine_events\": {}}}",
            c.threads,
            c.shards,
            c.oversubscribed,
            c.qps,
            c.speedup,
            c.ttfr_p50_us,
            c.ttfr_p99_us,
            c.full_p50_us,
            c.full_p99_us,
            c.degraded_query_rate,
            c.quarantine_events
        );
    }
    let overhead_pct = (1.0 - qps_on / qps_off) * 100.0;
    let _ = write!(
        out,
        "\n  ],\n  \"obs_overhead\": {{\"threads\": {ov_threads}, \"shards\": {ov_shards}, \
         \"qps_obs_disabled\": {qps_off:.0}, \"qps_obs_enabled\": {qps_on:.0}, \
         \"obs_overhead_pct\": {overhead_pct:.2}}}"
    );
    if let Some(d) = durability {
        let _ = write!(
            out,
            ",\n  \"durability\": {{\"commits\": {}, \"mem_commits_per_sec\": {:.0}, \
             \"wal_commits_per_sec\": {:.0}, \"wal_overhead_x\": {:.2}, \
             \"wal_bytes\": {}, \"recovery\": [",
            d.commits,
            d.mem_cps,
            d.wal_cps,
            d.mem_cps / d.wal_cps,
            d.wal_bytes
        );
        for (i, (records, ms)) in d.recovery.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"wal_records\": {records}, \"recovery_ms\": {ms:.2}}}"
            );
        }
        out.push_str("]}");
    }
    out.push_str("\n}\n");
    out
}
