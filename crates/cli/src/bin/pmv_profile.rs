//! `pmv-profile` — offline profile reports from flight-recorder spools
//! and bench JSON.
//!
//! ```text
//! pmv-profile [--json] <path>...
//! ```
//!
//! Each path is a flight-recorder spool directory (its `flight-*.json`
//! dumps are read in sequence order), a single dump file, a
//! `concurrent_scaling --json` document (`BENCH_pmv.json`), or a
//! previously rendered `--json` report. The inputs merge into one
//! ranked report: contention sites by total lock wait, templates by
//! serving+maintenance cost, pipeline stages by total recorded time.
//!
//! Exit codes: 0 on a report, 1 when an input is unreadable or nothing
//! parses, 2 for usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: pmv-profile [--json] <spool-dir|dump.json|bench.json>...";

fn main() -> ExitCode {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    match pmv_cli::profile::report_from_paths(&paths) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_human());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pmv-profile: {e}");
            ExitCode::from(1)
        }
    }
}
