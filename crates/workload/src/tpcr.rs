//! TPC-R-style data generator (the paper's Section 4.2 test data set,
//! Table 1).
//!
//! Cardinalities per scale factor `s` follow the paper exactly:
//! `customer 0.15·s M`, `orders 1.5·s M`, `lineitem 6·s M`; on average
//! each customer matches 10 orders on `custkey` and each order matches 4
//! lineitems on `orderkey`. Selection attributes are low-selectivity, as
//! the paper needs: `orderdate` ranges over 2,406 days, `suppkey` over
//! `10,000·s` suppliers, `nationkey` over 25 nations.
//!
//! With `pad: true` each relation carries a filler string sized so the
//! average in-memory tuple widths preserve Table 1's per-relation ratio
//! (customer : orders : lineitem ≈ 153 : 76 : 126 bytes). Our boxed
//! `Value` representation costs ~24 B per field, more than a packed
//! on-disk row, so absolute widths come out at ≈ 2× the paper's — Table
//! 1's tuple *counts* are matched exactly and the MB column lands at
//! about twice the paper's numbers with the same shape.

use pmv_index::IndexDef;
use pmv_query::{Database, Result};
use pmv_storage::{Column, ColumnType, HeapSize, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distinct `orderdate` values (TPC date range 1992-01-01..1998-08-02).
pub const NUM_DATES: i64 = 2_406;
/// Distinct `nationkey` values.
pub const NUM_NATIONS: i64 = 25;
/// Suppliers per unit scale factor.
pub const SUPPLIERS_PER_SF: i64 = 10_000;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct TpcrConfig {
    /// Scale factor `s` (the paper sweeps 0.5–2; we default lower so test
    /// runs stay fast — pass the paper's values to the bench binaries).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Add filler strings so tuple widths match Table 1.
    pub pad: bool,
    /// When `Some(p)`, each lineitem's `suppkey` is drawn from a pool of
    /// `p` suppliers determined by its order's `orderdate` instead of
    /// uniformly. This correlates dates with suppliers so that realistic
    /// hot `(orderdate, suppkey)` bcps hold many result tuples — the
    /// Section 4.2 experiments assume "for each basic condition part,
    /// the number of query result tuples that belong to it is greater
    /// than F".
    pub date_supplier_pool: Option<usize>,
}

impl Default for TpcrConfig {
    fn default() -> Self {
        TpcrConfig {
            scale: 0.01,
            seed: 0xc0ffee,
            pad: false,
            date_supplier_pool: None,
        }
    }
}

/// Cardinalities and measured sizes after generation.
#[derive(Clone, Copy, Debug, Default)]
pub struct TpcrStats {
    /// Customer tuples generated.
    pub customers: usize,
    /// Orders tuples generated.
    pub orders: usize,
    /// Lineitem tuples generated.
    pub lineitems: usize,
    /// Total customer bytes.
    pub customer_bytes: usize,
    /// Total orders bytes.
    pub orders_bytes: usize,
    /// Total lineitem bytes.
    pub lineitem_bytes: usize,
}

/// Expected tuple counts for scale `s` (Table 1's formulas).
pub fn expected_counts(scale: f64) -> (usize, usize, usize) {
    (
        (150_000.0 * scale).round() as usize,
        (1_500_000.0 * scale).round() as usize,
        (6_000_000.0 * scale).round() as usize,
    )
}

/// The customer schema.
pub fn customer_schema() -> Schema {
    Schema::new(
        "customer",
        vec![
            Column::new("custkey", ColumnType::Int),
            Column::new("nationkey", ColumnType::Int),
            Column::new("acctbal", ColumnType::Int),
            Column::new("filler", ColumnType::Str),
        ],
    )
}

/// The orders schema.
pub fn orders_schema() -> Schema {
    Schema::new(
        "orders",
        vec![
            Column::new("orderkey", ColumnType::Int),
            Column::new("custkey", ColumnType::Int),
            Column::new("orderdate", ColumnType::Int),
            Column::new("totalprice", ColumnType::Int),
            Column::new("filler", ColumnType::Str),
        ],
    )
}

/// The lineitem schema.
pub fn lineitem_schema() -> Schema {
    Schema::new(
        "lineitem",
        vec![
            Column::new("orderkey", ColumnType::Int),
            Column::new("suppkey", ColumnType::Int),
            Column::new("quantity", ColumnType::Int),
            Column::new("extendedprice", ColumnType::Int),
            Column::new("filler", ColumnType::Str),
        ],
    )
}

fn filler(pad: bool, len: usize) -> Value {
    if pad {
        Value::str("x".repeat(len))
    } else {
        Value::str("")
    }
}

/// Create the three relations in `db` and fill them.
pub fn generate(db: &mut Database, cfg: &TpcrConfig) -> Result<TpcrStats> {
    let (n_cust, n_ord, n_line) = expected_counts(cfg.scale);
    let n_supp = ((SUPPLIERS_PER_SF as f64) * cfg.scale).round().max(1.0) as i64;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    db.create_relation(customer_schema())?;
    db.create_relation(orders_schema())?;
    db.create_relation(lineitem_schema())?;

    let mut stats = TpcrStats::default();

    // Customers: custkey 1..=n_cust.
    let mut batch: Vec<Tuple> = Vec::with_capacity(n_cust);
    for ck in 1..=n_cust as i64 {
        let t = Tuple::new(vec![
            Value::Int(ck),
            Value::Int(rng.gen_range(0..NUM_NATIONS)),
            Value::Int(rng.gen_range(-99_999..1_000_000)),
            filler(cfg.pad, 194),
        ]);
        stats.customer_bytes += std::mem::size_of::<Tuple>() + t.heap_size();
        batch.push(t);
    }
    stats.customers = db.load("customer", batch)?;

    // Orders: orderkey 1..=n_ord, custkey uniform (≈ 10 orders/customer).
    let mut batch: Vec<Tuple> = Vec::with_capacity(n_ord);
    let mut dates: Vec<i64> = Vec::with_capacity(n_ord);
    for ok in 1..=n_ord as i64 {
        let date = rng.gen_range(0..NUM_DATES);
        dates.push(date);
        let t = Tuple::new(vec![
            Value::Int(ok),
            Value::Int(rng.gen_range(1..=n_cust.max(1) as i64)),
            Value::Int(date),
            Value::Int(rng.gen_range(1_000..500_000)),
            filler(cfg.pad, 16),
        ]);
        stats.orders_bytes += std::mem::size_of::<Tuple>() + t.heap_size();
        batch.push(t);
    }
    stats.orders = db.load("orders", batch)?;

    // Lineitems: exactly 4 per order (the paper's average fan-out).
    let mut batch: Vec<Tuple> = Vec::with_capacity(n_line);
    'outer: for ok in 1..=n_ord as i64 {
        for _ in 0..4 {
            if batch.len() == n_line {
                break 'outer;
            }
            let supp = match cfg.date_supplier_pool {
                None => rng.gen_range(1..=n_supp),
                Some(p) => {
                    // Pool member j of the order's date.
                    let date = dates[(ok - 1) as usize];
                    let j = rng.gen_range(0..p as i64);
                    (date * 31 + j).rem_euclid(n_supp) + 1
                }
            };
            let t = Tuple::new(vec![
                Value::Int(ok),
                Value::Int(supp),
                Value::Int(rng.gen_range(1..=50)),
                Value::Int(rng.gen_range(100..100_000)),
                filler(cfg.pad, 116),
            ]);
            stats.lineitem_bytes += std::mem::size_of::<Tuple>() + t.heap_size();
            batch.push(t);
        }
    }
    stats.lineitems = db.load("lineitem", batch)?;
    Ok(stats)
}

/// Build the paper's indexes: one on each selection/join attribute.
pub fn standard_indexes(db: &mut Database) -> Result<()> {
    // Join attributes.
    db.create_index(IndexDef::btree("customer", vec![0]))?; // custkey
    db.create_index(IndexDef::btree("orders", vec![0]))?; // orderkey
    db.create_index(IndexDef::btree("orders", vec![1]))?; // custkey
    db.create_index(IndexDef::btree("lineitem", vec![0]))?; // orderkey
                                                            // Selection attributes.
    db.create_index(IndexDef::btree("orders", vec![2]))?; // orderdate
    db.create_index(IndexDef::btree("lineitem", vec![1]))?; // suppkey
    db.create_index(IndexDef::btree("customer", vec![1]))?; // nationkey
    Ok(())
}

/// Number of suppliers for a scale factor (selectivity helper).
pub fn supplier_count(scale: f64) -> i64 {
    ((SUPPLIERS_PER_SF as f64) * scale).round().max(1.0) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_ratios_match_table1() {
        let (c, o, l) = expected_counts(1.0);
        assert_eq!(c, 150_000);
        assert_eq!(o, 1_500_000);
        assert_eq!(l, 6_000_000);
        assert_eq!(o / c, 10); // 10 orders per customer
        assert_eq!(l / o, 4); // 4 lineitems per order
    }

    #[test]
    fn generation_produces_expected_counts() {
        let mut db = Database::new();
        let stats = generate(
            &mut db,
            &TpcrConfig {
                scale: 0.002,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stats.customers, 300);
        assert_eq!(stats.orders, 3_000);
        assert_eq!(stats.lineitems, 12_000);
        assert_eq!(db.len("customer").unwrap(), 300);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let mut db = Database::new();
        generate(
            &mut db,
            &TpcrConfig {
                scale: 0.001,
                ..Default::default()
            },
        )
        .unwrap();
        let n_cust = db.len("customer").unwrap() as i64;
        let n_ord = db.len("orders").unwrap() as i64;
        db.with_relation("orders", |r| {
            for (_, t) in r.iter() {
                let ck = t.get(1).as_int().unwrap();
                assert!(ck >= 1 && ck <= n_cust);
            }
        })
        .unwrap();
        db.with_relation("lineitem", |r| {
            for (_, t) in r.iter() {
                let ok = t.get(0).as_int().unwrap();
                assert!(ok >= 1 && ok <= n_ord);
            }
        })
        .unwrap();
    }

    #[test]
    fn padding_approximates_table1_widths() {
        let mut db = Database::new();
        let stats = generate(
            &mut db,
            &TpcrConfig {
                scale: 0.001,
                pad: true,
                ..Default::default()
            },
        )
        .unwrap();
        let cust_avg = stats.customer_bytes / stats.customers;
        let ord_avg = stats.orders_bytes / stats.orders;
        let line_avg = stats.lineitem_bytes / stats.lineitems;
        // Table 1 implies ≈153 / 76 / 126 bytes per tuple; our in-memory
        // representation doubles that but must preserve the ratios.
        assert!((280..=340).contains(&cust_avg), "customer {cust_avg}");
        assert!((130..=180).contains(&ord_avg), "orders {ord_avg}");
        assert!((230..=280).contains(&line_avg), "lineitem {line_avg}");
        let r1 = cust_avg as f64 / ord_avg as f64; // paper: 153/76 ≈ 2.0
        let r2 = line_avg as f64 / ord_avg as f64; // paper: 126/76 ≈ 1.66
        assert!((1.6..=2.4).contains(&r1), "cust/ord ratio {r1}");
        assert!((1.3..=2.0).contains(&r2), "line/ord ratio {r2}");
    }

    #[test]
    fn indexes_build_on_generated_data() {
        let mut db = Database::new();
        generate(
            &mut db,
            &TpcrConfig {
                scale: 0.001,
                ..Default::default()
            },
        )
        .unwrap();
        standard_indexes(&mut db).unwrap();
        assert!(db.index_on("orders", &[2]).is_some());
        assert!(db.index_on("lineitem", &[1]).is_some());
        use pmv_index::SecondaryIndex;
        assert_eq!(
            db.index_on("orders", &[0]).unwrap().entry_count(),
            db.len("orders").unwrap()
        );
    }

    #[test]
    fn deterministic_generation() {
        let gen = |seed| {
            let mut db = Database::new();
            generate(
                &mut db,
                &TpcrConfig {
                    scale: 0.001,
                    seed,
                    pad: false,
                    date_supplier_pool: None,
                },
            )
            .unwrap();
            let mut dates = Vec::new();
            db.with_relation("orders", |r| {
                for (_, t) in r.iter().take(10) {
                    dates.push(t.get(2).clone());
                }
            })
            .unwrap();
            dates
        };
        assert_eq!(gen(1), gen(1));
        assert_ne!(gen(1), gen(2));
    }
}
