// IPA corpus: the closure passed to `catch_unwind` calls a helper that
// acquires a shard lock. Textually the closure is lock-free, so only
// the interprocedural pass can flag it.

struct Fx;

impl Fx {
    fn fill(&self) {
        let fill = catch_unwind(AssertUnwindSafe(|| {
            fx_touch_store(self);
        }));
        drop(fill);
    }
}

fn fx_touch_store(fx: &Fx) {
    let mut store = fx.shard_slot.write();
    store.clear();
}
