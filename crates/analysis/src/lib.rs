//! # pmv-analysis — static analysis for the PMV system
//!
//! This crate is the analysis umbrella described in DESIGN.md §12. It
//! has two halves:
//!
//! 1. **Template verifier** (`verify` — re-exported from
//!    [`pmv_core::verify`]). Registration-time checks that a
//!    [`pmv_core::ViewDef`]'s template, discretizers and maintenance
//!    filter satisfy the paper's soundness preconditions *without
//!    executing anything*, producing typed diagnostics PMV001–PMV006.
//!    The verifier lives in `pmv-core` so `PmvManager::register` can
//!    call it without a dependency cycle; this crate re-exports it as
//!    the analysis entry point and houses the corpus and property
//!    tests that pin its behaviour.
//!
//! 2. **Source lint pass** ([`lint`], driven by the `pmv-lint` binary).
//!    Repo-specific concurrency rules over `crates/**` source text:
//!    no shard write guard held across executor calls, no lock
//!    acquisition inside `catch_unwind` closures, DB-before-shard lock
//!    order, and no `Relaxed` atomics outside designated statistics
//!    modules.
//!
//! Run the lint pass with:
//!
//! ```text
//! cargo run -p pmv-analysis --bin pmv-lint -- [--json] [--deny-warnings] [paths…]
//! ```

pub mod lint;

pub use pmv_core::verify::{
    estimate_tuple_bytes, verify_def, verify_parts, DiagCode, Diagnostic, FilterSpec, Severity,
    VerifyOptions, VerifyPolicy, VerifyReport,
};
