//! Replacement policies for managing the basic condition parts resident in
//! a PMV.
//!
//! Section 3.2 manages the bcp entries of a PMV with CLOCK; Section 3.5
//! observes that the PMV "looks much like a buffer pool" (bcp = page id,
//! the ≤ F cached tuples = page) and proposes simplified 2Q as a better
//! policy; the experimental Section 4.1 compares the two. The paper leaves
//! "other algorithms that perform better than both CLOCK and 2Q" as future
//! work — we include LRU and LRU-2 behind the same trait for that
//! ablation.
//!
//! A policy manages *keys* only (generic `K`); the PMV store owns the
//! cached tuples and evicts them when the policy reports an eviction.
//! [`AdmitOutcome`] distinguishes *resident* keys (their tuples are cached
//! and can serve partial results) from *probationary* keys (2Q's A1 queue
//! holds the key but no tuples yet).

pub mod clock;
pub mod lru;
pub mod lru_k;
pub mod two_q;
pub mod two_q_full;

pub use clock::ClockPolicy;
pub use lru::LruPolicy;
pub use lru_k::LruKPolicy;
pub use two_q::TwoQPolicy;
pub use two_q_full::TwoQFullPolicy;

use std::fmt::Debug;
use std::hash::Hash;

/// What happened when a key was touched/admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitOutcome<K> {
    /// The key is now resident; any listed keys were evicted to make room.
    Resident {
        /// Keys evicted from residency (their cached tuples must be
        /// purged by the store).
        evicted: Vec<K>,
    },
    /// The key was noted (e.g. placed in 2Q's A1 probation queue) but is
    /// not resident; the store must not cache tuples for it yet.
    Probation,
}

impl<K> AdmitOutcome<K> {
    /// Whether the key ended up resident.
    pub fn is_resident(&self) -> bool {
        matches!(self, AdmitOutcome::Resident { .. })
    }

    /// Evicted keys (empty for probation).
    pub fn evicted(&self) -> &[K] {
        match self {
            AdmitOutcome::Resident { evicted } => evicted,
            AdmitOutcome::Probation => &[],
        }
    }

    /// Number of keys evicted by this admission — the telemetry feed for
    /// fill-phase trace events, without borrowing the key list.
    pub fn evicted_count(&self) -> u64 {
        self.evicted().len() as u64
    }
}

/// A replacement policy over keys of type `K`.
///
/// Contract: `contains` answers residency; `touch` records an access to a
/// key (resident or not) and may change its future fate; `admit` is called
/// when the store wants the key to become resident (because query
/// execution just produced tuples for it, Operation O3).
pub trait ReplacementPolicy<K: Clone + Eq + Hash + Debug> {
    /// Is `key` currently resident (its tuples may be served)?
    fn contains(&self, key: &K) -> bool;

    /// Record an access to `key` (a query asked for it in Operation O2).
    fn touch(&mut self, key: &K);

    /// Ask to make `key` resident. Policies with probation queues may
    /// decline (returning [`AdmitOutcome::Probation`]) until the key has
    /// been seen often enough.
    fn admit(&mut self, key: K) -> AdmitOutcome<K>;

    /// Drop `key` from the policy entirely (e.g. PMV maintenance removed
    /// its last tuple). No-op if absent.
    fn remove(&mut self, key: &K);

    /// Number of resident keys.
    fn resident_count(&self) -> usize;

    /// Maximum number of resident keys.
    fn capacity(&self) -> usize;

    /// All resident keys (test/diagnostic helper; arbitrary order).
    fn resident_keys(&self) -> Vec<K>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Resident fraction of capacity in `[0, 1]` — exported as the
    /// `occupancy` gauge. Zero-capacity policies report 0 (never NaN).
    fn occupancy(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.resident_count() as f64 / self.capacity() as f64
        }
    }
}

/// Which policy to instantiate (used by config/bench code).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// CLOCK (second chance), the paper's default.
    Clock,
    /// Simplified 2Q per Section 4.1.
    TwoQ,
    /// Plain LRU (ablation).
    Lru,
    /// LRU-2 (ablation, tracks the 2nd most recent access).
    LruK,
    /// Full 2Q with A1in/A1out queues (ablation; the paper used the
    /// simplified variant).
    TwoQFull,
}

impl PolicyKind {
    /// Instantiate a policy with `capacity` resident entries.
    ///
    /// For 2Q, `capacity` is the Am queue size N; the A1 probation queue
    /// gets the paper's N' = 50% × N additional key-only entries.
    ///
    /// The box is `Send + Sync` so a store can live behind a shard's
    /// `RwLock` in the sharded concurrent PMV.
    pub fn build<K: Clone + Eq + Hash + Ord + Debug + Send + Sync + 'static>(
        &self,
        capacity: usize,
    ) -> Box<dyn ReplacementPolicy<K> + Send + Sync> {
        match self {
            PolicyKind::Clock => Box::new(ClockPolicy::new(capacity)),
            PolicyKind::TwoQ => Box::new(TwoQPolicy::new(capacity)),
            PolicyKind::Lru => Box::new(LruPolicy::new(capacity)),
            PolicyKind::LruK => Box::new(LruKPolicy::new(capacity, 2)),
            PolicyKind::TwoQFull => Box::new(TwoQFullPolicy::new(capacity.max(2))),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Clock => "CLOCK",
            PolicyKind::TwoQ => "2Q",
            PolicyKind::Lru => "LRU",
            PolicyKind::LruK => "LRU-2",
            PolicyKind::TwoQFull => "2Q-full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_named_policies() {
        for (kind, name) in [
            (PolicyKind::Clock, "CLOCK"),
            (PolicyKind::TwoQ, "2Q"),
            (PolicyKind::Lru, "LRU"),
            (PolicyKind::LruK, "LRU-2"),
            (PolicyKind::TwoQFull, "2Q-full"),
        ] {
            let p: Box<dyn ReplacementPolicy<u64>> = kind.build(8);
            assert_eq!(p.name(), name);
            assert_eq!(kind.name(), name);
            assert_eq!(p.capacity(), 8);
            assert_eq!(p.resident_count(), 0);
        }
    }

    #[test]
    fn admit_outcome_helpers() {
        let r: AdmitOutcome<u32> = AdmitOutcome::Resident { evicted: vec![7] };
        assert!(r.is_resident());
        assert_eq!(r.evicted(), &[7]);
        let p: AdmitOutcome<u32> = AdmitOutcome::Probation;
        assert!(!p.is_resident());
        assert!(p.evicted().is_empty());
        assert_eq!(r.evicted_count(), 1);
        assert_eq!(p.evicted_count(), 0);
    }

    #[test]
    fn occupancy_gauge() {
        let mut p: Box<dyn ReplacementPolicy<u64>> = PolicyKind::Clock.build(4);
        assert_eq!(p.occupancy(), 0.0);
        p.admit(1);
        p.admit(2);
        assert!((p.occupancy() - 0.5).abs() < 1e-12);

        // The default guards capacity() == 0 (policies assert positive
        // capacity at build time, but trait impls outside this crate may
        // not): it must yield 0, never NaN.
        struct Zero;
        impl ReplacementPolicy<u64> for Zero {
            fn contains(&self, _: &u64) -> bool {
                false
            }
            fn touch(&mut self, _: &u64) {}
            fn admit(&mut self, _: u64) -> AdmitOutcome<u64> {
                AdmitOutcome::Probation
            }
            fn remove(&mut self, _: &u64) {}
            fn resident_count(&self) -> usize {
                0
            }
            fn capacity(&self) -> usize {
                0
            }
            fn resident_keys(&self) -> Vec<u64> {
                Vec::new()
            }
            fn name(&self) -> &'static str {
                "zero"
            }
        }
        assert_eq!(Zero.occupancy(), 0.0, "zero capacity must not be NaN");
    }
}
