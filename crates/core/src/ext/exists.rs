//! EXISTS-nested-query acceleration (Section 3.6).
//!
//! "Suppose that we can quickly obtain tuples from the main query but
//! checking the EXISTS condition is time-consuming. In this case, a PMV
//! can be used to quickly generate partial results of the subquery" —
//! and since EXISTS only needs *one* witness, any cached tuple settles
//! the check without executing the subquery at all.

use pmv_query::{Database, QueryInstance};

use crate::o1::decompose;
use crate::pipeline::{Pmv, PmvPipeline};
use crate::Result;

/// How an EXISTS check was answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExistsOutcome {
    /// The EXISTS verdict.
    pub exists: bool,
    /// True when a cached PMV tuple answered it without execution.
    pub fast_path: bool,
}

/// Evaluate `EXISTS (subquery)` using the subquery's PMV.
///
/// Fast path: probe the PMV for the subquery's condition parts; one
/// matching cached tuple proves existence. Slow path: run the full
/// pipeline (which also warms the PMV for future checks) and test for
/// any result.
pub fn exists_accelerated(
    pipeline: &PmvPipeline,
    db: &Database,
    pmv: &mut Pmv,
    subquery: &QueryInstance,
) -> Result<ExistsOutcome> {
    // Fast path: a witness in the PMV settles it. (Read-only probe: no
    // policy touch, no stats mutation beyond the fast-path counterless
    // peek — the slow path does full accounting.)
    let parts = decompose(pmv.def(), subquery)?;
    for part in &parts {
        if let Some(tuples) = pmv.store().lookup(&part.bcp) {
            for (t, _) in tuples {
                if part.is_basic || subquery.matches_select(t) {
                    return Ok(ExistsOutcome {
                        exists: true,
                        fast_path: true,
                    });
                }
            }
        }
    }
    // Slow path: execute (and warm the PMV as a side effect).
    let outcome = pipeline.run(db, pmv, subquery)?;
    Ok(ExistsOutcome {
        exists: !outcome.partial.is_empty() || !outcome.remaining.is_empty(),
        fast_path: false,
    })
}
