#![cfg(loom)]
//! Race-detector models of the sharded PMV's two concurrency protocols:
//! shard quarantine/drain and circuit-breaker transitions (ISSUE 3
//! tentpole, layer 3). Compiled only under `RUSTFLAGS="--cfg loom"` —
//! CI's loom job; `cargo test` skips this file entirely.
//!
//! The workspace's offline `loom` shim is a randomized-interleaving
//! stress scheduler rather than a DPOR model checker (see
//! `shims/loom`): `loom::model` replays each body under many perturbed
//! schedules. The models are written against the loom API surface, so a
//! CI environment with registry access can substitute the real crate
//! unchanged.

use std::collections::HashMap;

use loom::sync::Arc;
use loom::thread;

use pmv_cache::PolicyKind;
use pmv_core::{
    BreakerConfig, CircuitBreaker, EpochDb, PartialViewDef, PmvConfig, SharedPmv, ViewHealth,
};
use pmv_faultinject::{FaultKind, FaultPlan, Site, PANIC_PREFIX};
use pmv_index::IndexDef;
use pmv_query::{Condition, Database, TemplateBuilder, Transaction};
use pmv_storage::{tuple, Column, ColumnType, Schema, Value};
use pmv_sync::LeftRight;

fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with(PANIC_PREFIX))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.starts_with(PANIC_PREFIX))
            })
            .unwrap_or(false);
        if !injected {
            default(info);
        }
    }));
}

fn setup(shards: usize) -> (Database, SharedPmv) {
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    for i in 0..60i64 {
        db.insert("r", tuple![i, i % 6]).unwrap();
    }
    db.create_index(IndexDef::btree("r", vec![1])).unwrap();
    let t = TemplateBuilder::new("t")
        .relation(db.schema("r").unwrap())
        .select("r", "a")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .build()
        .unwrap();
    let def = PartialViewDef::all_equality("model", t).unwrap();
    let shared = SharedPmv::with_shards(def, PmvConfig::new(3, 8, PolicyKind::Clock), shards);
    (db, shared)
}

/// Quarantine/drain: injected probe/fill panics quarantine shards while
/// reader threads keep serving; a fault-free revalidate then drains and
/// lifts every quarantine, restoring full health. The shard invariants
/// must hold at every schedule the scheduler explores.
#[test]
fn quarantine_drain_protocol() {
    quiet_injected_panics();
    loom::model(|| {
        let (db, shared) = setup(4);
        let plan = std::sync::Arc::new(
            FaultPlan::new(7)
                .with_rule(Site::ShardProbe, FaultKind::Panic, 0.20)
                .with_rule(Site::ShardFill, FaultKind::Panic, 0.20),
        );
        let _guard = pmv_faultinject::install(std::sync::Arc::clone(&plan));
        let db = Arc::new(db);
        let t = shared.def().template().clone();

        let handles: Vec<_> = (0..3i64)
            .map(|tid| {
                let shared = shared.clone();
                let db = Arc::clone(&db);
                let t = t.clone();
                thread::spawn(move || {
                    for i in 0..6i64 {
                        thread::yield_now();
                        let q = t
                            .bind(vec![Condition::Equality(vec![Value::Int((tid + i) % 6)])])
                            .unwrap();
                        // Panics must never escape the serving path.
                        shared.run(&db, &q).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic may escape the serving path");
        }
        shared.debug_validate();

        // Fault-free drain: lifts every quarantine, removes nothing
        // stale (readers never wrote under faults — fills that panicked
        // never landed).
        let removed = pmv_faultinject::suppress(|| shared.revalidate(&db)).unwrap();
        assert_eq!(removed, 0, "drain found stale tuples");
        assert_eq!(shared.quarantined_shards(), 0);
        shared.debug_validate();
    });
}

/// Breaker transitions: concurrent ok/error reporters may interleave
/// arbitrarily, but the state must always be one of the three legal
/// states, `allow_serve` must agree with it, and a reset must restore
/// Healthy once reporters are done.
#[test]
fn breaker_transitions_are_consistent() {
    loom::model(|| {
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
            window: 16,
            degrade_threshold: 0.1,
            quarantine_threshold: 0.5,
            min_events: 4,
        }));

        let handles: Vec<_> = (0..3u64)
            .map(|tid| {
                let b = Arc::clone(&breaker);
                thread::spawn(move || {
                    for i in 0..8u64 {
                        thread::yield_now();
                        if (tid + i) % 3 == 0 {
                            b.record_ok();
                        } else {
                            b.record_error();
                        }
                        // Observed state is always legal and coherent
                        // with the serve gate.
                        let st = b.state();
                        assert!(matches!(
                            st,
                            ViewHealth::Healthy | ViewHealth::Degraded | ViewHealth::Quarantined
                        ));
                        if st == ViewHealth::Quarantined {
                            assert!(!b.allow_serve());
                        }
                        let rate = b.error_rate();
                        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // 2/3 of 24 events are errors — far beyond the 0.5 trip line.
        assert_eq!(breaker.state(), ViewHealth::Quarantined);
        assert!(breaker.trip_count() >= 1);
        breaker.reset();
        assert_eq!(breaker.state(), ViewHealth::Healthy);
        assert!(breaker.allow_serve());
    });
}

/// The epoch pin/swap handoff on the raw primitive: concurrent readers
/// `load` a [`LeftRight`] cell while a writer publishes increasing
/// values. Every load must return a value that was actually published
/// (no torn read — the two-slot protocol never hands out a slot being
/// overwritten), no reader may travel backwards in time, and the final
/// load observes the last publish.
#[test]
fn left_right_pin_swap_handoff() {
    loom::model(|| {
        let cell = std::sync::Arc::new(LeftRight::new(std::sync::Arc::new(0u64)));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = std::sync::Arc::clone(&cell);
                thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..8 {
                        thread::yield_now();
                        let v = *cell.load();
                        assert!(v <= 6, "torn read: {v} was never published");
                        assert!(v >= last, "reader went backwards: {last} -> {v}");
                        last = v;
                    }
                })
            })
            .collect();
        for i in 1..=6u64 {
            thread::yield_now();
            cell.publish(std::sync::Arc::new(i));
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), 6);
        assert_eq!(cell.versions(), 6);
    });
}

/// The epoch serving path end to end: pinned queries race commits that
/// insert and delete rows. The maintain-before-publish commit protocol
/// plus the fill/serve epoch gates must preserve the end-of-O3
/// `ds_leftover == 0` invariant (every served partial re-derived by the
/// pinned execution) under every explored schedule, and a final
/// revalidation must find nothing stale in the shards.
#[test]
fn epoch_pin_maintain_before_publish() {
    loom::model(|| {
        let (db, shared) = setup(4);
        let edb = std::sync::Arc::new(EpochDb::new(db));
        let t = shared.def().template().clone();

        let mut handles = Vec::new();
        for tid in 0..2i64 {
            let shared = shared.clone();
            let edb = std::sync::Arc::clone(&edb);
            let t = t.clone();
            handles.push(thread::spawn(move || {
                for i in 0..5i64 {
                    thread::yield_now();
                    let q = t
                        .bind(vec![Condition::Equality(vec![Value::Int(
                            (tid * 2 + i) % 6,
                        )])])
                        .unwrap();
                    let out = edb.query(&shared, &q).unwrap();
                    assert_eq!(out.ds_leftover, 0, "stale partial under epoch serving");
                }
            }));
        }
        {
            let shared = shared.clone();
            let edb = std::sync::Arc::clone(&edb);
            handles.push(thread::spawn(move || {
                for i in 0..4i64 {
                    thread::yield_now();
                    edb.commit(&[&shared], move |db| {
                        if i % 2 == 0 {
                            let mut txn = Transaction::begin(db);
                            txn.insert("r", tuple![100 + i, i % 6]).unwrap();
                            return Ok(((), txn.commit()));
                        }
                        let row = {
                            let handle = db.relation("r").unwrap();
                            let rel = handle.read();
                            let row = rel
                                .iter()
                                .find(|(_, tu)| tu.get(1) == &Value::Int(3))
                                .map(|(r, _)| r);
                            row
                        };
                        let mut txn = Transaction::begin(db);
                        if let Some(row) = row {
                            txn.delete("r", row).unwrap();
                        }
                        Ok(((), txn.commit()))
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let guard = edb.read();
        let removed = shared.revalidate(&guard).unwrap();
        assert_eq!(removed, 0, "epoch serving left stale tuples in shards");
        shared.debug_validate();
    });
}

/// The flat-combining queue handoff (DESIGN.md §15): N committers race
/// to enqueue and one lock winner drains the whole queue, so every
/// commit call must return its own result exactly once — no slot may be
/// lost when a request is applied by *another* thread's combine pass.
/// All inserts are distinct, so under every explored schedule the final
/// database holds every committed row, the coalescing counters stay
/// coherent (`commits` counts requests, `combines` counts lock
/// acquisitions that drained them), and one published snapshot serves
/// every row.
#[test]
fn group_commit_queue_handoff() {
    loom::model(|| {
        let (db, shared) = setup(2);
        let edb = std::sync::Arc::new(EpochDb::new(db));

        let committers: Vec<_> = (0..3i64)
            .map(|tid| {
                let shared = shared.clone();
                let edb = std::sync::Arc::clone(&edb);
                thread::spawn(move || {
                    for i in 0..3i64 {
                        thread::yield_now();
                        // Each (tid, i) row is unique; the closure's
                        // return value round-trips through the slot.
                        let row = 1000 + tid * 10 + i;
                        let got = edb
                            .commit(&[&shared], move |db| {
                                let mut txn = Transaction::begin(db);
                                txn.insert("r", tuple![row, row % 6]).unwrap();
                                Ok((row, txn.commit()))
                            })
                            .unwrap();
                        assert_eq!(got, row, "combiner filled the wrong slot");
                    }
                })
            })
            .collect();
        for h in committers {
            h.join().unwrap();
        }

        // Every request was applied exactly once: 60 seeded + 9 new.
        let guard = edb.read();
        let handle = guard.relation("r").unwrap();
        let n = handle.read().iter().count();
        assert_eq!(n, 69, "a queued commit was lost or double-applied");
        drop(guard);

        let (commits, combines) = edb.commit_counts();
        assert_eq!(commits, 9, "every commit request must be counted");
        assert!(
            (1..=commits).contains(&combines),
            "combine passes ({combines}) must be between 1 and commits ({commits})"
        );

        // The last published snapshot serves every committed row.
        let t = shared.def().template().clone();
        for f in 0..6i64 {
            let q = t
                .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                .unwrap();
            let out = edb.query(&shared, &q).unwrap();
            assert_eq!(out.ds_leftover, 0);
        }
        let guard = edb.read();
        assert_eq!(shared.revalidate(&guard).unwrap(), 0);
        shared.debug_validate();
    });
}

/// Targeted upqueries racing maintenance eviction on a drained shard
/// (ISSUE 10). Readers issue two-part queries whose complete part
/// short-circuits and whose drained part triggers a bounded keyed
/// upquery refill, while a committer keeps deleting rows out of the
/// queried bcps — each delete drains the supported view tuples and
/// bumps `maint_epoch`, so any refill derived at an older pin must be
/// discarded by the fill gate. Under every explored schedule: no query
/// serves a stale tuple (`ds_leftover == 0`), nothing stale survives in
/// the shards, and the store invariants hold.
#[test]
fn upquery_vs_eviction_on_drained_shard() {
    loom::model(|| {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        for i in 0..60i64 {
            db.insert("r", tuple![i, i % 6]).unwrap();
        }
        db.create_index(IndexDef::btree("r", vec![1])).unwrap();
        let t = TemplateBuilder::new("t")
            .relation(db.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap();
        let def = PartialViewDef::all_equality("upq_model", t.clone()).unwrap();
        // F = 16 > 10 rows per bcp, so a first full execution caches the
        // whole slice and marks the bcp complete — the precondition for
        // the targeted-upquery path on later mixed probes.
        let shared = SharedPmv::with_shards(def, PmvConfig::new(16, 8, PolicyKind::Clock), 4);
        let edb = std::sync::Arc::new(EpochDb::new(db));

        // Warm every bcp to completeness, then drain bcp f=3 with a
        // committed delete: the next [3, x] probe finds x complete and 3
        // open, which is exactly the upquery shape.
        for f in 0..6i64 {
            let q = t
                .bind(vec![Condition::Equality(vec![Value::Int(f)])])
                .unwrap();
            edb.query(&shared, &q).unwrap();
        }
        edb.commit(&[&shared], |db| {
            let row = {
                let handle = db.relation("r").unwrap();
                let rel = handle.read();
                let row = rel
                    .iter()
                    .find(|(_, tu)| tu.get(1) == &Value::Int(3))
                    .map(|(r, _)| r);
                row
            };
            let mut txn = Transaction::begin(db);
            if let Some(row) = row {
                txn.delete("r", row).unwrap();
            }
            Ok(((), txn.commit()))
        })
        .unwrap();

        let mut handles = Vec::new();
        for tid in 0..2i64 {
            let shared = shared.clone();
            let edb = std::sync::Arc::clone(&edb);
            let t = t.clone();
            handles.push(thread::spawn(move || {
                for i in 0..4i64 {
                    thread::yield_now();
                    // Two parts: the drained bcp (f=3) plus a distinct
                    // second value, some warmed-complete and one (f=4)
                    // being drained by the committer.
                    let second = [0i64, 1, 4, 5][((tid * 2 + i) % 4) as usize];
                    let q = t
                        .bind(vec![Condition::Equality(vec![
                            Value::Int(3),
                            Value::Int(second),
                        ])])
                        .unwrap();
                    let out = edb.query(&shared, &q).unwrap();
                    assert_eq!(out.ds_leftover, 0, "upquery served a stale tuple");
                }
            }));
        }
        {
            let shared = shared.clone();
            let edb = std::sync::Arc::clone(&edb);
            handles.push(thread::spawn(move || {
                for i in 0..3i64 {
                    thread::yield_now();
                    edb.commit(&[&shared], move |db| {
                        // Keep draining the bcps the readers refill.
                        let f = if i % 2 == 0 { 3 } else { 4 };
                        let row = {
                            let handle = db.relation("r").unwrap();
                            let rel = handle.read();
                            let row = rel
                                .iter()
                                .find(|(_, tu)| tu.get(1) == &Value::Int(f))
                                .map(|(r, _)| r);
                            row
                        };
                        let mut txn = Transaction::begin(db);
                        if let Some(row) = row {
                            txn.delete("r", row).unwrap();
                        }
                        Ok(((), txn.commit()))
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        // The epoch fill gate must have kept every refill coherent: a
        // ground-truth sweep finds nothing stale in any shard.
        let guard = edb.read();
        let removed = shared.revalidate(&guard).unwrap();
        assert_eq!(removed, 0, "upquery refill resurrected an evicted tuple");
        shared.debug_validate();
    });
}

/// The two-phase revalidate drain modelled directly: phase 1 snapshots
/// keys under a read guard and computes ground truth with no lock held;
/// phase 2 removes stale entries under the write guard. A concurrent
/// filler inserting *correct* entries between the phases must never
/// lose data, and every stale entry present before the drain must be
/// gone after it — the removal-only soundness argument from DESIGN.md.
#[test]
fn two_phase_drain_is_removal_only_sound() {
    loom::model(|| {
        let truth: HashMap<i64, i64> = (0..8).map(|k| (k, k * 10)).collect();
        let store = Arc::new(loom::sync::RwLock::new(HashMap::<i64, i64>::new()));
        {
            let mut s = store.write().unwrap();
            // Pre-drain state: some correct entries, some stale.
            s.insert(0, 0);
            s.insert(1, 999); // stale value
            s.insert(100, 1); // stale key
        }

        let filler = {
            let store = Arc::clone(&store);
            let truth = truth.clone();
            thread::spawn(move || {
                for k in 2..6i64 {
                    thread::yield_now();
                    store.write().unwrap().insert(k, truth[&k]);
                }
            })
        };

        let drainer = {
            let store = Arc::clone(&store);
            let truth = truth.clone();
            thread::spawn(move || {
                // Phase 1: snapshot keys under the read guard only.
                let keys: Vec<i64> = store.read().unwrap().keys().copied().collect();
                thread::yield_now(); // executor work happens guard-free here
                                     // Phase 2: remove stale entries under the write guard.
                let mut s = store.write().unwrap();
                for k in keys {
                    let stale = match (s.get(&k), truth.get(&k)) {
                        (Some(v), Some(t)) => v != t,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    if stale {
                        s.remove(&k);
                    }
                }
            })
        };

        filler.join().unwrap();
        drainer.join().unwrap();

        let s = store.read().unwrap();
        // Removal-only soundness: nothing stale survives a drain that
        // snapshotted it, and no correct fill was lost.
        assert_ne!(s.get(&1), Some(&999), "stale value survived the drain");
        assert_eq!(s.get(&100), None, "stale key survived the drain");
        for k in 2..6i64 {
            assert_eq!(s.get(&k), Some(&truth[&k]), "correct fill {k} lost");
        }
    });
}
