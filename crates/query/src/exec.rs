//! Query execution.
//!
//! [`execute`] is an index-nested-loop-join executor for the template
//! class: it drives from the first selection condition's relation
//! (fetching candidates through a secondary index where one exists), then
//! binds the remaining relations one join edge at a time, probing the join
//! index of each. This mirrors the plans the paper describes for Eqt
//! ("fetches tuples from R using the index on R.f; for each retrieved
//! tuple, the index on S.d is used to search S", Section 2.1).
//!
//! The executor is generic over [`DataView`]: it runs identically on the
//! live [`Database`] or on an immutable [`crate::DbSnapshot`]. Either
//! way it resolves every relation and index it needs to immutable `Arc`
//! versions **up front** and then holds no lock for the rest of the
//! query — O3 is lock-free. The inner loops are zero-copy: index
//! postings are borrowed slices (no `to_vec`), probe values are borrowed
//! from the bound tuples (no per-probe `Value` clone or `IndexKey`
//! allocation), and result tuples are built once and handed out as
//! `Arc<Tuple>` (see [`execute_bounded_arc`]).
//!
//! [`execute_scan`] is a deliberately naive nested-loop oracle used by the
//! test suite to validate the indexed executor, and [`join_from`] computes
//! the `ΔR ⋈ (other relations)` join needed by PMV delete maintenance
//! (Section 3.4) without touching the deleted tuple's own relation.

use std::sync::Arc;

use pmv_faultinject::Site;
use pmv_index::{AnyIndex, IndexKey};
use pmv_storage::{HeapRelation, RowId, Tuple, Value};

use crate::condition::Condition;
use crate::dbview::DataView;
#[allow(unused_imports)] // referenced by docs; concrete callers use it via DataView
use crate::engine::Database;
use crate::template::{AttrRef, QueryInstance, QueryTemplate};
use crate::{BudgetExceeded, QueryError, Result};

/// Resource limits for one execution: a wall-clock deadline and/or a cap
/// on tuples examined. The default ([`ExecBudget::UNLIMITED`]) imposes
/// neither, so [`execute`] behaves exactly as before budgets existed.
///
/// Budgets make O3 *interruptible*: when the PMV already holds partial
/// results for a query, a caller can bound how long it is willing to wait
/// for the full answer and fall back to serving the (sound but
/// incomplete) cached partials flagged as degraded.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecBudget {
    /// Absolute wall-clock instant after which execution aborts.
    pub deadline: Option<std::time::Instant>,
    /// Maximum number of tuples the executor may examine.
    pub max_tuples: Option<u64>,
}

impl ExecBudget {
    /// No limits: run to completion.
    pub const UNLIMITED: ExecBudget = ExecBudget {
        deadline: None,
        max_tuples: None,
    };

    /// Whether this budget imposes any limit at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_tuples.is_none()
    }
}

/// How many tuples to examine between deadline checks; bounds both the
/// `Instant::now` overhead on the hot path and the overshoot past the
/// deadline.
const DEADLINE_CHECK_STRIDE: usize = 16;

/// Counters describing how a query was executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Exact-match index probes issued.
    pub index_probes: usize,
    /// Index range scans issued.
    pub range_scans: usize,
    /// Full relation scans that had to run because no index applied.
    pub fallback_scans: usize,
    /// Tuples examined (fetched and predicate-checked).
    pub tuples_examined: usize,
    /// Result tuples produced.
    pub results: usize,
}

impl ExecStats {
    /// Every counter as `(name, value)` pairs — the export feed for
    /// per-execution telemetry (trace `exec` events, metrics gauges).
    pub fn as_pairs(&self) -> [(&'static str, u64); 5] {
        [
            ("index_probes", self.index_probes as u64),
            ("range_scans", self.range_scans as u64),
            ("fallback_scans", self.fallback_scans as u64),
            ("tuples_examined", self.tuples_examined as u64),
            ("results", self.results as u64),
        ]
    }

    /// Fold another execution's counters into this one (used when
    /// aggregating across retries or shards).
    pub fn merge(&mut self, other: &ExecStats) {
        self.index_probes += other.index_probes;
        self.range_scans += other.range_scans;
        self.fallback_scans += other.fallback_scans;
        self.tuples_examined += other.tuples_examined;
        self.results += other.results;
    }
}

/// One join step in the binding order: bind `new_rel` by probing its
/// `new_attr` column with the value of `bound_attr` from an already-bound
/// relation.
struct JoinStep {
    /// Index of the join edge in `t.joins()` this step enforces.
    join_idx: usize,
    new_rel: usize,
    bound_attr: AttrRef,
    new_attr: AttrRef,
}

/// Compute the binding order starting from `start`, walking join edges.
fn plan_join_order(t: &QueryTemplate, start: usize) -> Vec<JoinStep> {
    let n = t.relations().len();
    let mut bound = vec![false; n];
    bound[start] = true;
    let mut steps = Vec::with_capacity(n.saturating_sub(1));
    while steps.len() + 1 < n {
        let step = t
            .joins()
            .iter()
            .enumerate()
            .find_map(|(ji, j)| {
                if bound[j.left.relation] && !bound[j.right.relation] {
                    Some(JoinStep {
                        join_idx: ji,
                        new_rel: j.right.relation,
                        bound_attr: j.left,
                        new_attr: j.right,
                    })
                } else if bound[j.right.relation] && !bound[j.left.relation] {
                    Some(JoinStep {
                        join_idx: ji,
                        new_rel: j.left.relation,
                        bound_attr: j.right,
                        new_attr: j.left,
                    })
                } else {
                    None
                }
            })
            .expect("join graph is connected (validated at template build)");
        bound[step.new_rel] = true;
        steps.push(step);
    }
    steps
}

/// Join edges *not* enforced by the spanning binding order (cyclic /
/// redundant edges); only these need re-checking at emit.
fn redundant_joins(t: &QueryTemplate, steps: &[JoinStep]) -> Vec<usize> {
    (0..t.joins().len())
        .filter(|ji| !steps.iter().any(|s| s.join_idx == *ji))
        .collect()
}

/// Everything the executor resolved from the [`DataView`] before the
/// join loop: immutable relation versions and (optional) index handles.
/// Once this exists, execution never touches the view — or any lock —
/// again.
struct Resolved {
    /// Current version of each template relation, by relation index.
    rels: Vec<Arc<HeapRelation>>,
    /// Pre-resolved join-probe index for each step (same order as the
    /// step list), so the inner loop borrows posting slices without
    /// re-borrowing the view.
    step_indexes: Vec<Option<Arc<AnyIndex>>>,
    /// Pre-resolved driving-condition index, if any.
    drive_index: Option<Arc<AnyIndex>>,
}

fn resolve<V: DataView>(
    view: &V,
    t: &QueryTemplate,
    steps: &[JoinStep],
    drive: usize,
    drive_cond: Option<usize>,
) -> Result<Resolved> {
    let rels: Vec<Arc<HeapRelation>> = t
        .relations()
        .iter()
        .map(|name| view.relation_version(name))
        .collect::<Result<_>>()?;
    let step_indexes = steps
        .iter()
        .map(|s| view.index_arc(&t.relations()[s.new_rel], &[s.new_attr.column]))
        .collect();
    let drive_index = drive_cond.and_then(|ci| {
        let col = t.cond_templates()[ci].attr.column;
        view.index_arc(&t.relations()[drive], &[col])
    });
    Ok(Resolved {
        rels,
        step_indexes,
        drive_index,
    })
}

/// Shared executor context.
struct ExecCtx<'a> {
    t: &'a QueryTemplate,
    /// Selection conditions grouped by relation: `(cond index, condition)`.
    conds_by_rel: Vec<Vec<(usize, &'a Condition)>>,
    /// Join edges to re-check at emit (cyclic edges only; spanning edges
    /// are enforced by probe construction).
    redundant: Vec<usize>,
    stats: ExecStats,
    out: Vec<Arc<Tuple>>,
    budget: ExecBudget,
    /// First budget/fault error hit; set once, then every loop unwinds.
    abort: Option<QueryError>,
}

impl<'a> ExecCtx<'a> {
    /// Do all predicates local to `rel` hold for `tuple`? (fixed preds and
    /// selection conditions; join predicates are enforced by construction
    /// of the probe, and re-checked for redundant join edges at emit.)
    fn local_predicates_hold(&self, rel: usize, tuple: &Tuple, check_conds: bool) -> bool {
        for fp in self.t.fixed_preds() {
            if fp.attr.relation == rel && tuple.get(fp.attr.column) != &fp.value {
                return false;
            }
        }
        if check_conds {
            for &(i, c) in &self.conds_by_rel[rel] {
                let col = self.t.cond_templates()[i].attr.column;
                if !c.matches(tuple.get(col)) {
                    return false;
                }
            }
        }
        true
    }

    /// Emit the expanded-layout tuple for a full binding. Only redundant
    /// (cyclic) join edges are re-checked — the spanning edges were
    /// enforced by the probes that built the binding. The per-column
    /// `Value` clone here is the query's single materialization point:
    /// the values move into the output tuple, which is then shared as
    /// `Arc<Tuple>` all the way through store and outcome.
    fn emit(&mut self, bindings: &[Option<&Tuple>]) {
        for &ji in &self.redundant {
            let j = &self.t.joins()[ji];
            let l = bindings[j.left.relation].expect("bound").get(j.left.column);
            let r = bindings[j.right.relation]
                .expect("bound")
                .get(j.right.column);
            if l != r {
                return;
            }
        }
        let values: Vec<Value> = self
            .t
            .expanded_list()
            .iter()
            .map(|a| bindings[a.relation].expect("bound").get(a.column).clone())
            .collect();
        self.out.push(Arc::new(Tuple::new(values)));
        self.stats.results += 1;
    }

    /// Account one examined tuple against the budget and the per-row
    /// fault site. Returns `false` (with `self.abort` set) when execution
    /// must stop; loops at every depth check `abort` and unwind.
    fn tick(&mut self) -> bool {
        self.stats.tuples_examined += 1;
        if let Err(f) = pmv_faultinject::fire(Site::ExecRow) {
            self.abort = Some(QueryError::Fault(f.site.as_str().to_string()));
            return false;
        }
        if let Some(max) = self.budget.max_tuples {
            if self.stats.tuples_examined as u64 > max {
                self.abort = Some(QueryError::Budget(BudgetExceeded::Tuples));
                return false;
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self
                .stats
                .tuples_examined
                .is_multiple_of(DEADLINE_CHECK_STRIDE)
                && std::time::Instant::now() >= deadline
            {
                self.abort = Some(QueryError::Budget(BudgetExceeded::Deadline));
                return false;
            }
        }
        true
    }
}

/// Unwrap executor output for callers that want owned tuples. Each `Arc`
/// has refcount 1 here, so `try_unwrap` moves the tuple out without
/// copying.
fn unarc(v: Vec<Arc<Tuple>>) -> Vec<Tuple> {
    v.into_iter()
        .map(|t| Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone()))
        .collect()
}

/// Execute `q` with index nested loops, returning `Ls'`-layout result
/// tuples and execution stats.
pub fn execute<V: DataView>(view: &V, q: &QueryInstance) -> Result<(Vec<Tuple>, ExecStats)> {
    execute_bounded(view, q, ExecBudget::UNLIMITED)
}

/// [`execute`] under a resource budget. Aborts with
/// [`QueryError::Budget`] as soon as the deadline passes or the tuple cap
/// is hit; any partially-built output is discarded (the PMV serving path
/// falls back to its cached partials instead).
pub fn execute_bounded<V: DataView>(
    view: &V,
    q: &QueryInstance,
    budget: ExecBudget,
) -> Result<(Vec<Tuple>, ExecStats)> {
    let (out, stats) = execute_bounded_arc(view, q, budget)?;
    Ok((unarc(out), stats))
}

/// [`execute_bounded`] returning shared tuples — the PMV serving path's
/// entry point. Results flow as `Arc<Tuple>` into the store, the DS
/// multiset, and the query outcome without ever being deep-copied.
pub fn execute_bounded_arc<V: DataView>(
    view: &V,
    q: &QueryInstance,
    budget: ExecBudget,
) -> Result<(Vec<Arc<Tuple>>, ExecStats)> {
    let t = q.template().as_ref();
    execute_with_conditions(view, t, q.conds(), true, budget)
}

/// Targeted upquery: recompute exactly one bcp's result slice with a
/// bounded, keyed execution — the partial-state repair primitive. `q`
/// must be the single-bcp instance built by
/// `PartialViewDef::bcp_query`, so the drive-side index probe keys the
/// scan to the bcp's condition values and the cost is the slice's
/// fanout, not the relation. Semantically identical to
/// [`execute_bounded_arc`] plus its own fault-injection site
/// ([`Site::Upquery`]): refills must be breakable independently of full
/// O3 runs.
pub fn upquery_fill<V: DataView>(
    view: &V,
    q: &QueryInstance,
    budget: ExecBudget,
) -> Result<(Vec<Arc<Tuple>>, ExecStats)> {
    if let Err(f) = pmv_faultinject::fire(Site::Upquery) {
        return Err(QueryError::Fault(f.site.as_str().to_string()));
    }
    execute_bounded_arc(view, q, budget)
}

/// Core of [`execute`], also reused by [`join_from`] with selection
/// conditions disabled.
fn execute_with_conditions<V: DataView>(
    view: &V,
    t: &QueryTemplate,
    conds: &[Condition],
    check_conds: bool,
    budget: ExecBudget,
) -> Result<(Vec<Arc<Tuple>>, ExecStats)> {
    if let Err(f) = pmv_faultinject::fire(Site::ExecStart) {
        return Err(QueryError::Fault(f.site.as_str().to_string()));
    }
    let n = t.relations().len();
    let mut conds_by_rel: Vec<Vec<(usize, &Condition)>> = vec![Vec::new(); n];
    for (i, c) in conds.iter().enumerate() {
        conds_by_rel[t.cond_templates()[i].attr.relation].push((i, c));
    }
    let (drive, drive_cond) = if check_conds && !conds.is_empty() {
        choose_drive(view, t, conds)
    } else {
        (0, None)
    };

    let steps = plan_join_order(t, drive);
    // Resolve every relation version and index handle now; from here on
    // execution reads immutable data only — no locks, no view access.
    let r = resolve(view, t, &steps, drive, drive_cond)?;
    let redundant = redundant_joins(t, &steps);
    let mut ctx = ExecCtx {
        t,
        conds_by_rel,
        redundant,
        stats: ExecStats::default(),
        out: Vec::new(),
        budget,
        abort: None,
    };

    // Fetch driving-relation candidate rows.
    let candidates = driving_candidates(&mut ctx, &r, drive, drive_cond);

    let mut bindings: Vec<Option<&Tuple>> = vec![None; n];
    for row in candidates {
        if ctx.abort.is_some() {
            break;
        }
        let Some(tuple) = r.rels[drive].get(row) else {
            continue;
        };
        if !ctx.tick() {
            break;
        }
        if !ctx.local_predicates_hold(drive, tuple, check_conds) {
            continue;
        }
        bindings[drive] = Some(tuple);
        bind_remaining(&mut ctx, &r, &steps, 0, &mut bindings, check_conds);
        bindings[drive] = None;
    }

    if let Some(err) = ctx.abort.take() {
        return Err(err);
    }
    let stats = ctx.stats;
    Ok((ctx.out, stats))
}

/// Candidate row ids for the driving relation: through an index on the
/// first condition's attribute when possible, else one full scan.
fn driving_candidates(
    ctx: &mut ExecCtx<'_>,
    r: &Resolved,
    drive: usize,
    drive_cond: Option<usize>,
) -> Vec<RowId> {
    if let (Some(ci), Some(idx)) = (drive_cond, r.drive_index.as_deref()) {
        let cond = ctx.conds_by_rel[drive]
            .iter()
            .find(|(i, _)| *i == ci)
            .map(|(_, c)| *c);
        if let Some(cond) = cond {
            match cond {
                Condition::Equality(values) => {
                    let mut rows = Vec::new();
                    for v in values {
                        ctx.stats.index_probes += 1;
                        // Borrowed probe: no IndexKey materialized, no
                        // Value clone, posting list borrowed in place.
                        rows.extend_from_slice(idx.probe(std::slice::from_ref(v)));
                    }
                    return rows;
                }
                Condition::Intervals(intervals) => {
                    // Try index range scans; an unordered (hash)
                    // index refuses with a typed error, and we
                    // degrade to the fallback heap scan below.
                    let mut rows = Vec::new();
                    let mut refused = false;
                    for iv in intervals {
                        let lo = ref_bound_to_key(&iv.lo);
                        let hi = ref_bound_to_key(&iv.hi);
                        match idx.range(as_key_bound(&lo), as_key_bound(&hi)) {
                            Ok(postings) => {
                                ctx.stats.range_scans += 1;
                                for (_, posting) in postings {
                                    rows.extend_from_slice(&posting);
                                }
                            }
                            Err(pmv_index::IndexError::RangeOnHashIndex) => {
                                refused = true;
                                break;
                            }
                        }
                    }
                    if !refused {
                        return rows;
                    }
                }
            }
        }
    }
    // No applicable index: scan once.
    ctx.stats.fallback_scans += 1;
    r.rels[drive].iter().map(|(row, _)| row).collect()
}

/// Estimate rows matching a set of intervals on `col` using the
/// column's observed [min, max] span (uniformity assumption). Intervals
/// with unbounded or non-integer endpoints fall back to charging 10% of
/// the relation each.
fn estimate_interval_rows(
    rs: &crate::table_stats::RelationStats,
    col: usize,
    intervals: &[crate::condition::Interval],
) -> f64 {
    use std::ops::Bound;
    let fallback = intervals.len() as f64 * rs.rows as f64 * 0.1;
    let span = match (&rs.columns[col].min, &rs.columns[col].max) {
        (Some(Value::Int(lo)), Some(Value::Int(hi))) if hi > lo => (*lo, *hi),
        _ => return fallback,
    };
    let width = (span.1 - span.0) as f64;
    let mut est = 0.0f64;
    for iv in intervals {
        let lo = match &iv.lo {
            Bound::Included(Value::Int(v)) | Bound::Excluded(Value::Int(v)) => *v,
            Bound::Unbounded => span.0,
            _ => return fallback,
        };
        let hi = match &iv.hi {
            Bound::Included(Value::Int(v)) | Bound::Excluded(Value::Int(v)) => *v,
            Bound::Unbounded => span.1,
            _ => return fallback,
        };
        est += match &rs.columns[col].histogram {
            // Equi-depth histogram: accurate under skew.
            Some(h) => h.estimate_range_rows(lo, hi),
            // Uniformity over [min, max] otherwise.
            None => {
                let covered = ((hi.min(span.1) - lo.max(span.0)).max(0)) as f64;
                rs.rows as f64 * (covered / width).min(1.0)
            }
        };
    }
    est.min(rs.rows as f64)
}

/// Pick the driving condition: without statistics, the first condition
/// (the paper's plans drive from the first selection); with statistics
/// (after `Database::analyze`), the condition with the lowest
/// estimated candidate-row count, preferring indexed attributes.
fn choose_drive<V: DataView>(
    view: &V,
    t: &QueryTemplate,
    conds: &[Condition],
) -> (usize, Option<usize>) {
    let default = (t.cond_templates()[0].attr.relation, Some(0));
    let Some(stats) = view.stats_view() else {
        return default;
    };
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in conds.iter().enumerate() {
        let attr = t.cond_templates()[i].attr;
        let rel_name = &t.relations()[attr.relation];
        let Some(rs) = stats.relation(rel_name) else {
            continue;
        };
        let indexed = view.index_arc(rel_name, &[attr.column]).is_some();
        let est = if !indexed {
            // Driving an unindexed condition scans the whole relation.
            rs.rows as f64
        } else {
            match c {
                Condition::Equality(vs) => vs.len() as f64 * rs.eq_selectivity_rows(attr.column),
                Condition::Intervals(ivs) => estimate_interval_rows(rs, attr.column, ivs),
            }
        };
        if best.is_none_or(|(_, b)| est < b) {
            best = Some((i, est));
        }
    }
    match best {
        Some((i, _)) => (t.cond_templates()[i].attr.relation, Some(i)),
        None => default,
    }
}

fn ref_bound_to_key(b: &std::ops::Bound<Value>) -> std::ops::Bound<IndexKey> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(IndexKey::single(v.clone())),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(IndexKey::single(v.clone())),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}

fn as_key_bound(b: &std::ops::Bound<IndexKey>) -> std::ops::Bound<&IndexKey> {
    match b {
        std::ops::Bound::Included(k) => std::ops::Bound::Included(k),
        std::ops::Bound::Excluded(k) => std::ops::Bound::Excluded(k),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}

/// Bind `tuple` at `steps[depth]` and recurse; shared tail of the index
/// and fallback arms of [`bind_remaining`]. Returns `false` when
/// execution must unwind (`ctx.abort` set).
fn bind_tuple<'g>(
    ctx: &mut ExecCtx<'_>,
    r: &'g Resolved,
    steps: &[JoinStep],
    depth: usize,
    bindings: &mut Vec<Option<&'g Tuple>>,
    check_conds: bool,
    tuple: &'g Tuple,
) -> bool {
    let step = &steps[depth];
    if !ctx.tick() {
        return false;
    }
    if !ctx.local_predicates_hold(step.new_rel, tuple, check_conds) {
        return true;
    }
    bindings[step.new_rel] = Some(tuple);
    bind_remaining(ctx, r, steps, depth + 1, bindings, check_conds);
    bindings[step.new_rel] = None;
    ctx.abort.is_none()
}

/// Recursively bind the remaining relations along the join steps.
///
/// Zero-copy inner loop: the probe value is borrowed from the bound
/// tuple, the posting list is a borrowed slice out of the pre-resolved
/// index `Arc`, and the fallback path iterates the relation version
/// directly — no `to_vec`, no per-probe clone of anything.
fn bind_remaining<'g>(
    ctx: &mut ExecCtx<'_>,
    r: &'g Resolved,
    steps: &[JoinStep],
    depth: usize,
    bindings: &mut Vec<Option<&'g Tuple>>,
    check_conds: bool,
) {
    if depth == steps.len() {
        ctx.emit(bindings);
        return;
    }
    let step = &steps[depth];
    let bound: &'g Tuple = bindings[step.bound_attr.relation].expect("bound side of join step");
    let probe_value: &'g Value = bound.get(step.bound_attr.column);

    match &r.step_indexes[depth] {
        Some(idx) => {
            ctx.stats.index_probes += 1;
            let rows: &[RowId] = idx.probe(std::slice::from_ref(probe_value));
            for &row in rows {
                if ctx.abort.is_some() {
                    return;
                }
                let Some(tuple) = r.rels[step.new_rel].get(row) else {
                    continue;
                };
                if tuple.get(step.new_attr.column) != probe_value {
                    continue; // stale posting; keep safe
                }
                if !bind_tuple(ctx, r, steps, depth, bindings, check_conds, tuple) {
                    return;
                }
            }
        }
        None => {
            ctx.stats.fallback_scans += 1;
            for (_, tuple) in r.rels[step.new_rel].iter() {
                if ctx.abort.is_some() {
                    return;
                }
                if tuple.get(step.new_attr.column) != probe_value {
                    continue;
                }
                if !bind_tuple(ctx, r, steps, depth, bindings, check_conds, tuple) {
                    return;
                }
            }
        }
    }
}

/// Human-readable plan description: driving relation and access method,
/// then each join step with its probe method — the shape a PostgreSQL
/// EXPLAIN would print for the paper's index-nested-loop plans.
pub fn explain<V: DataView>(view: &V, q: &QueryInstance) -> String {
    let t = q.template().as_ref();
    let drive = t.cond_templates()[0].attr.relation;
    let drive_name = &t.relations()[drive];
    let drive_col = t.cond_templates()[0].attr.column;
    let mut out = String::new();
    let access = match (q.conds().first(), view.index_arc(drive_name, &[drive_col])) {
        (Some(Condition::Equality(vs)), Some(_)) => {
            format!(
                "index probes on {}.{} ({} disjuncts)",
                drive_name,
                t.schema(drive).column(drive_col).name,
                vs.len()
            )
        }
        (Some(Condition::Intervals(ivs)), Some(idx)) if idx.supports_range() => {
            format!(
                "index range scans on {}.{} ({} intervals)",
                drive_name,
                t.schema(drive).column(drive_col).name,
                ivs.len()
            )
        }
        _ => format!("sequential scan of {drive_name}"),
    };
    out.push_str(&format!("drive: {drive_name} via {access}\n"));
    for step in plan_join_order(t, drive) {
        let rel_name = &t.relations()[step.new_rel];
        let col_name = t
            .schema(step.new_rel)
            .column(step.new_attr.column)
            .name
            .clone();
        let bound_rel = &t.relations()[step.bound_attr.relation];
        let bound_col = t
            .schema(step.bound_attr.relation)
            .column(step.bound_attr.column)
            .name
            .clone();
        let method = if view.index_arc(rel_name, &[step.new_attr.column]).is_some() {
            "index probe"
        } else {
            "sequential scan"
        };
        out.push_str(&format!(
            "join: {rel_name}.{col_name} = {bound_rel}.{bound_col} via {method}\n"
        ));
    }
    out.push_str(&format!(
        "project: {} columns (Ls' = {})\n",
        t.select_list().len(),
        t.expanded_list().len()
    ));
    out
}

/// Materialize the template's containing view `V_M`: the join under
/// `Cjoin` alone (no selection conditions), in `Ls'` layout. This is what
/// a traditional MV for the template stores (the paper's Figure 2).
pub fn full_join<V: DataView>(view: &V, t: &QueryTemplate) -> Result<(Vec<Tuple>, ExecStats)> {
    let (out, stats) = execute_with_conditions(view, t, &[], false, ExecBudget::UNLIMITED)?;
    Ok((unarc(out), stats))
}

/// Naive nested-loop oracle: cross product with predicate evaluation.
/// Exponential in relation sizes — tests only.
pub fn execute_scan<V: DataView>(view: &V, q: &QueryInstance) -> Result<Vec<Tuple>> {
    let t = q.template().as_ref();
    let n = t.relations().len();
    let rels: Vec<Arc<HeapRelation>> = t
        .relations()
        .iter()
        .map(|name| view.relation_version(name))
        .collect::<Result<_>>()?;
    let mut out = Vec::new();
    let mut bindings: Vec<Option<&Tuple>> = vec![None; n];
    scan_rec(t, q, &rels, 0, &mut bindings, &mut out);
    Ok(out)
}

fn scan_rec<'a>(
    t: &QueryTemplate,
    q: &QueryInstance,
    rels: &'a [Arc<HeapRelation>],
    rel: usize,
    bindings: &mut Vec<Option<&'a Tuple>>,
    out: &mut Vec<Tuple>,
) {
    if rel == rels.len() {
        // All bound: evaluate Cjoin ∧ Cselect.
        for j in t.joins() {
            let l = bindings[j.left.relation].unwrap().get(j.left.column);
            let r = bindings[j.right.relation].unwrap().get(j.right.column);
            if l != r {
                return;
            }
        }
        for fp in t.fixed_preds() {
            if bindings[fp.attr.relation].unwrap().get(fp.attr.column) != &fp.value {
                return;
            }
        }
        for (i, c) in q.conds().iter().enumerate() {
            let attr = t.cond_templates()[i].attr;
            if !c.matches(bindings[attr.relation].unwrap().get(attr.column)) {
                return;
            }
        }
        let values: Vec<Value> = t
            .expanded_list()
            .iter()
            .map(|a| bindings[a.relation].unwrap().get(a.column).clone())
            .collect();
        out.push(Tuple::new(values));
        return;
    }
    for (_, tuple) in rels[rel].iter() {
        bindings[rel] = Some(tuple);
        scan_rec(t, q, rels, rel + 1, bindings, out);
    }
    bindings[rel] = None;
}

/// Join a single (possibly already-deleted) tuple of relation `rel_idx`
/// with all other template relations under `Cjoin` only, returning
/// `Ls'`-layout join results. This is the `ΔR_i ⋈ R_j (j ≠ i)` computation
/// of the paper's delete/update maintenance (Section 3.4).
pub fn join_from<V: DataView>(
    view: &V,
    t: &QueryTemplate,
    rel_idx: usize,
    tuple: &Tuple,
) -> Result<Vec<Tuple>> {
    let n = t.relations().len();
    if let Err(f) = pmv_faultinject::fire(Site::MaintJoin) {
        return Err(QueryError::Fault(f.site.as_str().to_string()));
    }
    // Fixed predicates on the delta tuple's own relation must hold, or the
    // tuple can never appear in a view row.
    for fp in t.fixed_preds() {
        if fp.attr.relation == rel_idx && tuple.get(fp.attr.column) != &fp.value {
            return Ok(Vec::new());
        }
    }
    let steps = plan_join_order(t, rel_idx);
    let r = resolve(view, t, &steps, rel_idx, None)?;
    let redundant = redundant_joins(t, &steps);
    let mut ctx = ExecCtx {
        t,
        conds_by_rel: vec![Vec::new(); n],
        redundant,
        stats: ExecStats::default(),
        out: Vec::new(),
        budget: ExecBudget::UNLIMITED,
        abort: None,
    };
    let mut bindings: Vec<Option<&Tuple>> = vec![None; n];
    bindings[rel_idx] = Some(tuple);
    bind_remaining(&mut ctx, &r, &steps, 0, &mut bindings, false);
    if let Some(err) = ctx.abort.take() {
        return Err(err);
    }
    Ok(unarc(ctx.out))
}

/// [`join_from`] with *several* relations pre-bound to (already-deleted)
/// tuples: the cross-delta maintenance pass. A transaction deleting
/// matching tuples from two base relations leaves derivations that no
/// single-relation `ΔR_i ⋈ R_j` can see (each join reads the others'
/// deletions already applied); binding every deleted tuple explicitly
/// and scanning only the remaining relations from the current view
/// recovers exactly those combinations. Returns `Ls'`-layout rows under
/// `Cjoin` (no selection conditions), like `join_from`.
pub fn join_fixed<V: DataView>(
    view: &V,
    t: &QueryTemplate,
    fixed: &[(usize, &Tuple)],
) -> Result<Vec<Tuple>> {
    let n = t.relations().len();
    if let Err(f) = pmv_faultinject::fire(Site::MaintJoin) {
        return Err(QueryError::Fault(f.site.as_str().to_string()));
    }
    let mut bindings: Vec<Option<&Tuple>> = vec![None; n];
    for &(rel, tuple) in fixed {
        debug_assert!(bindings[rel].is_none(), "relation {rel} bound twice");
        bindings[rel] = Some(tuple);
    }
    // Fixed predicates on bound relations must hold, or no view row can
    // contain this combination.
    for fp in t.fixed_preds() {
        if let Some(b) = bindings[fp.attr.relation] {
            if b.get(fp.attr.column) != &fp.value {
                return Ok(Vec::new());
            }
        }
    }
    // Join conditions with both sides bound prune the combination
    // before any scan.
    for j in t.joins() {
        if let (Some(l), Some(r)) = (bindings[j.left.relation], bindings[j.right.relation]) {
            if l.get(j.left.column) != r.get(j.right.column) {
                return Ok(Vec::new());
            }
        }
    }
    let unbound: Vec<usize> = (0..n).filter(|&i| bindings[i].is_none()).collect();
    let rels: Vec<Arc<HeapRelation>> = unbound
        .iter()
        .map(|&i| view.relation_version(&t.relations()[i]))
        .collect::<Result<_>>()?;
    let mut out = Vec::new();
    fixed_rec(t, &unbound, &rels, 0, &mut bindings, &mut out);
    Ok(out)
}

fn fixed_rec<'a>(
    t: &QueryTemplate,
    unbound: &[usize],
    rels: &'a [Arc<HeapRelation>],
    depth: usize,
    bindings: &mut Vec<Option<&'a Tuple>>,
    out: &mut Vec<Tuple>,
) {
    if depth == unbound.len() {
        // All bound: Cjoin ∧ fixed preds (no Cselect — maintenance sees
        // every cached bcp).
        for j in t.joins() {
            let l = bindings[j.left.relation].unwrap().get(j.left.column);
            let r = bindings[j.right.relation].unwrap().get(j.right.column);
            if l != r {
                return;
            }
        }
        for fp in t.fixed_preds() {
            if bindings[fp.attr.relation].unwrap().get(fp.attr.column) != &fp.value {
                return;
            }
        }
        let values: Vec<Value> = t
            .expanded_list()
            .iter()
            .map(|a| bindings[a.relation].unwrap().get(a.column).clone())
            .collect();
        out.push(Tuple::new(values));
        return;
    }
    let rel = unbound[depth];
    'rows: for (_, tuple) in rels[depth].iter() {
        // Prune: join conditions fully bound once `rel` is set.
        for j in t.joins() {
            let (this, other) = if j.left.relation == rel {
                (j.left, j.right)
            } else if j.right.relation == rel {
                (j.right, j.left)
            } else {
                continue;
            };
            if let Some(b) = bindings[other.relation] {
                if tuple.get(this.column) != b.get(other.column) {
                    continue 'rows;
                }
            }
        }
        bindings[rel] = Some(tuple);
        fixed_rec(t, unbound, rels, depth + 1, bindings, out);
    }
    bindings[rel] = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Interval;
    use crate::template::TemplateBuilder;
    use pmv_index::IndexDef;
    use pmv_storage::{tuple, Column, ColumnType, Schema};
    use std::sync::Arc;

    /// Two-relation database shaped like the paper's Figure 3 example:
    /// R(a, c, f), S(d, e, g), join on R.c = S.d.
    fn setup() -> (Database, Arc<QueryTemplate>) {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("c", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(Schema::new(
            "s",
            vec![
                Column::new("d", ColumnType::Int),
                Column::new("e", ColumnType::Int),
                Column::new("g", ColumnType::Int),
            ],
        ))
        .unwrap();
        // Figure 3 data.
        db.load(
            "r",
            vec![
                tuple![1i64, 4i64, 1i64],
                tuple![1i64, 5i64, 1i64],
                tuple![7i64, 6i64, 3i64],
            ],
        )
        .unwrap();
        db.load(
            "s",
            vec![
                tuple![4i64, 2i64, 7i64],
                tuple![5i64, 2i64, 7i64],
                tuple![6i64, 8i64, 9i64],
            ],
        )
        .unwrap();
        db.create_index(IndexDef::btree("r", vec![2])).unwrap(); // R.f
        db.create_index(IndexDef::btree("s", vec![0])).unwrap(); // S.d
        db.create_index(IndexDef::btree("s", vec![2])).unwrap(); // S.g
        let t = TemplateBuilder::new("Eqt")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d")
            .unwrap()
            .select("r", "a")
            .unwrap()
            .select("s", "e")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .cond_eq("s", "g")
            .unwrap()
            .build()
            .unwrap();
        (db, t)
    }

    #[test]
    fn indexed_matches_figure3_mv() {
        let (db, t) = setup();
        // Query all hot/cold pairs: f in {1,3}, g in {7,9}: the containing
        // MV of Figure 3 has rows (1,2,1,7) x2 and (7,8,3,9).
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(1), Value::Int(3)]),
                Condition::Equality(vec![Value::Int(7), Value::Int(9)]),
            ])
            .unwrap();
        let (mut rows, stats) = execute(&db, &q).unwrap();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                tuple![1i64, 2i64, 1i64, 7i64],
                tuple![1i64, 2i64, 1i64, 7i64],
                tuple![7i64, 8i64, 3i64, 9i64],
            ]
        );
        assert!(stats.index_probes > 0);
        assert_eq!(stats.fallback_scans, 0);
        assert_eq!(stats.results, 3);
    }

    #[test]
    fn snapshot_executes_identically_to_live_database() {
        let (db, t) = setup();
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(1), Value::Int(3)]),
                Condition::Equality(vec![Value::Int(7), Value::Int(9)]),
            ])
            .unwrap();
        let snap = db.snapshot();
        let (mut live, live_stats) = execute(&db, &q).unwrap();
        let (mut snapped, snap_stats) = execute(&snap, &q).unwrap();
        live.sort();
        snapped.sort();
        assert_eq!(live, snapped);
        assert_eq!(live_stats, snap_stats, "same plan on either view");
    }

    #[test]
    fn indexed_equals_scan_oracle() {
        let (db, t) = setup();
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(1)]),
                Condition::Equality(vec![Value::Int(7)]),
            ])
            .unwrap();
        let (mut indexed, _) = execute(&db, &q).unwrap();
        let mut scanned = execute_scan(&db, &q).unwrap();
        indexed.sort();
        scanned.sort();
        assert_eq!(indexed, scanned);
        assert_eq!(indexed.len(), 2); // duplicate result tuples preserved
    }

    #[test]
    fn interval_condition_uses_range_scan() {
        let (db, t0) = setup();
        drop(t0);
        let t = TemplateBuilder::new("iv")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d")
            .unwrap()
            .select("r", "a")
            .unwrap()
            .cond_interval("r", "f")
            .unwrap()
            .build()
            .unwrap();
        let q = t
            .bind(vec![Condition::Intervals(vec![Interval::closed(
                1i64, 2i64,
            )])])
            .unwrap();
        let (rows, stats) = execute(&db, &q).unwrap();
        assert_eq!(rows.len(), 2); // both R.f=1 tuples join
        assert_eq!(stats.range_scans, 1);
    }

    #[test]
    fn interval_on_hash_index_falls_back_to_scan() {
        // A hash index on the interval column: the executor must not
        // panic (the seed behavior) but degrade to a heap scan and still
        // produce correct results.
        let (db, _) = setup();
        let t = TemplateBuilder::new("iv_hash")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d")
            .unwrap()
            .select("r", "a")
            .unwrap()
            .cond_interval("r", "a") // r.a: about to get a hash index only
            .unwrap()
            .build()
            .unwrap();
        let mut db = db;
        db.create_index(IndexDef::hash("r", vec![0])).unwrap();
        let q = t
            .bind(vec![Condition::Intervals(vec![Interval::closed(
                1i64, 6i64,
            )])])
            .unwrap();
        let (rows, stats) = execute(&db, &q).unwrap();
        assert_eq!(rows.len(), 2); // both a=1 rows join (a=7 excluded)
        assert_eq!(stats.range_scans, 0, "hash index cannot range scan");
        assert!(stats.fallback_scans >= 1, "must fall back to heap scan");
        let mut scanned = execute_scan(&db, &q).unwrap();
        let mut indexed = rows;
        indexed.sort();
        scanned.sort();
        assert_eq!(indexed, scanned);
    }

    #[test]
    fn fallback_scan_without_index() {
        let (db, _) = setup();
        // Condition on an unindexed attribute (r.a).
        let t = TemplateBuilder::new("noidx")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d")
            .unwrap()
            .select("s", "e")
            .unwrap()
            .cond_eq("r", "a")
            .unwrap()
            .build()
            .unwrap();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(7)])])
            .unwrap();
        let (rows, stats) = execute(&db, &q).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(stats.fallback_scans >= 1);
    }

    #[test]
    fn fixed_predicates_filter() {
        let (db, _) = setup();
        let t = TemplateBuilder::new("fixed")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d")
            .unwrap()
            .fixed("s", "e", 8i64)
            .unwrap()
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap();
        let q = t
            .bind(vec![Condition::Equality(vec![
                Value::Int(1),
                Value::Int(3),
            ])])
            .unwrap();
        let (rows, _) = execute(&db, &q).unwrap();
        // Only the (7,6,3)⋈(6,8,9) combination has s.e=8.
        assert_eq!(rows, vec![tuple![7i64, 3i64]]);
    }

    #[test]
    fn join_from_computes_delta_join() {
        let (db, t) = setup();
        // Pretend tuple (9, 4, 2) was just deleted from R: joins S.d=4.
        let deleted = tuple![9i64, 4i64, 2i64];
        let rows = join_from(&db, &t, 0, &deleted).unwrap();
        assert_eq!(rows, vec![tuple![9i64, 2i64, 2i64, 7i64]]);
        // From the S side: deleting (5, 2, 7) joins both R.c=5 rows.
        let deleted_s = tuple![5i64, 2i64, 7i64];
        let rows = join_from(&db, &t, 1, &deleted_s).unwrap();
        assert_eq!(rows.len(), 1); // only (1,5,1) has c=5
        assert_eq!(rows[0], tuple![1i64, 2i64, 1i64, 7i64]);
    }

    #[test]
    fn single_relation_template_works() {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "only",
            vec![
                Column::new("k", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.load("only", (0..10i64).map(|i| tuple![i, i * 10]))
            .unwrap();
        db.create_index(IndexDef::hash("only", vec![0])).unwrap();
        let t = TemplateBuilder::new("single")
            .relation(db.schema("only").unwrap())
            .select_star()
            .cond_eq("only", "k")
            .unwrap()
            .build()
            .unwrap();
        let q = t
            .bind(vec![Condition::Equality(vec![
                Value::Int(3),
                Value::Int(7),
            ])])
            .unwrap();
        let (mut rows, stats) = execute(&db, &q).unwrap();
        rows.sort();
        assert_eq!(rows, vec![tuple![3i64, 30i64], tuple![7i64, 70i64]]);
        assert_eq!(stats.index_probes, 2);
    }

    #[test]
    fn empty_disjuncts_yield_empty_results() {
        let (db, t) = setup();
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(999)]),
                Condition::Equality(vec![Value::Int(7)]),
            ])
            .unwrap();
        let (rows, _) = execute(&db, &q).unwrap();
        assert!(rows.is_empty());
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use crate::condition::Condition;
    use crate::template::TemplateBuilder;
    use pmv_index::IndexDef;
    use pmv_storage::{Column, ColumnType, Schema, Value};

    #[test]
    fn explain_names_access_methods() {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("c", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(Schema::new("s", vec![Column::new("d", ColumnType::Int)]))
            .unwrap();
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        let t = TemplateBuilder::new("e")
            .relation(db.schema("r").unwrap())
            .relation(db.schema("s").unwrap())
            .join("r", "c", "s", "d")
            .unwrap()
            .select("s", "d")
            .unwrap()
            .cond_eq("r", "a")
            .unwrap()
            .build()
            .unwrap();
        let q = t
            .bind(vec![Condition::Equality(vec![
                Value::Int(1),
                Value::Int(2),
            ])])
            .unwrap();
        let plan = explain(&db, &q);
        assert!(
            plan.contains("drive: r via index probes on r.a (2 disjuncts)"),
            "{plan}"
        );
        // No index on s.d: sequential scan.
        assert!(
            plan.contains("join: s.d = r.c via sequential scan"),
            "{plan}"
        );
        db.create_index(IndexDef::btree("s", vec![0])).unwrap();
        let plan = explain(&db, &q);
        assert!(plan.contains("join: s.d = r.c via index probe"), "{plan}");
        assert!(plan.contains("project: 1 columns"), "{plan}");
    }

    #[test]
    fn explain_shows_seq_scan_without_index() {
        let mut db = Database::new();
        db.create_relation(Schema::new("r", vec![Column::new("a", ColumnType::Int)]))
            .unwrap();
        let t = TemplateBuilder::new("e2")
            .relation(db.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "a")
            .unwrap()
            .build()
            .unwrap();
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(1)])])
            .unwrap();
        let plan = explain(&db, &q);
        assert!(plan.contains("sequential scan of r"), "{plan}");
    }
}

#[cfg(test)]
mod drive_choice_tests {
    use super::*;
    use crate::condition::Condition;
    use crate::template::TemplateBuilder;
    use pmv_index::IndexDef;
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

    /// r(k, j) has 1000 rows with high-cardinality k; s(j, g) has 1000
    /// rows with only 2 distinct g. Condition 0 is the *bad* drive
    /// (g: 500 rows/disjunct), condition 1 the good one (k: 1 row).
    fn setup() -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("k", ColumnType::Int),
                Column::new("j", ColumnType::Int),
            ],
        ))
        .unwrap();
        db.create_relation(Schema::new(
            "s",
            vec![
                Column::new("j", ColumnType::Int),
                Column::new("g", ColumnType::Int),
            ],
        ))
        .unwrap();
        for i in 0..1000i64 {
            db.insert("r", tuple![i, i]).unwrap();
            db.insert("s", tuple![i, i % 2]).unwrap();
        }
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        db.create_index(IndexDef::btree("r", vec![1])).unwrap();
        db.create_index(IndexDef::btree("s", vec![0])).unwrap();
        db.create_index(IndexDef::btree("s", vec![1])).unwrap();
        db
    }

    fn template(db: &Database) -> std::sync::Arc<QueryTemplate> {
        TemplateBuilder::new("d")
            .relation(db.schema("s").unwrap())
            .relation(db.schema("r").unwrap())
            .join("s", "j", "r", "j")
            .unwrap()
            .select("r", "k")
            .unwrap()
            .cond_eq("s", "g") // condition 0: unselective
            .unwrap()
            .cond_eq("r", "k") // condition 1: selective
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn stats_pick_the_selective_drive() {
        let mut db = setup();
        let t = template(&db);
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(0)]),
                Condition::Equality(vec![Value::Int(7)]),
            ])
            .unwrap();
        // Without stats: drives condition 0 (s.g = 0 → 500 candidates).
        let (mut rows_a, stats_a) = execute(&db, &q).unwrap();
        // With stats: drives condition 1 (r.k = 7 → 1 candidate).
        db.analyze().unwrap();
        let (mut rows_b, stats_b) = execute(&db, &q).unwrap();
        rows_a.sort();
        rows_b.sort();
        assert_eq!(rows_a, rows_b, "plans must agree on the answer");
        assert!(
            stats_b.tuples_examined * 10 < stats_a.tuples_examined,
            "stats-chosen drive must examine far fewer tuples: {} vs {}",
            stats_b.tuples_examined,
            stats_a.tuples_examined
        );
    }

    #[test]
    fn stats_do_not_change_results_across_workload() {
        let mut db = setup();
        let t = template(&db);
        db.analyze().unwrap();
        for g in 0..2i64 {
            for k in [0i64, 250, 999] {
                let q = t
                    .bind(vec![
                        Condition::Equality(vec![Value::Int(g)]),
                        Condition::Equality(vec![Value::Int(k)]),
                    ])
                    .unwrap();
                let (mut fast, _) = execute(&db, &q).unwrap();
                let mut slow = execute_scan(&db, &q).unwrap();
                fast.sort();
                slow.sort();
                assert_eq!(fast, slow, "g={g} k={k}");
            }
        }
    }

    #[test]
    fn unindexed_condition_not_chosen_as_drive() {
        let mut db = setup();
        // Drop and rebuild: no index on r.k this time.
        let mut db2 = Database::new();
        db2.create_relation(db.schema("s").unwrap()).unwrap();
        db2.create_relation(db.schema("r").unwrap()).unwrap();
        for i in 0..1000i64 {
            db2.insert("r", tuple![i, i]).unwrap();
            db2.insert("s", tuple![i, i % 2]).unwrap();
        }
        db2.create_index(IndexDef::btree("s", vec![1])).unwrap();
        db2.create_index(IndexDef::btree("r", vec![1])).unwrap();
        db2.analyze().unwrap();
        let t = template(&db2);
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(0)]),
                Condition::Equality(vec![Value::Int(8)]), // k=8 → j=8 → g=0
            ])
            .unwrap();
        // r.k is unindexed → estimated at full relation size → condition
        // 0 (indexed, 500 rows) wins despite being unselective.
        let (rows, stats) = execute(&db2, &q).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(stats.fallback_scans, 0, "must not seq-scan the drive");
        let _ = db.analyze();
    }
}

#[cfg(test)]
mod interval_estimate_tests {
    use super::*;
    use crate::condition::{Condition, Interval};
    use crate::template::TemplateBuilder;
    use pmv_index::IndexDef;
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

    #[test]
    fn narrow_interval_drives_over_wide_equality() {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("x", ColumnType::Int), // 0..1000 uniform
                Column::new("y", ColumnType::Int), // 2 distinct values
            ],
        ))
        .unwrap();
        for i in 0..1000i64 {
            db.insert("r", tuple![i, i % 2]).unwrap();
        }
        db.create_index(IndexDef::btree("r", vec![0])).unwrap();
        db.create_index(IndexDef::btree("r", vec![1])).unwrap();
        db.analyze().unwrap();
        let t = TemplateBuilder::new("ie")
            .relation(db.schema("r").unwrap())
            .select("r", "x")
            .unwrap()
            .cond_eq("r", "y") // 500 rows per disjunct
            .unwrap()
            .cond_interval("r", "x") // narrow: ~10 rows
            .unwrap()
            .build()
            .unwrap();
        let q = t
            .bind(vec![
                Condition::Equality(vec![Value::Int(0)]),
                Condition::Intervals(vec![Interval::half_open(100i64, 110i64)]),
            ])
            .unwrap();
        let (rows, stats) = execute(&db, &q).unwrap();
        // x in [100,110) with even x: 5 rows.
        assert_eq!(rows.len(), 5);
        // The interval (est ~10 rows) must out-select the equality
        // (est 500): few tuples examined.
        assert!(
            stats.tuples_examined <= 20,
            "interval should drive; examined {}",
            stats.tuples_examined
        );
        assert_eq!(stats.range_scans, 1, "drive must use the range scan");
    }

    #[test]
    fn exec_stats_pairs_and_merge() {
        let mut a = ExecStats {
            index_probes: 2,
            tuples_examined: 10,
            results: 3,
            ..Default::default()
        };
        let pairs = a.as_pairs();
        assert_eq!(pairs[0], ("index_probes", 2));
        assert!(pairs.contains(&("results", 3)));
        a.merge(&ExecStats {
            index_probes: 1,
            range_scans: 4,
            fallback_scans: 1,
            tuples_examined: 5,
            results: 2,
        });
        assert_eq!(
            a,
            ExecStats {
                index_probes: 3,
                range_scans: 4,
                fallback_scans: 1,
                tuples_examined: 15,
                results: 5,
            }
        );
    }
}
