//! Per-function summaries and their transitive closure over the call
//! graph.
//!
//! Each function gets a bitmask of **direct facts** read straight off
//! its masked body text (the same textual patterns the file-local lint
//! uses), then a fixpoint propagates them backwards along call edges:
//! `reach(f) = direct(f) ∪ ⋃ reach(callee)`. One deliberate cut: when
//! pulling facts *through* a `wal::dio` function, [`RAW_FS`] is
//! dropped — dio is the sanctioned funnel, so reaching the filesystem
//! through it is exactly the contract, not a violation.

use crate::graph::Workspace;
use crate::lint::{find_all, prev_is_ident, statement_around, BLOCKING_ACQUIRES, FS_WRITE_APIS};

/// Acquires a blocking lock (`.read()` / `.write()` / `.lock()`;
/// `try_*` forms do not match).
pub const BLOCKING: u16 = 1 << 0;
/// Acquires a *shard* lock (a blocking acquire whose statement mentions
/// `shard`).
pub const SHARD_LOCK: u16 = 1 << 1;
/// Acquires the DB master lock (`db.read()` / `db.write()` with `db` as
/// a standalone receiver).
pub const DB_LOCK: u16 = 1 << 2;
/// Calls an executor entry point (`execute`, `execute_bounded`,
/// `execute_bounded_arc`, `execute_scan`, `join_from`, `join_fixed`,
/// `run_plain`, `upquery_fill`).
pub const EXEC: u16 = 1 << 3;
/// Touches a raw `std::fs` write API.
pub const RAW_FS: u16 = 1 << 4;
/// Reaches an fsync (`fsync(`/`fsync_dir(` call or a direct
/// `.sync_all()`/`.sync_data()`).
pub const FSYNC: u16 = 1 << 5;
/// Calls the exact-inverse rollback `undo_delta_exact`.
pub const UNDO: u16 = 1 << 6;

/// Executor entry-point *names* (the call patterns in
/// [`crate::lint::EXEC_CALLS`] minus the trailing paren).
pub const EXEC_NAMES: [&str; 8] = [
    "execute",
    "execute_bounded",
    "execute_bounded_arc",
    "execute_scan",
    "join_from",
    "join_fixed",
    "run_plain",
    "upquery_fill",
];

/// Summaries for every function in a [`Workspace`].
pub struct Summaries {
    /// Facts read directly off each function's body.
    pub direct: Vec<u16>,
    /// Transitive facts (direct ∪ callees', with the dio cut).
    pub reach: Vec<u16>,
    /// For each function, one example `(bit, offset)` witness per
    /// direct fact — used to point messages at the concrete site.
    pub witness: Vec<Vec<(u16, usize)>>,
}

impl Summaries {
    /// Compute direct facts and their fixpoint for `ws`.
    pub fn compute(ws: &Workspace) -> Summaries {
        let n = ws.fns.len();
        let mut direct = vec![0u16; n];
        let mut witness: Vec<Vec<(u16, usize)>> = vec![Vec::new(); n];
        for (id, f) in ws.fns.iter().enumerate() {
            let Some((open, close)) = f.body else {
                continue;
            };
            let masked = &ws.files[f.file].masked;
            let body = &masked[open..close.min(masked.len())];
            let mut hit = |bit: u16, rel: usize| {
                if direct[id] & bit == 0 {
                    witness[id].push((bit, open + rel));
                }
                direct[id] |= bit;
            };
            for acquire in BLOCKING_ACQUIRES {
                for pos in find_all(body, acquire) {
                    hit(BLOCKING, pos);
                    if acquire != ".lock()" {
                        let (_, stmt) = statement_around(masked, open + pos);
                        if stmt.contains("shard") {
                            hit(SHARD_LOCK, pos);
                        }
                    }
                }
            }
            for acquire in ["db.read()", "db.write()"] {
                for pos in find_all(body, acquire) {
                    if !prev_is_ident(body.as_bytes(), pos) {
                        hit(DB_LOCK, pos);
                    }
                }
            }
            for name in EXEC_NAMES {
                for pos in call_sites(body, name) {
                    hit(EXEC, pos);
                }
            }
            for api in FS_WRITE_APIS {
                for pos in find_all(body, api) {
                    hit(RAW_FS, pos);
                }
            }
            for pat in ["fsync(", "fsync_dir("] {
                for pos in call_sites(body, pat.trim_end_matches('(')) {
                    hit(FSYNC, pos);
                }
            }
            for pat in [".sync_all(", ".sync_data("] {
                for pos in find_all(body, pat) {
                    hit(FSYNC, pos);
                }
            }
            for pos in call_sites(body, "undo_delta_exact") {
                hit(UNDO, pos);
            }
        }

        // Fixpoint: naive iteration — the workspace graph is small
        // (a few thousand nodes) and its diameter bounds the rounds.
        let mut reach = direct.clone();
        loop {
            let mut changed = false;
            for (id, calls) in ws.fn_calls.iter().enumerate() {
                let mut acc = reach[id];
                for &c in calls {
                    for &t in &ws.calls[c].targets {
                        let mut bits = reach[t];
                        if ws.files[ws.fns[t].file].is_dio {
                            bits &= !RAW_FS;
                        }
                        acc |= bits;
                    }
                }
                if acc != reach[id] {
                    reach[id] = acc;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Summaries {
            direct,
            reach,
            witness,
        }
    }

    /// Effective reach of *calling into* `target`: the dio cut applied,
    /// as the fixpoint does for edges.
    pub fn reach_through(&self, ws: &Workspace, target: usize) -> u16 {
        let mut bits = self.reach[target];
        if ws.files[ws.fns[target].file].is_dio {
            bits &= !RAW_FS;
        }
        bits
    }

    /// Shortest call chain from `from` to a function with `bit` in its
    /// direct facts, as fn ids ending at the witness-holding function.
    /// `from` itself qualifies when it holds the fact directly.
    pub fn chain_to(&self, ws: &Workspace, from: usize, bit: u16) -> Vec<usize> {
        let n = ws.fns.len();
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[from] = true;
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            if self.direct[cur] & bit != 0 {
                let mut path = vec![cur];
                let mut at = cur;
                while let Some(p) = prev[at] {
                    path.push(p);
                    at = p;
                }
                path.reverse();
                return path;
            }
            for &c in &ws.fn_calls[cur] {
                for &t in &ws.calls[c].targets {
                    // Respect the dio cut when hunting a RAW_FS witness.
                    if bit == RAW_FS && ws.files[ws.fns[t].file].is_dio {
                        continue;
                    }
                    if !seen[t] && self.reach[t] & bit != 0 {
                        seen[t] = true;
                        prev[t] = Some(cur);
                        queue.push_back(t);
                    }
                }
            }
        }
        vec![from]
    }

    /// Render a chain as `a → b → c`, annotating the final hop with the
    /// witness site.
    pub fn describe_chain(&self, ws: &Workspace, chain: &[usize], bit: u16) -> String {
        let mut parts: Vec<String> = chain.iter().map(|&id| ws.fn_name(id)).collect();
        if let Some(&last) = chain.last() {
            if let Some(&(_, off)) = self.witness[last].iter().find(|(b, _)| *b & bit != 0) {
                let f = &ws.fns[last];
                let file = &ws.files[f.file];
                if let Some(p) = parts.last_mut() {
                    *p = format!("{p} ({}:{})", file.path.display(), ws.line_at(f.file, off));
                }
            }
        }
        parts.join(" → ")
    }
}

/// Offsets of `name(` occurrences in `body` that are calls: whole-ident
/// match, not a definition.
fn call_sites(body: &str, name: &str) -> Vec<usize> {
    let pat = format!("{name}(");
    let bytes = body.as_bytes();
    find_all(body, &pat)
        .into_iter()
        .filter(|&pos| !prev_is_ident(bytes, pos) && !body[..pos].trim_end().ends_with("fn"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws_of(src: &str) -> Workspace {
        let dir = std::env::temp_dir().join(format!("pmv-sum-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("s.rs");
        std::fs::write(&file, src).unwrap();
        let ws = Workspace::scan(&[PathBuf::from(&dir)]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        ws
    }

    #[test]
    fn facts_propagate_through_calls() {
        let src = r#"
fn leaf(&self) { self.inner.lock(); }
fn middle() { leaf_caller(); }
fn leaf_caller() { leaf_dummy(); }
fn leaf_dummy(&self) { self.guard.write(); }
"#;
        let ws = ws_of(src);
        let s = Summaries::compute(&ws);
        let id = |n: &str| ws.fns.iter().position(|f| f.name == n).unwrap();
        assert_ne!(s.direct[id("leaf")] & BLOCKING, 0);
        assert_eq!(s.direct[id("middle")] & BLOCKING, 0);
        assert_ne!(s.reach[id("middle")] & BLOCKING, 0, "two hops propagate");
        let chain = s.chain_to(&ws, id("middle"), BLOCKING);
        let names: Vec<String> = chain.iter().map(|&i| ws.fns[i].name.clone()).collect();
        assert_eq!(names, ["middle", "leaf_caller", "leaf_dummy"]);
    }

    #[test]
    fn exec_and_undo_seeds_are_textual() {
        let src = r#"
fn runs_exec(db: &Db, q: &Q) { let _ = execute_bounded_arc(db, q, b); }
fn rolls_back(db: &mut Db) { db.undo_delta_exact("r", &d).unwrap(); }
"#;
        let ws = ws_of(src);
        let s = Summaries::compute(&ws);
        assert_ne!(s.direct[0] & EXEC, 0);
        assert_ne!(s.direct[1] & UNDO, 0);
        assert_eq!(s.direct[0] & (BLOCKING | RAW_FS), 0);
    }
}
