//! The PMV store: bcp-keyed entries of at most `F` result tuples, bounded
//! to `L` entries, managed by a pluggable replacement policy
//! (Sections 3.2 and 3.5).
//!
//! The store is the moral equivalent of the paper's Figure 4: a table of
//! `(bcp, tuples)` entries with a hash index `I` on bcp (bcp probes are
//! exact-match, so hashing is the right index shape; `pmv-bench` ablates
//! this against a B-tree).

use std::collections::HashMap;
use std::sync::Arc;

use pmv_cache::{AdmitOutcome, PolicyKind, ReplacementPolicy};
use pmv_storage::{HeapSize, Tuple};

use crate::bcp::BcpKey;
use crate::maint_filter::MaintFilter;
use crate::view::PmvConfig;

/// Residency decision for a bcp in Operation O3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Residency {
    /// The bcp is resident: its tuples may be cached and served.
    Resident,
    /// The bcp is on probation (2Q's A1): no tuples cached yet.
    Probation,
}

/// One cached result tuple and the epoch it was filled at. Tuples are
/// shared (`Arc`) with the executor output and the query outcome — the
/// store never deep-copies a tuple. The fill epoch lets the epoch-pinned
/// serving path refuse tuples newer than its pinned version (a reader at
/// epoch `e` serves a cached tuple only when `fill_epoch <= e`).
pub type CachedTuple = (Arc<Tuple>, u64);

struct Entry {
    tuples: Vec<CachedTuple>,
    /// Times this bcp produced partial results (popularity ranking
    /// extension).
    hits: u64,
}

/// Bounded store of hot query results, keyed by basic condition part.
pub struct PmvStore {
    entries: HashMap<BcpKey, Entry>,
    policy: Box<dyn ReplacementPolicy<BcpKey> + Send + Sync>,
    /// Which policy `policy` was built from, kept so a quarantine drain
    /// can rebuild a fresh instance of the same kind.
    policy_kind: PolicyKind,
    f: usize,
    bytes: usize,
    evictions: u64,
    filter: Option<MaintFilter>,
    /// Drained after a panic mid-mutation (or a maintenance fallback):
    /// serves nothing and caches nothing until quarantine is lifted by
    /// revalidation.
    quarantined: bool,
}

impl PmvStore {
    /// Empty store per the config ("Initially, V_PM is empty").
    pub fn new(config: &PmvConfig) -> Self {
        PmvStore::with_capacity(config, config.l)
    }

    /// Empty store whose entry budget is `l` instead of `config.l`. The
    /// sharded [`crate::concurrent::SharedPmv`] builds one store per shard
    /// with capacity `⌈L/N⌉` so the shards together respect the view's
    /// global `L`.
    pub fn with_capacity(config: &PmvConfig, l: usize) -> Self {
        let l = l.max(1);
        PmvStore {
            entries: HashMap::with_capacity(l),
            policy: config.policy.build(l),
            policy_kind: config.policy,
            f: config.f,
            bytes: 0,
            evictions: 0,
            filter: None,
            quarantined: false,
        }
    }

    /// Attach the Section 3.4 maintenance filter (must be done while the
    /// store is empty).
    pub fn enable_filter(&mut self, filter: MaintFilter) {
        debug_assert!(self.entries.is_empty(), "enable the filter before use");
        self.filter = Some(filter);
    }

    /// Could deleting `base_tuple` from template relation `rel` affect
    /// any cached tuple? Always `true` when the filter is disabled.
    pub fn may_affect(&mut self, rel: usize, base_tuple: &Tuple) -> bool {
        match &mut self.filter {
            Some(f) => f.may_affect(rel, base_tuple),
            None => true,
        }
    }

    /// Read-only variant of [`Self::may_affect`]: same sound answer, no
    /// `joins_avoided` bookkeeping. Lets the sharded maintenance path peek
    /// at every shard's filter under read locks before deciding whether
    /// the ΔR join is needed at all.
    pub fn would_affect(&self, rel: usize, base_tuple: &Tuple) -> bool {
        match &self.filter {
            Some(f) => f.check(rel, base_tuple),
            None => true,
        }
    }

    /// ΔR joins skipped by the maintenance filter so far.
    pub fn joins_avoided(&self) -> u64 {
        self.filter.as_ref().map_or(0, MaintFilter::joins_avoided)
    }

    /// Max tuples per bcp (`F`).
    pub fn f(&self) -> usize {
        self.f
    }

    /// Max bcp entries (`L`).
    pub fn l(&self) -> usize {
        self.policy.capacity()
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Resident fraction of the policy's capacity in `[0, 1]` — the
    /// `occupancy` telemetry gauge.
    pub fn occupancy(&self) -> f64 {
        self.policy.occupancy()
    }

    /// Whether the store is quarantined (drained, serving nothing).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Drain the store after its contents became untrustworthy (a panic
    /// mid-mutation, or maintenance that could not repair it): every
    /// entry is dropped, the policy and filter are rebuilt empty, and the
    /// store stops serving and caching until [`Self::lift_quarantine`].
    /// Removal-only, so it can never cause a stale tuple to be served.
    pub fn quarantine(&mut self) {
        self.entries.clear();
        self.bytes = 0;
        self.policy = self.policy_kind.build(self.policy.capacity());
        if let Some(f) = &mut self.filter {
            f.clear();
        }
        self.quarantined = true;
    }

    /// Resume serving after revalidation confirmed (or re-established)
    /// consistency.
    pub fn lift_quarantine(&mut self) {
        self.quarantined = false;
    }

    /// Tuples cached for `bcp` (with their fill epochs), if resident.
    /// Does not touch the policy.
    pub fn lookup(&self, bcp: &BcpKey) -> Option<&[CachedTuple]> {
        if self.quarantined {
            return None;
        }
        self.entries.get(bcp).map(|e| e.tuples.as_slice())
    }

    /// Record a query access to `bcp` (Operation O2) and count a hit if it
    /// served results.
    pub fn touch(&mut self, bcp: &BcpKey, served: bool) {
        self.policy.touch(bcp);
        if served {
            if let Some(e) = self.entries.get_mut(bcp) {
                e.hits += 1;
            }
        }
    }

    /// Ask the policy to make `bcp` resident (Operation O3, once per bcp
    /// per query). Evicted entries are purged.
    pub fn admit(&mut self, bcp: &BcpKey) -> Residency {
        if self.quarantined {
            return Residency::Probation;
        }
        match self.policy.admit(bcp.clone()) {
            AdmitOutcome::Resident { evicted } => {
                for victim in evicted {
                    if let Some(e) = self.entries.remove(&victim) {
                        self.bytes -= Self::key_bytes(&victim)
                            + e.tuples
                                .iter()
                                .map(|(t, _)| Self::tuple_bytes(t))
                                .sum::<usize>();
                        self.evictions += 1;
                        if let Some(f) = &mut self.filter {
                            for (t, _) in &e.tuples {
                                f.remove(t);
                            }
                        }
                    }
                }
                Residency::Resident
            }
            AdmitOutcome::Probation => Residency::Probation,
        }
    }

    /// Store one result tuple under a resident `bcp`. Returns false when
    /// the bcp is not resident or already holds `F` tuples. Convenience
    /// wrapper over [`Self::push_arc`] for single-writer callers that do
    /// not track epochs.
    pub fn push_tuple(&mut self, bcp: &BcpKey, tuple: Tuple) -> bool {
        self.push_arc(bcp, Arc::new(tuple), 0)
    }

    /// Store one shared result tuple under a resident `bcp`, stamped with
    /// the epoch it was computed at. The `Arc` is moved in — no tuple
    /// data is copied. Returns false when the bcp is not resident or
    /// already holds `F` tuples.
    pub fn push_arc(&mut self, bcp: &BcpKey, tuple: Arc<Tuple>, epoch: u64) -> bool {
        if self.quarantined || !self.policy.contains(bcp) {
            return false;
        }
        let entry = self.entries.entry(bcp.clone()).or_insert_with(|| Entry {
            tuples: Vec::with_capacity(self.f.min(8)),
            hits: 0,
        });
        if entry.tuples.len() >= self.f {
            return false;
        }
        self.bytes += Self::tuple_bytes(&tuple)
            + if entry.tuples.is_empty() {
                Self::key_bytes(bcp)
            } else {
                0
            };
        if let Some(f) = &mut self.filter {
            f.add(&tuple);
        }
        entry.tuples.push((tuple, epoch));
        true
    }

    /// Remove one occurrence of `tuple` under `bcp` (PMV maintenance after
    /// a base-relation delete/update). Returns whether a tuple was removed.
    pub fn remove_tuple(&mut self, bcp: &BcpKey, tuple: &Tuple) -> bool {
        let Some(entry) = self.entries.get_mut(bcp) else {
            return false;
        };
        let Some(pos) = entry.tuples.iter().position(|(t, _)| &**t == tuple) else {
            return false;
        };
        entry.tuples.swap_remove(pos);
        self.bytes -= Self::tuple_bytes(tuple);
        if let Some(f) = &mut self.filter {
            f.remove(tuple);
        }
        if entry.tuples.is_empty() {
            self.entries.remove(bcp);
            self.bytes -= Self::key_bytes(bcp);
            self.policy.remove(bcp);
        }
        true
    }

    /// Popularity of `bcp`: number of queries it served (ranking
    /// extension; see `ext::ranking`).
    pub fn hit_count(&self, bcp: &BcpKey) -> u64 {
        self.entries.get(bcp).map_or(0, |e| e.hits)
    }

    /// Number of bcp entries currently stored.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Total cached tuples.
    pub fn tuple_count(&self) -> usize {
        self.entries.values().map(|e| e.tuples.len()).sum()
    }

    /// Highest fill epoch of any cached tuple (0 when empty) — the
    /// `staleness` telemetry gauge compares this against the current
    /// database version.
    pub fn max_fill_epoch(&self) -> u64 {
        self.entries
            .values()
            .flat_map(|e| e.tuples.iter().map(|(_, ep)| *ep))
            .max()
            .unwrap_or(0)
    }

    /// Approximate bytes cached (tuples + keys).
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Total entries evicted by the policy so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterate over `(bcp, cached tuples)` (diagnostics/tests).
    pub fn iter(&self) -> impl Iterator<Item = (&BcpKey, &[CachedTuple])> {
        self.entries.iter().map(|(k, e)| (k, e.tuples.as_slice()))
    }

    fn tuple_bytes(t: &Tuple) -> usize {
        std::mem::size_of::<Tuple>() + t.heap_size()
    }

    fn key_bytes(k: &BcpKey) -> usize {
        std::mem::size_of::<BcpKey>() + k.heap_size()
    }

    /// Check structural invariants, returning each violation as a
    /// message. Empty means consistent. Never panics.
    pub fn check(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.entries.len() > self.policy.capacity() {
            violations.push(format!(
                "more entries than L: {} > {}",
                self.entries.len(),
                self.policy.capacity()
            ));
        }
        for (k, e) in &self.entries {
            if e.tuples.is_empty() {
                violations.push(format!("empty entry for {k:?}"));
            }
            if e.tuples.len() > self.f {
                violations.push(format!("entry over F for {k:?}"));
            }
            if !self.policy.contains(k) {
                violations.push(format!("entry {k:?} not resident in policy"));
            }
        }
        let recomputed: usize = self
            .entries
            .iter()
            .map(|(k, e)| {
                Self::key_bytes(k)
                    + e.tuples
                        .iter()
                        .map(|(t, _)| Self::tuple_bytes(t))
                        .sum::<usize>()
            })
            .sum();
        if recomputed != self.bytes {
            violations.push(format!(
                "byte accounting drifted: recomputed {recomputed} != tracked {}",
                self.bytes
            ));
        }
        if let Some(f) = &self.filter {
            let cached: Vec<Tuple> = self
                .entries
                .values()
                .flat_map(|e| e.tuples.iter().map(|(t, _)| (**t).clone()))
                .collect();
            violations.extend(f.check_against(&cached));
        }
        violations
    }

    /// Check structural invariants; panics on violation. Test helper.
    pub fn validate(&self) {
        let violations = self.check();
        assert!(
            violations.is_empty(),
            "store invariants violated: {violations:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcp::BcpDim;
    use pmv_storage::{tuple, Value};

    fn bcp(x: i64) -> BcpKey {
        BcpKey::new(vec![BcpDim::Eq(Value::Int(x))])
    }

    fn cfg(f: usize, l: usize, policy: PolicyKind) -> PmvConfig {
        PmvConfig::new(f, l, policy)
    }

    #[test]
    fn push_respects_f() {
        let mut s = PmvStore::new(&cfg(2, 10, PolicyKind::Clock));
        assert_eq!(s.admit(&bcp(1)), Residency::Resident);
        assert!(s.push_tuple(&bcp(1), tuple![1i64, 1i64]));
        assert!(s.push_tuple(&bcp(1), tuple![1i64, 2i64]));
        assert!(!s.push_tuple(&bcp(1), tuple![1i64, 3i64]));
        assert_eq!(s.lookup(&bcp(1)).unwrap().len(), 2);
        s.validate();
    }

    #[test]
    fn push_requires_residency() {
        let mut s = PmvStore::new(&cfg(2, 10, PolicyKind::TwoQ));
        assert_eq!(s.admit(&bcp(1)), Residency::Probation);
        assert!(!s.push_tuple(&bcp(1), tuple![1i64]));
        assert_eq!(s.entry_count(), 0);
        // Second admission promotes.
        assert_eq!(s.admit(&bcp(1)), Residency::Resident);
        assert!(s.push_tuple(&bcp(1), tuple![1i64]));
        s.validate();
    }

    #[test]
    fn eviction_purges_entry_and_bytes() {
        let mut s = PmvStore::new(&cfg(1, 2, PolicyKind::Clock));
        for i in 0..2i64 {
            s.admit(&bcp(i));
            s.push_tuple(&bcp(i), tuple![i]);
        }
        assert_eq!(s.entry_count(), 2);
        let before = s.byte_size();
        s.admit(&bcp(99)); // evicts one of the two
        assert_eq!(s.entry_count(), 1);
        assert!(s.byte_size() < before);
        assert_eq!(s.evictions(), 1);
        s.validate();
    }

    #[test]
    fn remove_tuple_multiset_semantics() {
        let mut s = PmvStore::new(&cfg(3, 10, PolicyKind::Clock));
        s.admit(&bcp(1));
        s.push_tuple(&bcp(1), tuple![7i64]);
        s.push_tuple(&bcp(1), tuple![7i64]);
        assert!(s.remove_tuple(&bcp(1), &tuple![7i64]));
        assert_eq!(s.lookup(&bcp(1)).unwrap().len(), 1);
        assert!(s.remove_tuple(&bcp(1), &tuple![7i64]));
        // Entry is gone entirely.
        assert!(s.lookup(&bcp(1)).is_none());
        assert!(!s.remove_tuple(&bcp(1), &tuple![7i64]));
        assert_eq!(s.byte_size(), 0);
        s.validate();
    }

    #[test]
    fn removed_entry_frees_policy_slot() {
        let mut s = PmvStore::new(&cfg(1, 1, PolicyKind::Clock));
        s.admit(&bcp(1));
        s.push_tuple(&bcp(1), tuple![1i64]);
        s.remove_tuple(&bcp(1), &tuple![1i64]);
        // New bcp should be admitted without evicting anything.
        s.admit(&bcp(2));
        s.push_tuple(&bcp(2), tuple![2i64]);
        assert_eq!(s.evictions(), 0);
        s.validate();
    }

    #[test]
    fn hits_track_serving() {
        let mut s = PmvStore::new(&cfg(1, 4, PolicyKind::Clock));
        s.admit(&bcp(1));
        s.push_tuple(&bcp(1), tuple![1i64]);
        assert_eq!(s.hit_count(&bcp(1)), 0);
        s.touch(&bcp(1), true);
        s.touch(&bcp(1), true);
        s.touch(&bcp(1), false);
        assert_eq!(s.hit_count(&bcp(1)), 2);
    }

    #[test]
    fn refill_after_partial_removal() {
        // The paper's cj < F case: maintenance removed a tuple, a later
        // query refills the entry.
        let mut s = PmvStore::new(&cfg(2, 4, PolicyKind::Clock));
        s.admit(&bcp(1));
        s.push_tuple(&bcp(1), tuple![1i64]);
        s.push_tuple(&bcp(1), tuple![2i64]);
        s.remove_tuple(&bcp(1), &tuple![1i64]);
        assert_eq!(s.admit(&bcp(1)), Residency::Resident);
        assert!(s.push_tuple(&bcp(1), tuple![3i64]));
        assert_eq!(s.lookup(&bcp(1)).unwrap().len(), 2);
        s.validate();
    }
}
