//! Cumulative PMV statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated across a PMV's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PmvStats {
    /// Queries run through the pipeline.
    pub queries: u64,
    /// Queries for which the PMV provided at least one partial result —
    /// the numerator of the paper's *hit probability* ("if any of the h
    /// basic condition parts in the Cselect of Q exists in V_PM, Q is
    /// hit"). Note the paper's simulation counts presence of the bcp; a
    /// bcp present but with zero matching tuples still counts as a hit
    /// there. We count both, see `bcp_hit_queries`.
    pub serving_queries: u64,
    /// Queries for which at least one probed bcp was resident.
    pub bcp_hit_queries: u64,
    /// Partial result tuples served from the PMV (Operation O2).
    pub partial_tuples_served: u64,
    /// Result tuples stored into the PMV (Operation O3 fill/update).
    pub tuples_admitted: u64,
    /// bcp admissions that landed in a probation queue.
    pub probations: u64,
    /// Condition parts generated across all queries (Σ h).
    pub condition_parts: u64,
    /// Inserts into base relations that required no PMV work.
    pub maint_inserts_ignored: u64,
    /// Deletes processed via the ΔR join.
    pub maint_deletes_joined: u64,
    /// Updates skipped because no relevant attribute changed.
    pub maint_updates_ignored: u64,
    /// Updates processed like deletes.
    pub maint_updates_joined: u64,
    /// View tuples evicted by maintenance.
    pub maint_tuples_removed: u64,
}

impl PmvStats {
    /// Hit probability over the queries seen so far, by the paper's
    /// definition (bcp residency).
    pub fn hit_probability(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.bcp_hit_queries as f64 / self.queries as f64
        }
    }

    /// Fraction of queries that actually received partial tuples.
    pub fn serving_probability(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.serving_queries as f64 / self.queries as f64
        }
    }

    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &PmvStats) {
        self.queries += other.queries;
        self.serving_queries += other.serving_queries;
        self.bcp_hit_queries += other.bcp_hit_queries;
        self.partial_tuples_served += other.partial_tuples_served;
        self.tuples_admitted += other.tuples_admitted;
        self.probations += other.probations;
        self.condition_parts += other.condition_parts;
        self.maint_inserts_ignored += other.maint_inserts_ignored;
        self.maint_deletes_joined += other.maint_deletes_joined;
        self.maint_updates_ignored += other.maint_updates_ignored;
        self.maint_updates_joined += other.maint_updates_joined;
        self.maint_tuples_removed += other.maint_tuples_removed;
    }
}

/// Shared-counter variant of [`PmvStats`] for concurrent embeddings
/// (notably the sharded [`crate::concurrent::SharedPmv`]): queries and
/// maintainers accumulate a local [`PmvStats`] and publish it with one
/// [`AtomicPmvStats::add`], so no lock is ever taken for bookkeeping.
/// All counters use relaxed ordering — they are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct AtomicPmvStats {
    queries: AtomicU64,
    serving_queries: AtomicU64,
    bcp_hit_queries: AtomicU64,
    partial_tuples_served: AtomicU64,
    tuples_admitted: AtomicU64,
    probations: AtomicU64,
    condition_parts: AtomicU64,
    maint_inserts_ignored: AtomicU64,
    maint_deletes_joined: AtomicU64,
    maint_updates_ignored: AtomicU64,
    maint_updates_joined: AtomicU64,
    maint_tuples_removed: AtomicU64,
}

impl AtomicPmvStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        AtomicPmvStats::default()
    }

    /// Fold a locally accumulated stats block into the shared counters.
    pub fn add(&self, delta: &PmvStats) {
        self.queries.fetch_add(delta.queries, Ordering::Relaxed);
        self.serving_queries
            .fetch_add(delta.serving_queries, Ordering::Relaxed);
        self.bcp_hit_queries
            .fetch_add(delta.bcp_hit_queries, Ordering::Relaxed);
        self.partial_tuples_served
            .fetch_add(delta.partial_tuples_served, Ordering::Relaxed);
        self.tuples_admitted
            .fetch_add(delta.tuples_admitted, Ordering::Relaxed);
        self.probations
            .fetch_add(delta.probations, Ordering::Relaxed);
        self.condition_parts
            .fetch_add(delta.condition_parts, Ordering::Relaxed);
        self.maint_inserts_ignored
            .fetch_add(delta.maint_inserts_ignored, Ordering::Relaxed);
        self.maint_deletes_joined
            .fetch_add(delta.maint_deletes_joined, Ordering::Relaxed);
        self.maint_updates_ignored
            .fetch_add(delta.maint_updates_ignored, Ordering::Relaxed);
        self.maint_updates_joined
            .fetch_add(delta.maint_updates_joined, Ordering::Relaxed);
        self.maint_tuples_removed
            .fetch_add(delta.maint_tuples_removed, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters. Individual fields are read
    /// relaxed, so a snapshot taken while writers are active may mix
    /// adjacent updates; totals are exact once writers quiesce.
    pub fn snapshot(&self) -> PmvStats {
        PmvStats {
            queries: self.queries.load(Ordering::Relaxed),
            serving_queries: self.serving_queries.load(Ordering::Relaxed),
            bcp_hit_queries: self.bcp_hit_queries.load(Ordering::Relaxed),
            partial_tuples_served: self.partial_tuples_served.load(Ordering::Relaxed),
            tuples_admitted: self.tuples_admitted.load(Ordering::Relaxed),
            probations: self.probations.load(Ordering::Relaxed),
            condition_parts: self.condition_parts.load(Ordering::Relaxed),
            maint_inserts_ignored: self.maint_inserts_ignored.load(Ordering::Relaxed),
            maint_deletes_joined: self.maint_deletes_joined.load(Ordering::Relaxed),
            maint_updates_ignored: self.maint_updates_ignored.load(Ordering::Relaxed),
            maint_updates_joined: self.maint_updates_joined.load(Ordering::Relaxed),
            maint_tuples_removed: self.maint_tuples_removed.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (e.g. after a warm-up phase).
    pub fn reset(&self) {
        for c in [
            &self.queries,
            &self.serving_queries,
            &self.bcp_hit_queries,
            &self.partial_tuples_served,
            &self.tuples_admitted,
            &self.probations,
            &self.condition_parts,
            &self.maint_inserts_ignored,
            &self.maint_deletes_joined,
            &self.maint_updates_ignored,
            &self.maint_updates_joined,
            &self.maint_tuples_removed,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities() {
        let s = PmvStats {
            queries: 10,
            bcp_hit_queries: 9,
            serving_queries: 8,
            ..Default::default()
        };
        assert!((s.hit_probability() - 0.9).abs() < 1e-12);
        assert!((s.serving_probability() - 0.8).abs() < 1e-12);
        assert_eq!(PmvStats::default().hit_probability(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = PmvStats {
            queries: 1,
            partial_tuples_served: 5,
            ..Default::default()
        };
        let b = PmvStats {
            queries: 2,
            partial_tuples_served: 7,
            maint_tuples_removed: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.partial_tuples_served, 12);
        assert_eq!(a.maint_tuples_removed, 3);
    }

    #[test]
    fn atomic_add_snapshot_reset() {
        let shared = AtomicPmvStats::new();
        let a = PmvStats {
            queries: 3,
            bcp_hit_queries: 2,
            tuples_admitted: 5,
            ..Default::default()
        };
        let b = PmvStats {
            queries: 1,
            maint_tuples_removed: 4,
            ..Default::default()
        };
        shared.add(&a);
        shared.add(&b);
        let snap = shared.snapshot();
        assert_eq!(snap.queries, 4);
        assert_eq!(snap.bcp_hit_queries, 2);
        assert_eq!(snap.tuples_admitted, 5);
        assert_eq!(snap.maint_tuples_removed, 4);
        assert!((snap.hit_probability() - 0.5).abs() < 1e-12);
        shared.reset();
        assert_eq!(shared.snapshot(), PmvStats::default());
    }

    #[test]
    fn atomic_adds_from_threads_sum_exactly() {
        let shared = std::sync::Arc::new(AtomicPmvStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let shared = std::sync::Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    shared.add(&PmvStats {
                        queries: 1,
                        condition_parts: 2,
                        ..Default::default()
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = shared.snapshot();
        assert_eq!(snap.queries, 8000);
        assert_eq!(snap.condition_parts, 16000);
    }
}
