//! Shared fixtures for the integration tests.

use pmv::index::IndexDef;
use pmv::prelude::*;
use std::sync::Arc;

/// Two-relation schema shaped like the paper's Eqt: R(a, c, f), S(d, e, g)
/// joined on R.c = S.d, with equality conditions on R.f and S.g.
pub struct EqtFixture {
    pub db: Database,
    pub template: Arc<pmv::query::QueryTemplate>,
}

/// Build the fixture with `n` tuples per relation, deterministic content.
pub fn eqt_fixture(n: i64) -> EqtFixture {
    let mut db = Database::new();
    db.create_relation(Schema::new(
        "r",
        vec![
            Column::new("a", ColumnType::Int),
            Column::new("c", ColumnType::Int),
            Column::new("f", ColumnType::Int),
        ],
    ))
    .unwrap();
    db.create_relation(Schema::new(
        "s",
        vec![
            Column::new("d", ColumnType::Int),
            Column::new("e", ColumnType::Int),
            Column::new("g", ColumnType::Int),
        ],
    ))
    .unwrap();
    for i in 0..n {
        // c/d overlap so roughly half of r joins something.
        db.insert("r", tuple![i, i % (n / 2 + 1), i % 7]).unwrap();
        db.insert("s", tuple![i % (n / 2 + 1), i * 10, i % 5])
            .unwrap();
    }
    db.create_index(IndexDef::btree("r", vec![1])).unwrap();
    db.create_index(IndexDef::btree("r", vec![2])).unwrap();
    db.create_index(IndexDef::btree("s", vec![0])).unwrap();
    db.create_index(IndexDef::btree("s", vec![2])).unwrap();
    let template = TemplateBuilder::new("eqt")
        .relation(db.schema("r").unwrap())
        .relation(db.schema("s").unwrap())
        .join("r", "c", "s", "d")
        .unwrap()
        .select("r", "a")
        .unwrap()
        .select("s", "e")
        .unwrap()
        .cond_eq("r", "f")
        .unwrap()
        .cond_eq("s", "g")
        .unwrap()
        .build()
        .unwrap();
    EqtFixture { db, template }
}

/// Bind an Eqt query over f-values and g-values.
pub fn eqt_query(
    template: &Arc<pmv::query::QueryTemplate>,
    fs: &[i64],
    gs: &[i64],
) -> QueryInstance {
    template
        .bind(vec![
            Condition::Equality(fs.iter().map(|&v| Value::Int(v)).collect()),
            Condition::Equality(gs.iter().map(|&v| Value::Int(v)).collect()),
        ])
        .unwrap()
}

/// Sorted user-layout results of plain execution.
#[allow(dead_code)] // used by several, not all, test binaries
pub fn oracle(db: &Database, q: &QueryInstance) -> Vec<Tuple> {
    let (rows, _) = pmv::query::execute(db, q).unwrap();
    let mut user: Vec<Tuple> = rows.iter().map(|t| q.template().user_tuple(t)).collect();
    user.sort();
    user
}
