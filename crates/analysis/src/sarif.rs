//! Minimal SARIF 2.1.0 report rendering, shared by the `pmv-lint` /
//! `pmv-analyze` binaries and the CLI's `analyze … sarif` command.
//!
//! Only the subset consumed by code-scanning UIs is emitted: one run,
//! one tool driver with rule metadata, and a flat result list with
//! optional physical locations. The workspace serde_json shim has no
//! serializer, so the JSON is assembled by hand through [`json_str`] —
//! the same escaping discipline the lint binary has always used.

use std::fmt::Write as _;

/// Rule metadata for the `tool.driver.rules` array.
#[derive(Clone, Debug)]
pub struct SarifRule {
    /// Stable rule identifier (`pin_reaches_blocking_lock`, `PMV004`, …).
    pub id: String,
    /// One-line description shown by SARIF viewers.
    pub short: String,
}

/// One result row. `file`/`line` are optional: template-verifier
/// diagnostics have no source location (they describe a view
/// definition, not a file).
#[derive(Clone, Debug)]
pub struct SarifResult {
    /// Rule identifier; should match a [`SarifRule::id`].
    pub rule_id: String,
    /// SARIF level: `"error"`, `"warning"` or `"note"`.
    pub level: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Repo-relative file path, when the result points at source.
    pub file: Option<String>,
    /// 1-based line, when the result points at source.
    pub line: Option<usize>,
}

/// Render a single-run SARIF 2.1.0 document.
pub fn to_sarif(tool: &str, rules: &[SarifRule], results: &[SarifResult]) -> String {
    let mut out = String::with_capacity(1024 + results.len() * 160);
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    let _ = write!(out, "\"name\":{},\"rules\":[", json_str(tool));
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            json_str(&r.id),
            json_str(&r.short)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}}",
            json_str(&r.rule_id),
            json_str(r.level),
            json_str(&r.message)
        );
        if let (Some(file), Some(line)) = (&r.file, r.line) {
            let _ = write!(
                out,
                ",\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":{}}},\"region\":{{\"startLine\":{line}}}}}}}]",
                json_str(file)
            );
        }
        out.push('}');
    }
    out.push_str("]}]}");
    out
}

/// JSON string literal with the escapes the format requires.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rules_and_located_results() {
        let rules = vec![SarifRule {
            id: "pin_reaches_blocking_lock".into(),
            short: "no blocking lock reachable from a pin region".into(),
        }];
        let results = vec![
            SarifResult {
                rule_id: "pin_reaches_blocking_lock".into(),
                level: "error",
                message: "call chain \"a\" → b acquires .lock()".into(),
                file: Some("crates/core/src/concurrent.rs".into()),
                line: Some(42),
            },
            SarifResult {
                rule_id: "PMV004".into(),
                level: "warning",
                message: "budget exceeded".into(),
                file: None,
                line: None,
            },
        ];
        let doc = to_sarif("pmv-analyze", &rules, &results);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"name\":\"pmv-analyze\""));
        assert!(doc.contains("\"startLine\":42"));
        assert!(doc.contains("\\\"a\\\" → b"));
        // The unlocated result carries no locations array.
        assert!(doc.contains("\"message\":{\"text\":\"budget exceeded\"}}"));
    }
}
