// IPA corpus (clean): the shard guard is acquired *outside* the
// `catch_unwind` closure, so a panic inside leaves the guard with the
// caller and the quarantine handler can still reach the store.

struct Fx;

impl Fx {
    fn fill(&self) {
        let mut store = self.shard_slot.write();
        let fill = catch_unwind(AssertUnwindSafe(|| {
            store.clear();
        }));
        drop(fill);
    }
}
