//! `pmv-lint` — run the repo-specific concurrency lint rules over a
//! source tree.
//!
//! ```text
//! pmv-lint [--json] [--deny-warnings] [paths…]
//! ```
//!
//! With no paths, lints `crates/` under the current directory. Exit
//! status is 0 when clean, 1 when any finding fails the run (errors
//! always; warnings only under `--deny-warnings`, which is how CI
//! invokes it), 2 on usage or I/O errors, 3 when a given path does not
//! exist or the scan matched zero `.rs` files — a misspelled path must
//! not read as "clean".

use std::path::PathBuf;
use std::process::ExitCode;

use pmv_analysis::lint::{lint_tree, Level, LintReport};

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                println!("usage: pmv-lint [--json] [--deny-warnings] [paths...]");
                println!("lints .rs files for PMV locking-contract violations");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("pmv-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("crates"));
    }

    let mut report = LintReport::default();
    for path in &paths {
        if !path.exists() {
            eprintln!("pmv-lint: path does not exist: {}", path.display());
            return ExitCode::from(3);
        }
        match lint_tree(path) {
            Ok(r) => {
                report.findings.extend(r.findings);
                report.allows_used.extend(r.allows_used);
                report.files_scanned += r.files_scanned;
            }
            Err(e) => {
                eprintln!("pmv-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if report.files_scanned == 0 {
        eprintln!(
            "pmv-lint: no .rs files found under {}",
            paths
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(3);
    }

    if json {
        print_json(&report);
    } else {
        print_human(&report, deny_warnings);
    }

    if report.failed(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_human(report: &LintReport, deny_warnings: bool) {
    for f in &report.findings {
        println!("{f}");
    }
    for a in &report.allows_used {
        println!(
            "note: pmv::allow({}) in effect at {}:{}",
            a.rule,
            a.file.display(),
            a.line
        );
    }
    let errors = report
        .findings
        .iter()
        .filter(|f| f.level == Level::Error || deny_warnings)
        .count();
    let warnings = report.findings.len() - errors;
    println!(
        "pmv-lint: {} file(s) scanned, {} error(s), {} warning(s), {} allow entrie(s)",
        report.files_scanned,
        errors,
        warnings,
        report.allows_used.len()
    );
}

fn print_json(report: &LintReport) {
    // Hand-rolled JSON: the workspace serde_json shim has no serializer.
    let mut out = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"level\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(f.rule),
            json_str(&f.level.to_string()),
            json_str(&f.file.display().to_string()),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str("],\"allows_used\":[");
    for (i, a) in report.allows_used.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{}}}",
            json_str(&a.rule),
            json_str(&a.file.display().to_string()),
            a.line
        ));
    }
    out.push_str(&format!("],\"files_scanned\":{}}}", report.files_scanned));
    println!("{out}");
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
