//! Thread-safe PMV embedding.
//!
//! [`crate::pipeline::PmvPipeline::run`] takes `&mut Pmv`, which forces
//! single-writer access; [`SharedPmv`] packages the locking a
//! multi-threaded embedder needs: an internal mutex over the PMV, the
//! shared [`PmvPipeline`] (whose S/X protocol serializes queries against
//! maintainers per Section 3.6), and clone-to-share semantics.

use std::sync::Arc;

use parking_lot::Mutex;
use pmv_query::Database;
use pmv_storage::DeltaBatch;

use crate::maintenance::MaintenanceOutcome;
use crate::pipeline::{Pmv, PmvPipeline, QueryOutcome};
use crate::stats::PmvStats;
use crate::Result;

/// A clonable, thread-safe handle to one PMV.
#[derive(Clone)]
pub struct SharedPmv {
    inner: Arc<Mutex<Pmv>>,
    pipeline: PmvPipeline,
}

impl SharedPmv {
    /// Wrap a PMV for shared use; all clones use `pipeline`'s lock
    /// manager for the S/X protocol.
    pub fn new(pmv: Pmv, pipeline: PmvPipeline) -> Self {
        SharedPmv {
            inner: Arc::new(Mutex::new(pmv)),
            pipeline,
        }
    }

    /// The shared pipeline.
    pub fn pipeline(&self) -> &PmvPipeline {
        &self.pipeline
    }

    /// Run a query (O1/O2/O3) under the internal lock.
    pub fn run(&self, db: &Database, q: &pmv_query::QueryInstance) -> Result<QueryOutcome> {
        let mut pmv = self.inner.lock();
        self.pipeline.run(db, &mut pmv, q)
    }

    /// Apply a maintenance batch under the internal lock.
    pub fn maintain(&self, db: &Database, batch: &DeltaBatch) -> Result<MaintenanceOutcome> {
        let mut pmv = self.inner.lock();
        self.pipeline.maintain(db, &mut pmv, batch)
    }

    /// Inspect the PMV under the lock.
    pub fn with<R>(&self, f: impl FnOnce(&Pmv) -> R) -> R {
        let pmv = self.inner.lock();
        f(&pmv)
    }

    /// Mutate the PMV under the lock (e.g. `revalidate`, `reset_stats`).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut Pmv) -> R) -> R {
        let mut pmv = self.inner.lock();
        f(&mut pmv)
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> PmvStats {
        *self.inner.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{PartialViewDef, PmvConfig};
    use pmv_cache::PolicyKind;
    use pmv_index::IndexDef;
    use pmv_query::{Condition, TemplateBuilder, Transaction};
    use pmv_storage::{tuple, Column, ColumnType, Schema, Value};

    fn setup() -> (Database, SharedPmv) {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("f", ColumnType::Int),
            ],
        ))
        .unwrap();
        for i in 0..500i64 {
            db.insert("r", tuple![i, i % 10]).unwrap();
        }
        db.create_index(IndexDef::btree("r", vec![1])).unwrap();
        let t = TemplateBuilder::new("t")
            .relation(db.schema("r").unwrap())
            .select("r", "a")
            .unwrap()
            .cond_eq("r", "f")
            .unwrap()
            .build()
            .unwrap();
        let pmv = Pmv::new(
            PartialViewDef::all_equality("shared", t).unwrap(),
            PmvConfig::new(3, 16, PolicyKind::Clock),
        );
        (db, SharedPmv::new(pmv, PmvPipeline::new()))
    }

    #[test]
    fn clones_share_state() {
        let (db, shared) = setup();
        let clone = shared.clone();
        let t = shared.with(|p| p.def().template().clone());
        let q = t
            .bind(vec![Condition::Equality(vec![Value::Int(3)])])
            .unwrap();
        shared.run(&db, &q).unwrap();
        // The clone sees the warm cache.
        let out = clone.run(&db, &q).unwrap();
        assert!(out.bcp_hit);
        assert_eq!(clone.stats().queries, 2);
    }

    #[test]
    fn concurrent_queries_and_maintenance_stay_consistent() {
        let (db, shared) = setup();
        let db = Arc::new(parking_lot::RwLock::new(db));
        let t = shared.with(|p| p.def().template().clone());

        let mut handles = Vec::new();
        for thread in 0..4 {
            let shared = shared.clone();
            let db = Arc::clone(&db);
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50i64 {
                    if thread == 0 && i % 5 == 0 {
                        // Maintainer thread: insert + maintain.
                        let mut guard = db.write();
                        let mut txn = Transaction::begin(&mut guard);
                        txn.insert(
                            "r",
                            pmv_storage::Tuple::new(vec![Value::Int(1000 + i), Value::Int(i % 10)]),
                        )
                        .unwrap();
                        let batches = txn.commit();
                        let read = parking_lot::RwLockWriteGuard::downgrade(guard);
                        for b in &batches {
                            shared.maintain(&read, b).unwrap();
                        }
                    } else {
                        let q = t
                            .bind(vec![Condition::Equality(vec![Value::Int(i % 10)])])
                            .unwrap();
                        let guard = db.read();
                        let out = shared.run(&guard, &q).unwrap();
                        assert_eq!(out.ds_leftover, 0, "stale partial result");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let guard = db.read();
        let removed = shared.with_mut(|p| p.revalidate(&guard).unwrap());
        assert_eq!(removed, 0, "no stale tuples after concurrent run");
        assert!(shared.stats().queries > 100);
    }
}
