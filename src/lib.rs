//! # pmv — Partial Materialized Views
//!
//! A from-scratch Rust reproduction of *Partial Materialized Views*
//! (Gang Luo, ICDE 2007). A **partial materialized view (PMV)** caches a
//! bounded set of the most frequently accessed query results for a
//! parameterized query template, so an RDBMS can return transactionally
//! consistent *partial* results within a millisecond while the full query
//! continues to execute — without the storage and maintenance cost of a
//! traditional materialized view.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`storage`] — values, schemas, tuples, heap relations, deltas.
//! * [`index`] — hash and B+-tree secondary indexes with composite keys.
//! * [`query`] — query templates (`Cjoin` + disjunctive `Cselect`),
//!   planner, index-nested-loop executor, transactions, 2PL locks.
//! * [`cache`] — replacement policies: CLOCK, simplified 2Q, LRU, LRU-2.
//! * [`core`] — the paper's contribution: basic condition parts, the PMV
//!   store, the O1/O2/O3 pipeline, deferred maintenance, MV baselines,
//!   and the Section 3.6 extensions.
//! * [`workload`] — Zipfian bcp streams, TPC-R-style data and query
//!   generators.
//! * [`costmodel`] — the analytical maintenance cost model of Section 4.3.
//!
//! See `examples/quickstart.rs` for a five-minute tour, or run the whole
//! flow in miniature:
//!
//! ```
//! use pmv::prelude::*;
//! use pmv::index::IndexDef;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut db = Database::new();
//! db.create_relation(Schema::new(
//!     "items",
//!     vec![
//!         Column::new("id", ColumnType::Int),
//!         Column::new("kind", ColumnType::Int),
//!     ],
//! ))?;
//! for i in 0..100i64 {
//!     db.insert("items", tuple![i, i % 5])?;
//! }
//! db.create_index(IndexDef::btree("items", vec![1]))?;
//!
//! let template = TemplateBuilder::new("by_kind")
//!     .relation(db.schema("items")?)
//!     .select("items", "id")?
//!     .cond_eq("items", "kind")?
//!     .build()?;
//! let def = PartialViewDef::all_equality("items_pmv", template.clone())?;
//! let mut pmv = Pmv::new(def, PmvConfig::default());
//! let pipeline = PmvPipeline::new();
//!
//! let q = template.bind(vec![Condition::Equality(vec![Value::Int(3)])])?;
//! let cold = pipeline.run(&db, &mut pmv, &q)?; // fills the PMV
//! assert!(cold.partial.is_empty());
//! let warm = pipeline.run(&db, &mut pmv, &q)?; // serves partial results
//! assert_eq!(warm.partial.len(), pmv.config().f);
//! assert_eq!(
//!     cold.all_results().len(),
//!     warm.all_results().len(),
//! );
//! # Ok(())
//! # }
//! ```

pub use pmv_cache as cache;
pub use pmv_core as core;
pub use pmv_costmodel as costmodel;
pub use pmv_index as index;
pub use pmv_query as query;
pub use pmv_storage as storage;
pub use pmv_workload as workload;

/// Commonly used items, for `use pmv::prelude::*`.
pub mod prelude {
    pub use pmv_cache::{ClockPolicy, PolicyKind, ReplacementPolicy, TwoQPolicy};
    pub use pmv_core::{
        verify_def, verify_parts, BcpKey, DiagCode, Discretizer, MaintStrategy,
        MaintenanceOutcome, PartialViewDef, Pmv, PmvConfig, PmvManager, PmvPipeline, PmvStats,
        QueryOutcome, Severity, SharedPmv, VerifyOptions, VerifyPolicy, VerifyReport,
    };
    pub use pmv_query::{
        Condition, Database, Interval, QueryInstance, QueryTemplate, TemplateBuilder,
    };
    pub use pmv_storage::{tuple, Column, ColumnType, Schema, Tuple, Value};
}
