//! Extensions sketched in the paper's Section 3.6 and conclusion:
//! DISTINCT queries, aggregate (GROUP BY) queries, EXISTS-nested queries,
//! and popularity ranking of result tuples.

pub mod aggregate;
pub mod distinct;
pub mod exists;
pub mod order_by;
pub mod ranking;

pub use aggregate::{run_aggregate, AggFn, AggValue, AggregateOutcome, GroupBySpec};
pub use distinct::{run_distinct, DistinctOutcome};
pub use exists::{exists_accelerated, ExistsOutcome};
pub use order_by::{run_ordered, Direction, OrderBy, OrderedOutcome};
pub use ranking::rank_by_popularity;
