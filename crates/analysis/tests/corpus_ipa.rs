//! Corpus tests for the interprocedural analyzer: each rule must fire
//! on its minimal violating fixture and stay silent on the clean
//! variant, the real repo must analyze clean (with exactly the
//! documented escapes), and both binaries must distinguish "clean"
//! from "scanned nothing".

use std::path::PathBuf;
use std::process::Command;

use pmv_analysis::rules_ipa::analyze_tree;

fn corpus(rule: &str, kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus/ipa")
        .join(rule)
        .join(kind)
}

/// The violating fixture yields ≥1 finding of `rule` and nothing else;
/// the clean fixture yields zero findings of any rule.
fn fires_and_clears(rule: &str) {
    let violate = analyze_tree(&[corpus(rule, "violate")]).unwrap();
    assert!(
        violate.findings.iter().any(|f| f.rule == rule),
        "{rule}: violating fixture produced no {rule} finding: {:?}",
        violate.findings
    );
    assert!(
        violate.findings.iter().all(|f| f.rule == rule),
        "{rule}: violating fixture tripped other rules: {:?}",
        violate.findings
    );
    let clean = analyze_tree(&[corpus(rule, "clean")]).unwrap();
    assert!(
        clean.findings.is_empty(),
        "{rule}: clean fixture is not clean: {:?}",
        clean.findings
    );
}

#[test]
fn write_guard_across_exec_interprocedural() {
    fires_and_clears("write_guard_across_exec");
}

#[test]
fn lock_in_catch_unwind_interprocedural() {
    fires_and_clears("lock_in_catch_unwind");
}

#[test]
fn lock_order_interprocedural() {
    fires_and_clears("lock_order");
}

#[test]
fn pin_reaches_blocking_lock_interprocedural() {
    fires_and_clears("pin_reaches_blocking_lock");
}

#[test]
fn dio_funnel_reach_interprocedural() {
    fires_and_clears("dio_funnel_reach");
}

#[test]
fn durable_before_visible_interprocedural() {
    fires_and_clears("durable_before_visible");
}

/// Whole-repo gate: zero unescaped findings, and exactly the escapes
/// the design documents — four fault-injection/publish sites in the
/// pin region (DESIGN.md §14; the targeted-upquery refill joined the
/// executor, fill, and publish sites in §19) and the checkpoint-durable
/// setup path (§16). A new escape anywhere must update this census.
#[test]
fn repo_is_clean_ipa() {
    let crates = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("crates");
    let report = analyze_tree(&[crates]).unwrap();
    assert!(
        report.findings.is_empty(),
        "repo has unescaped analyzer findings: {:#?}",
        report.findings
    );
    let pins = report
        .allows_used
        .iter()
        .filter(|a| a.rule == "pin_reaches_blocking_lock")
        .count();
    let durable = report
        .allows_used
        .iter()
        .filter(|a| a.rule == "durable_before_visible")
        .count();
    assert_eq!(
        (pins, durable, report.allows_used.len()),
        (4, 1, 5),
        "escape census drifted: {:?}",
        report.allows_used
    );
    assert!(report.fns_indexed > 500, "call graph looks truncated");
}

/// §16 statically confirmed: the group-commit winner (`combine`) passes
/// `durable_before_visible` *because of its shape*, not because the
/// rule never looks at it — the same scan indexes it and the rule fires
/// when the WAL append is absent (violate fixture above).
#[test]
fn combine_is_checked_not_skipped() {
    let core_src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../core/src");
    let report = analyze_tree(&[core_src]).unwrap();
    let durable_findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "durable_before_visible")
        .collect();
    assert!(
        durable_findings.is_empty(),
        "combine / commit path fails §16: {durable_findings:?}"
    );
}

#[test]
fn binaries_exit_3_on_missing_or_empty_paths() {
    let empty = std::env::temp_dir().join(format!("pmv-empty-{}", std::process::id()));
    std::fs::create_dir_all(&empty).unwrap();
    for bin in [
        env!("CARGO_BIN_EXE_pmv-lint"),
        env!("CARGO_BIN_EXE_pmv-analyze"),
    ] {
        let out = Command::new(bin)
            .arg("/nonexistent/pmv/path")
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(3), "{bin} on missing path");
        let out = Command::new(bin).arg(&empty).output().unwrap();
        assert_eq!(out.status.code(), Some(3), "{bin} on dir with no .rs files");
    }
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn analyze_emits_sarif_with_locations() {
    let out = Command::new(env!("CARGO_BIN_EXE_pmv-analyze"))
        .arg("--json")
        .arg(corpus("pin_reaches_blocking_lock", "violate"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "violating fixture must fail the run"
    );
    let doc = String::from_utf8(out.stdout).unwrap();
    assert!(doc.contains("\"version\":\"2.1.0\""), "not SARIF: {doc}");
    assert!(doc.contains("\"ruleId\":\"pin_reaches_blocking_lock\""));
    assert!(doc.contains("\"startLine\""));
}

/// Baseline mode tolerates known debt but fails on new debt.
#[test]
fn baseline_diff_mode() {
    let dir = std::env::temp_dir().join(format!("pmv-base-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.tsv");
    let violate = corpus("durable_before_visible", "violate");
    let bin = env!("CARGO_BIN_EXE_pmv-analyze");

    let out = Command::new(bin)
        .arg("--write-baseline")
        .arg(&baseline)
        .arg(&violate)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "--write-baseline must exit 0");
    let recorded = std::fs::read_to_string(&baseline).unwrap();
    assert!(recorded.contains("durable_before_visible"), "{recorded}");

    // Same tree against its own baseline: tolerated.
    let out = Command::new(bin)
        .arg("--baseline")
        .arg(&baseline)
        .arg(&violate)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "baselined debt must pass");

    // Empty baseline: the same findings now count as new debt.
    std::fs::write(&baseline, "").unwrap();
    let out = Command::new(bin)
        .arg("--baseline")
        .arg(&baseline)
        .arg(&violate)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "new debt must fail");
    std::fs::remove_dir_all(&dir).ok();
}
