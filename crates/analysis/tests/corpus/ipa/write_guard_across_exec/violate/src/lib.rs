// IPA corpus: a shard write guard held across a *helper* that reaches
// an executor entry point. The file-local lint cannot see this — the
// guard scope contains no `execute(` textually — only the call graph
// does.

struct Fx;

impl Fx {
    fn fill_under_guard(&self, db: &Db, q: &Query) {
        let mut store = self.shards[0].write();
        let rows = fx_run_query(db, q);
        store.extend(rows);
    }
}

fn fx_run_query(db: &Db, q: &Query) -> Vec<Row> {
    execute(db, q).unwrap()
}
