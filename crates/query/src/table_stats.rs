//! Table statistics, in the spirit of the paper's setup step "we ran the
//! PostgreSQL statistics collection program on all the relations"
//! (Section 4.2): per-column distinct counts used by the executor to
//! pick the most selective driving condition.

use std::collections::{HashMap, HashSet};

use pmv_storage::Value;

use crate::engine::Database;
use crate::Result;

/// Statistics for one column.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values observed.
    pub distinct: usize,
    /// Minimum value (None for an empty relation).
    pub min: Option<Value>,
    /// Maximum value.
    pub max: Option<Value>,
    /// Equi-depth histogram over integer columns (None otherwise or when
    /// the relation is empty).
    pub histogram: Option<Histogram>,
}

/// An equi-depth histogram: `bounds` are bucket upper edges over the
/// sorted values, so each bucket holds ≈ rows/buckets values. Standard
/// RDBMS statistics fare; used to estimate interval selectivities on
/// skewed data where a min/max uniformity assumption misleads.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Total values summarized.
    total: usize,
    /// Ascending bucket upper bounds (inclusive); the last equals max.
    bounds: Vec<i64>,
    /// Overall minimum.
    lo: i64,
}

impl Histogram {
    /// Number of buckets this histogram was built with.
    pub const BUCKETS: usize = 32;

    /// Build from an unsorted sample of integer values.
    pub fn build(mut values: Vec<i64>) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        let total = values.len();
        let lo = values[0];
        let buckets = Self::BUCKETS.min(total);
        let mut bounds = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            let idx = (b * total / buckets).saturating_sub(1);
            bounds.push(values[idx]);
        }
        bounds.dedup();
        Some(Histogram { total, bounds, lo })
    }

    /// Estimated number of rows with value in `[lo, hi]` (inclusive,
    /// saturating at the histogram's range).
    pub fn estimate_range_rows(&self, lo: i64, hi: i64) -> f64 {
        if hi < lo || self.total == 0 {
            return 0.0;
        }
        // Fraction of values ≤ x, with linear interpolation inside the
        // bucket. Bucket i covers the integer range (prev_edge, edge]
        // (the first bucket starts at lo).
        let frac_le = |x: i64| -> f64 {
            if x < self.lo {
                return 0.0;
            }
            let nb = self.bounds.len() as f64;
            let mut prev = self.lo - 1;
            for (i, &edge) in self.bounds.iter().enumerate() {
                if x <= edge {
                    let width = (edge - prev) as f64; // ≥ 1
                    let within = (x - prev) as f64 / width;
                    return (i as f64 + within.min(1.0)) / nb;
                }
                prev = edge;
            }
            1.0
        };
        let f = (frac_le(hi) - frac_le(lo - 1)).clamp(0.0, 1.0);
        f * self.total as f64
    }
}

/// Statistics for one relation.
#[derive(Clone, Debug)]
pub struct RelationStats {
    /// Live tuple count at analyze time.
    pub rows: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl RelationStats {
    /// Estimated rows matching one equality disjunct on `col`
    /// (uniformity assumption: rows / distinct).
    pub fn eq_selectivity_rows(&self, col: usize) -> f64 {
        let d = self.columns[col].distinct.max(1);
        self.rows as f64 / d as f64
    }
}

/// Statistics for a set of relations.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    relations: HashMap<String, RelationStats>,
}

impl TableStats {
    /// Scan the named relations once, collecting row counts and
    /// per-column distinct/min/max.
    pub fn analyze(db: &Database, relations: &[&str]) -> Result<TableStats> {
        let mut out = TableStats::default();
        for &name in relations {
            let schema = db.schema(name)?;
            let arity = schema.arity();
            let mut distinct: Vec<HashSet<Value>> = vec![HashSet::new(); arity];
            let mut min: Vec<Option<Value>> = vec![None; arity];
            let mut max: Vec<Option<Value>> = vec![None; arity];
            let mut int_samples: Vec<Vec<i64>> = vec![Vec::new(); arity];
            let mut rows = 0usize;
            db.with_relation(name, |rel| {
                for (_, t) in rel.iter() {
                    rows += 1;
                    for c in 0..arity {
                        let v = t.get(c);
                        distinct[c].insert(v.clone());
                        if let Value::Int(i) = v {
                            int_samples[c].push(*i);
                        }
                        match &min[c] {
                            Some(m) if v >= m => {}
                            _ => min[c] = Some(v.clone()),
                        }
                        match &max[c] {
                            Some(m) if v <= m => {}
                            _ => max[c] = Some(v.clone()),
                        }
                    }
                }
            })?;
            let mut int_samples = int_samples.into_iter();
            out.relations.insert(
                name.to_string(),
                RelationStats {
                    rows,
                    columns: (0..arity)
                        .map(|c| {
                            let samples = int_samples.next().expect("one per column");
                            ColumnStats {
                                distinct: distinct[c].len(),
                                min: min[c].clone(),
                                max: max[c].clone(),
                                histogram: if samples.len() == rows {
                                    Histogram::build(samples)
                                } else {
                                    None // non-integer column
                                },
                            }
                        })
                        .collect(),
                },
            );
        }
        Ok(out)
    }

    /// Stats for one relation.
    pub fn relation(&self, name: &str) -> Option<&RelationStats> {
        self.relations.get(name)
    }

    /// Number of analyzed relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if nothing has been analyzed.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_storage::{tuple, Column, ColumnType, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new(
            "r",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ],
        ))
        .unwrap();
        for i in 0..100i64 {
            db.insert("r", tuple![i, i % 4]).unwrap();
        }
        db
    }

    #[test]
    fn analyze_counts_distincts_and_bounds() {
        let db = db();
        let stats = TableStats::analyze(&db, &["r"]).unwrap();
        let r = stats.relation("r").unwrap();
        assert_eq!(r.rows, 100);
        assert_eq!(r.columns[0].distinct, 100);
        assert_eq!(r.columns[1].distinct, 4);
        assert_eq!(r.columns[0].min, Some(Value::Int(0)));
        assert_eq!(r.columns[0].max, Some(Value::Int(99)));
        // Uniformity estimates.
        assert!((r.eq_selectivity_rows(0) - 1.0).abs() < 1e-9);
        assert!((r.eq_selectivity_rows(1) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_relation_is_safe() {
        let mut db = Database::new();
        db.create_relation(Schema::new("e", vec![Column::new("x", ColumnType::Int)]))
            .unwrap();
        let stats = TableStats::analyze(&db, &["e"]).unwrap();
        let e = stats.relation("e").unwrap();
        assert_eq!(e.rows, 0);
        assert_eq!(e.columns[0].distinct, 0);
        assert_eq!(e.columns[0].min, None);
        assert!(e.eq_selectivity_rows(0) >= 0.0);
    }

    #[test]
    fn histogram_equi_depth_on_uniform_data() {
        let h = Histogram::build((0..1000i64).collect()).unwrap();
        // Whole range ≈ all rows.
        assert!((h.estimate_range_rows(0, 999) - 1000.0).abs() < 1.0);
        // A 10% slice ≈ 100 rows (within a bucket of slack).
        let est = h.estimate_range_rows(100, 199);
        assert!((60.0..=160.0).contains(&est), "{est}");
        // Out-of-range queries estimate ~0.
        assert!(h.estimate_range_rows(2000, 3000) < 1.0);
        assert_eq!(h.estimate_range_rows(10, 5), 0.0);
    }

    #[test]
    fn histogram_handles_skew_better_than_uniformity() {
        // 90% of values at 0..10, 10% spread to 1000.
        let mut vals: Vec<i64> = (0..900).map(|i| i % 10).collect();
        vals.extend((0..100).map(|i| 10 + i * 10));
        let h = Histogram::build(vals).unwrap();
        let dense = h.estimate_range_rows(0, 9);
        let sparse = h.estimate_range_rows(500, 1000);
        assert!(dense > 700.0, "dense region underestimated: {dense}");
        assert!(sparse < 150.0, "sparse region overestimated: {sparse}");
        // A min/max uniformity model would say dense ≈ 10/1000 of rows
        // = 10 — off by ~80×.
    }

    #[test]
    fn analyze_builds_histograms_for_int_columns() {
        let db = db();
        let stats = TableStats::analyze(&db, &["r"]).unwrap();
        let r = stats.relation("r").unwrap();
        assert!(r.columns[0].histogram.is_some());
        let h = r.columns[0].histogram.as_ref().unwrap();
        assert!((h.estimate_range_rows(0, 99) - 100.0).abs() < 10.0);
    }

    #[test]
    fn histogram_build_edge_cases() {
        assert!(Histogram::build(vec![]).is_none());
        let single = Histogram::build(vec![5]).unwrap();
        assert!(single.estimate_range_rows(5, 5) >= 0.9);
        let constant = Histogram::build(vec![7; 100]).unwrap();
        assert!((constant.estimate_range_rows(7, 7) - 100.0).abs() < 1.0);
        assert!(constant.estimate_range_rows(8, 9) < 1.0);
    }

    #[test]
    fn unknown_relation_errors() {
        let db = db();
        assert!(TableStats::analyze(&db, &["nope"]).is_err());
    }
}
