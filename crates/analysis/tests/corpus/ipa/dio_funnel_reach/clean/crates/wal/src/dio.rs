// The sanctioned funnel: raw writes are allowed here, and reaching the
// filesystem *through* this module is exactly the contract.

pub fn fx_spill(path: &Path, bytes: &[u8]) -> Result<(), Error> {
    fs::write(path, bytes)
}
