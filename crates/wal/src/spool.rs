//! `DiskSpool` — the on-disk [`SpoolSink`] for the flight recorder.
//!
//! `pmv-obs` owns the trigger policy and the dump document format but
//! stays dependency-free, so the sink that actually touches disk lives
//! here, on top of [`crate::dio`]: every spool write fires
//! [`Site::SpoolWrite`] first, which makes dump persistence
//! fault-injectable like every other byte this workspace writes.
//!
//! The spool is **bounded**: dumps land as `flight-<seq>.json` under
//! one directory, and when the directory's total payload would exceed
//! the byte budget the oldest dumps are deleted first (a flight
//! recorder that can fill a disk is worse than the anomaly it records).
//! Reopening an existing directory resumes the accounting from the
//! files present, so the bound holds across process restarts.
//!
//! Failure stance: a dump that cannot be written is dropped — the
//! recorder already treats sink errors as "diagnostics lost, serving
//! unaffected" — but eviction of *old* dumps ignores errors too, so a
//! sticky delete failure can never block new evidence from landing.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use pmv_faultinject::Site;
use pmv_obs::SpoolSink;

use crate::dio;

/// File-name prefix and suffix for spool dumps: `flight-<seq>.json`.
const PREFIX: &str = "flight-";
const SUFFIX: &str = ".json";

/// Byte-bounded on-disk dump spool; see the module docs.
pub struct DiskSpool {
    dir: PathBuf,
    max_bytes: u64,
    state: Mutex<SpoolState>,
}

/// Files currently in the spool, oldest first, plus their total size.
struct SpoolState {
    files: Vec<(PathBuf, u64)>,
    bytes: u64,
}

impl std::fmt::Debug for DiskSpool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskSpool")
            .field("dir", &self.dir)
            .field("max_bytes", &self.max_bytes)
            .finish_non_exhaustive()
    }
}

impl DiskSpool {
    /// Open (creating if needed) a spool directory with a total payload
    /// budget of `max_bytes`. Existing `flight-*.json` files are
    /// re-adopted into the accounting in name order — the sequence
    /// number embedded in the name orders dumps across restarts.
    pub fn open(dir: &Path, max_bytes: u64) -> io::Result<DiskSpool> {
        dio::create_dir_all(dir)?;
        let mut files: Vec<(PathBuf, u64)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !(name.starts_with(PREFIX) && name.ends_with(SUFFIX)) {
                continue;
            }
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            files.push((entry.path(), len));
        }
        files.sort();
        let bytes = files.iter().map(|(_, n)| *n).sum();
        Ok(DiskSpool {
            dir: dir.to_path_buf(),
            max_bytes,
            state: Mutex::new(SpoolState { files, bytes }),
        })
    }

    /// The spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Dump files currently retained, oldest first.
    pub fn files(&self) -> Vec<PathBuf> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.files.iter().map(|(p, _)| p.clone()).collect()
    }

    /// Total payload bytes currently retained.
    pub fn bytes(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }

    /// Evict oldest dumps until `incoming` more bytes fit the budget.
    /// Delete errors are swallowed (the entry is dropped from the
    /// accounting either way — see the module docs' failure stance).
    fn make_room(&self, state: &mut SpoolState, incoming: u64) {
        while !state.files.is_empty() && state.bytes + incoming > self.max_bytes {
            let (path, len) = state.files.remove(0);
            let _ = dio::remove_file(&path);
            state.bytes -= len;
        }
    }
}

impl SpoolSink for DiskSpool {
    fn spool_dump(&self, seq: u64, json: &str) -> io::Result<PathBuf> {
        let path = self.dir.join(format!("{PREFIX}{seq:06}{SUFFIX}"));
        let len = json.len() as u64;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.make_room(&mut state, len);
        // Fault site fires inside `write_all`, before any byte lands; a
        // torn write leaves a half dump on disk, which the profile
        // parser skips (no closing brace → not a valid dump document).
        let mut file = dio::create(&path)?;
        if let Err(e) = dio::write_all(&mut file, Site::SpoolWrite, json.as_bytes()) {
            drop(file);
            let _ = dio::remove_file(&path);
            return Err(e);
        }
        dio::fsync(&file, Site::SpoolWrite)?;
        state.files.push((path.clone(), len));
        state.bytes += len;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmv_faultinject::{install, FaultKind, FaultPlan};
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pmv_spool_tests").join(format!(
            "{name}-{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dumps_land_and_survive_reopen() {
        let dir = tmp("reopen");
        let spool = DiskSpool::open(&dir, 1 << 20).unwrap();
        let p0 = spool.spool_dump(0, "{\"pmv_flight_dump\":1}").unwrap();
        let p1 = spool
            .spool_dump(1, "{\"pmv_flight_dump\":1,\"seq\":1}")
            .unwrap();
        assert!(p0.exists() && p1.exists());
        assert_eq!(spool.files(), vec![p0.clone(), p1.clone()]);

        let reopened = DiskSpool::open(&dir, 1 << 20).unwrap();
        assert_eq!(reopened.files(), vec![p0, p1]);
        assert_eq!(reopened.bytes(), spool.bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_oldest_first() {
        let dir = tmp("budget");
        let spool = DiskSpool::open(&dir, 100).unwrap();
        let big = "x".repeat(60);
        let p0 = spool.spool_dump(0, &big).unwrap();
        let p1 = spool.spool_dump(1, &big).unwrap();
        // 120 > 100: dump 0 must have been evicted to admit dump 1.
        assert!(!p0.exists(), "oldest dump not evicted");
        assert!(p1.exists());
        assert_eq!(spool.files(), vec![p1]);
        assert!(spool.bytes() <= 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_fault_drops_the_dump_cleanly() {
        let dir = tmp("fault");
        let spool = DiskSpool::open(&dir, 1 << 20).unwrap();
        {
            let plan = Arc::new(FaultPlan::new(7).with_rule(Site::SpoolWrite, FaultKind::Io, 1.0));
            let _guard = install(plan);
            assert!(spool.spool_dump(0, "{}").is_err());
        }
        // Failed dump left nothing behind — on disk or in accounting.
        assert!(spool.files().is_empty());
        assert_eq!(spool.bytes(), 0);
        // And the spool still works once the fault clears.
        assert!(spool.spool_dump(1, "{}").is_ok());
        assert_eq!(spool.files().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
